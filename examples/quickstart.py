#!/usr/bin/env python3
"""Quickstart: run the controlled window protocol and check it analytically.

The scenario: a broadcast channel shared by 200 stations, messages of
M = 25 propagation-delay units (τ), offered channel load ρ′ = 0.5, and a
delivery constraint of K = 100 τ.  We

1. build the optimal control policy of Theorem 1 (+ the §4.1 window
   length heuristic),
2. simulate the full protocol at slot level, and
3. compare the measured loss against the paper's eq. 4.7 queueing model.

Run:  python examples/quickstart.py
"""

from repro import ControlPolicy, ImpatientMG1, WindowMACSimulator
from repro.crp import ExactSchedulingModel, optimal_window_occupancy

MESSAGE_SLOTS = 25  # M: message length in units of tau
OFFERED_LOAD = 0.5  # rho' = lambda * M
DEADLINE = 100.0  # K in units of tau

arrival_rate = OFFERED_LOAD / MESSAGE_SLOTS


def main() -> None:
    # --- 1. the control policy -------------------------------------------------
    policy = ControlPolicy.optimal(deadline=DEADLINE, accepted_rate=arrival_rate)
    print(f"policy: {policy.name}")
    print(f"  window position : oldest unresolved instant (Theorem 1, element 1)")
    print(f"  window length   : {policy.length.length(0):.1f} slots "
          f"(occupancy heuristic, element 2)")
    print(f"  split rule      : {policy.split}-half first (element 3)")
    print(f"  sender discard  : messages older than K = {policy.discard_deadline} "
          f"(element 4)")

    # --- 2. slot-level simulation ----------------------------------------------
    simulator = WindowMACSimulator(
        policy,
        arrival_rate=arrival_rate,
        transmission_slots=MESSAGE_SLOTS,
        n_stations=200,
        deadline=DEADLINE,
        seed=7,
    )
    result = simulator.run(horizon_slots=200_000, warmup_slots=20_000)
    print(f"\nsimulated {result.arrivals} messages:")
    print(f"  delivered on time : {result.delivered_on_time}")
    print(f"  delivered late    : {result.delivered_late} (lost at receiver)")
    print(f"  discarded         : {result.discarded} (element 4, at sender)")
    print(f"  loss fraction     : {result.loss_fraction:.4f} "
          f"(± {2 * result.loss_stderr():.4f})")
    print(f"  channel utilization: {result.channel.utilization():.3f}")
    print(f"  mean waiting time : {result.mean_true_wait:.1f} slots")

    # --- 3. the eq. 4.7 analytic model ------------------------------------------
    service = ExactSchedulingModel(
        MESSAGE_SLOTS, optimal_window_occupancy()
    ).service_pmf()
    queue = ImpatientMG1(arrival_rate, service, DEADLINE)
    solution = queue.solve()
    print(f"\nanalytic model (M/G/1 with impatient customers, eq. 4.7):")
    print(f"  effective rho     : {solution.rho:.3f} "
          f"(transmission {OFFERED_LOAD} + scheduling overhead)")
    print(f"  loss probability  : {solution.loss_probability:.4f}")
    print(f"  server idle prob  : {solution.idle_probability:.4f}")

    gap = abs(result.loss_fraction - solution.loss_probability)
    print(f"\nsimulation vs analysis gap: {gap:.4f} "
          "(the paper's waiting-time approximation, see §4.2)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distributed sensor network: window protocol vs ALOHA vs TDMA ([DSN 82]).

Forty sensors share one channel.  Each reports periodically; detection
events additionally make clusters of sensors report almost at once —
the worst case for random access (correlated collisions) and for TDMA
(the cluster must wait for its slots to come around).  Measurements are
stale after K = 400 τ.

The time-window protocol resolves a burst deterministically in ~log
steps ordered by arrival time, which is exactly what a fusion centre
wants: the oldest (most stale-endangered) reading first.

Run:  python examples/sensor_network.py
"""

from repro.core import ControlPolicy
from repro.experiments import ascii_table
from repro.mac import SlottedAlohaSimulator, TDMASimulator, WindowMACSimulator
from repro.workloads import SensorWorkload

N_SENSORS = 40
MESSAGE_SLOTS = 25
DEADLINE = 400.0
HORIZON = 250_000.0
WARMUP = 25_000.0


def main() -> None:
    workload = SensorWorkload(
        n_sensors=N_SENSORS,
        report_period=2_500.0,  # one report per sensor per 2500 tau
        report_jitter=50.0,
        event_rate=0.002,  # detection events
        burst_size=8.0,  # ~8 sensors react per event
        burst_spread=10.0,  # within 10 tau of the event
    )
    lam = workload.mean_rate
    print(
        f"{N_SENSORS} sensors, aggregate rate {lam:.4f}/tau, "
        f"offered load rho' = {lam * MESSAGE_SLOTS:.3f}, K = {DEADLINE:g} tau\n"
    )

    rows = []

    window = WindowMACSimulator(
        ControlPolicy.optimal(DEADLINE, lam),
        arrival_rate=lam,
        transmission_slots=MESSAGE_SLOTS,
        n_stations=N_SENSORS,
        deadline=DEADLINE,
        seed=5,
        workload=workload,
    ).run(HORIZON, warmup_slots=WARMUP)
    rows.append(
        ["controlled window", f"{window.loss_fraction:.4f}",
         f"{window.mean_true_wait:.0f}", f"{window.channel.utilization():.3f}"]
    )

    aloha = SlottedAlohaSimulator(
        lam, MESSAGE_SLOTS, DEADLINE, adaptive=True, seed=5
    ).run(HORIZON, warmup_slots=WARMUP)
    rows.append(["slotted ALOHA", f"{aloha.loss_fraction:.4f}", "-",
                 f"{aloha.throughput:.3f}"])

    tdma = TDMASimulator(
        lam, MESSAGE_SLOTS, N_SENSORS, DEADLINE, seed=5
    ).run(HORIZON, warmup_slots=WARMUP)
    rows.append(["TDMA", f"{tdma.loss_fraction:.4f}", "-", "-"])

    print(
        ascii_table(
            ["protocol", "stale fraction", "mean wait", "utilization"],
            rows,
            title="Fraction of sensor readings stale on delivery",
        )
    )
    print(
        "\nTDMA pays the full cycle latency (N·M = "
        f"{N_SENSORS * MESSAGE_SLOTS} tau > K); ALOHA sheds bursts; the\n"
        "window protocol schedules the burst oldest-first within the bound."
    )


if __name__ == "__main__":
    main()

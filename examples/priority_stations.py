#!/usr/bin/env python3
"""Priority through per-station window sizes (§5 future work).

The paper's conclusion sketches a priority mechanism: let stations pick
different initial window sizes.  Here, low-priority stations respond
only to the *oldest half* of each enabled window (window_scale = 0.5):
their fresh messages defer to any full-scale station's traffic, and they
join contention only once their messages have aged into the older half.

Two station classes share an overloaded channel (ρ′ ≈ 0.9); the table
shows the per-class loss with and without the priority scaling.

Run:  python examples/priority_stations.py
"""


from repro.core import ControlPolicy
from repro.experiments import ascii_table
from repro.mac import MessageFate, WindowMACSimulator

MESSAGE_SLOTS = 25
DEADLINE = 150.0
N_STATIONS = 20  # stations 0-9 high priority, 10-19 low
OFFERED_LOAD = 0.9
HORIZON = 200_000.0
WARMUP = 20_000.0


def run(priority_enabled: bool, seed: int = 13):
    lam = OFFERED_LOAD / MESSAGE_SLOTS
    simulator = WindowMACSimulator(
        ControlPolicy.optimal(DEADLINE, lam),
        arrival_rate=lam,
        transmission_slots=MESSAGE_SLOTS,
        n_stations=N_STATIONS,
        deadline=DEADLINE,
        seed=seed,
    )
    if priority_enabled:
        for station in range(N_STATIONS // 2, N_STATIONS):
            simulator.registry.set_window_scale(station, 0.5)
    simulator.run(HORIZON, warmup_slots=WARMUP)

    # Per-class scoring from the message records.
    high = {"lost": 0, "total": 0}
    low = {"lost": 0, "total": 0}
    for message in simulator.scored_messages:
        bucket = high if message.station < N_STATIONS // 2 else low
        bucket["total"] += 1
        if message.fate in (MessageFate.DELIVERED_LATE, MessageFate.DISCARDED_AT_SENDER):
            bucket["lost"] += 1
    return high, low


def loss(bucket):
    return bucket["lost"] / bucket["total"] if bucket["total"] else float("nan")


def main() -> None:
    rows = []
    for enabled in (False, True):
        high, low = run(enabled)
        rows.append(
            [
                "on" if enabled else "off",
                f"{loss(high):.4f}",
                f"{loss(low):.4f}",
                f"{(loss(low) + loss(high)) / 2:.4f}",
            ]
        )
    print(
        ascii_table(
            ["priority scaling", "high-class loss", "low-class loss", "mean"],
            rows,
            title=(
                f"Two-class priority via window scale (rho'={OFFERED_LOAD}, "
                f"K={DEADLINE:g})"
            ),
        )
    )
    print(
        "\nWith scaling on, the high class's loss drops while the low class\n"
        "pays — the §5 trade the paper anticipated.  (Note low-priority\n"
        "messages skipped by a resolved window retire only via element 4,\n"
        "one reason the paper calls the general problem 'potentially\n"
        "difficult'.)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The decision model of §3: watch policy iteration find Theorem 1.

Builds the pseudo-time semi-Markov decision process on states
{0, …, K}, starts Howard policy iteration from the *worst* policy in
the family (newest-placement, newer-half-first — an LCFS-flavoured
controller), and prints every improvement round until the iteration
stops at the minimum-slack elements the paper proves optimal.

Also demonstrates why the paper abandons this route for performance
numbers: the model size (and the transition-law computation) blows up
with K, while the queueing model of §4 is closed-form.

Run:  python examples/policy_iteration_demo.py
"""

import time

from repro.experiments import Theorem1Config, ascii_table, run_theorem1_experiment
from repro.smdp import (
    build_protocol_smdp,
    lcfs_like_policy,
    policy_iteration,
    pseudo_loss_fraction,
)

ARRIVAL_RATE = 0.15
DEADLINE = 12
TRANSMISSION = 4


def main() -> None:
    print(f"building SMDP: K = {DEADLINE}, M = {TRANSMISSION}, "
          f"lambda = {ARRIVAL_RATE}/slot ...")
    t0 = time.perf_counter()
    model = build_protocol_smdp(
        ARRIVAL_RATE, DEADLINE, TRANSMISSION, positions="endpoints", depth=8
    )
    n_actions = sum(len(model.actions(s)) for s in model.states())
    print(f"  {len(model.states())} states, {n_actions} actions "
          f"({time.perf_counter() - t0:.1f}s)\n")

    start = lcfs_like_policy(model)
    result = policy_iteration(model, start)
    print("policy iteration from the LCFS-like start:")
    for round_number, gain in enumerate(result.history, start=1):
        loss = pseudo_loss_fraction(gain, ARRIVAL_RATE)
        print(f"  round {round_number}: loss rate {loss:.5f}")
    print(f"  converged in {result.iterations} rounds\n")

    rows = []
    for state in sorted(result.policy):
        label = result.policy[state]
        if label == ("wait",):
            rows.append([str(state), "wait", "-", "-"])
        else:
            _, length, offset, split = label
            placement = "oldest" if offset + length == state else f"offset {offset}"
            rows.append([str(state), str(length), placement, split])
    print(ascii_table(["backlog i", "window w", "position", "split"], rows,
                      title="Optimal decisions per state (Theorem 1 elements 1+3)"))

    print("\nexhaustive {P^w} sweep (eq. A1 for every placement/split):")
    report = run_theorem1_experiment(
        Theorem1Config(ARRIVAL_RATE, DEADLINE, TRANSMISSION, window_length=4)
    )
    print(report.to_table())
    best = report.best_variant
    print(f"\nbest family member: ({best.placement}, {best.split}) — "
          "as Theorem 1 predicts.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Packetized voice over the controlled window protocol ([Cohen 77]).

The paper's headline application: voice packets are useless after the
playout deadline, but a few percent of loss is inaudible.  This example
carries 24 simultaneous calls (on/off talkspurt sources) over one
broadcast channel and sweeps the playout deadline, comparing the
controlled protocol against the uncontrolled FCFS variant that wastes
channel time on already-late packets.

Scenario numbers (in units of the propagation delay τ ≈ 50 µs on a
10 km / 10 Mb/s cable):

* vocoder frame: one packet per 400 τ (≈ 20 ms) during talkspurts;
* talkspurts ≈ 1 s, silences ≈ 1.35 s (Brady model): activity ≈ 0.43;
* packet length M = 25 τ;
* playout deadlines swept from 100 τ (5 ms) to 1600 τ (80 ms).

Run:  python examples/packetized_voice.py
"""

from repro.core import ControlPolicy
from repro.experiments import ascii_table
from repro.mac import WindowMACSimulator
from repro.workloads import VoiceWorkload

MESSAGE_SLOTS = 25
N_CALLS = 24
PACKET_INTERVAL = 400.0  # slots between packets in a talkspurt
TALKSPURT = 20_000.0  # ~1.0 s in tau units
SILENCE = 27_000.0  # ~1.35 s
DEADLINES = (100.0, 200.0, 400.0, 800.0, 1600.0)
HORIZON = 300_000.0
WARMUP = 30_000.0


def run_protocol(policy, workload, deadline, seed=11):
    simulator = WindowMACSimulator(
        policy,
        arrival_rate=workload.mean_rate,
        transmission_slots=MESSAGE_SLOTS,
        n_stations=N_CALLS,
        deadline=deadline,
        seed=seed,
        workload=workload,
    )
    return simulator.run(HORIZON, warmup_slots=WARMUP)


def main() -> None:
    workload = VoiceWorkload(
        n_sources=N_CALLS,
        packet_interval=PACKET_INTERVAL,
        mean_talkspurt=TALKSPURT,
        mean_silence=SILENCE,
    )
    load = workload.mean_rate * MESSAGE_SLOTS
    print(
        f"{N_CALLS} calls, activity {workload.activity_factor:.2f}, "
        f"offered channel load rho' = {load:.3f}\n"
    )

    rows = []
    for deadline in DEADLINES:
        controlled = run_protocol(
            ControlPolicy.optimal(deadline, workload.mean_rate), workload, deadline
        )
        fcfs = run_protocol(
            ControlPolicy.uncontrolled_fcfs(workload.mean_rate), workload, deadline
        )
        rows.append(
            [
                f"{deadline:g}",
                f"{deadline * 0.05:.0f} ms",
                f"{controlled.loss_fraction:.4f}",
                f"{fcfs.loss_fraction:.4f}",
                f"{controlled.mean_true_wait:.0f}",
            ]
        )
    print(
        ascii_table(
            ["K (tau)", "playout", "controlled loss", "fcfs loss", "mean wait"],
            rows,
            title="Voice packet loss vs playout deadline",
        )
    )
    print(
        "\nA voice call is typically fine below ~2% loss; the controlled\n"
        "protocol reaches that at a much tighter playout deadline."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A Figure-7 panel on your terminal: loss vs deadline, three protocols.

Generates the ρ′ = 0.5, M = 25 panel with both the analytic curves
(eq. 4.7 for the controlled protocol; M/G/1 and LCFS waiting-time tails
for the baselines) and slot-level simulation points, then prints the
table and a coarse ASCII plot.

Run:  python examples/protocol_comparison.py           (analytic only, fast)
      python examples/protocol_comparison.py --simulate (adds sim points)
"""

import sys

from repro.experiments import PanelConfig, generate_panel

DEADLINES = [12.5, 25.0, 50.0, 100.0, 200.0, 400.0]


def ascii_plot(panel, width=60) -> str:
    """A log-x scatter of the analytic curves."""
    rows = []
    markers = {"controlled_analytic": "C", "fcfs_analytic": "F", "lcfs_analytic": "L"}
    rows.append("loss")
    for level in (0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01):
        line = [" "] * width
        for name, marker in markers.items():
            series = panel.series[name]
            for point in series.points:
                import math

                x = int(
                    (math.log(point.deadline) - math.log(DEADLINES[0]))
                    / (math.log(DEADLINES[-1]) - math.log(DEADLINES[0]))
                    * (width - 1)
                )
                if abs(point.loss - level) / level < 0.3:
                    line[x] = marker
        rows.append(f"{level:5.2f} |" + "".join(line))
    rows.append("      +" + "-" * width)
    rows.append(f"       K={DEADLINES[0]:g}" + " " * (width - 20) + f"K={DEADLINES[-1]:g}")
    rows.append("       C=controlled  F=fcfs  L=lcfs   (log-x)")
    return "\n".join(rows)


def main() -> None:
    simulate = "--simulate" in sys.argv
    config = PanelConfig(rho_prime=0.5, message_length=25)
    print(f"generating panel {config.rho_prime=} {config.message_length=} "
          f"(simulation: {simulate}) ...\n")
    panel = generate_panel(
        config,
        deadlines=DEADLINES,
        include_simulation=simulate,
        sim_horizon=120_000.0,
        sim_warmup=15_000.0,
    )
    print(panel.to_table())
    print()
    print(ascii_plot(panel))
    print("\nCSV:\n" + panel.to_csv())


if __name__ == "__main__":
    main()

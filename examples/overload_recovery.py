#!/usr/bin/env python3
"""Overload recovery: what happens right after a traffic burst?

The paper's model is steady-state, but a deadline-bound channel lives or
dies by its transients.  Here a burst dumps 8 message-transmissions'
worth of backlog onto a ρ′ = 0.75 channel, and we watch the *instantaneous*
loss probability relax back to the eq. 4.7 steady state — exactly
(via the transient workload recursion), not by simulation.

Also shown: the waiting-time distribution of the messages that survive
(the paper's [Baccelli 81] pointer) — useful for sizing a playout
buffer: accepted traffic still needs room for up to K of queueing delay.

Run:  python examples/overload_recovery.py
"""

from repro.crp import ExactSchedulingModel, optimal_window_occupancy
from repro.experiments import ascii_table
from repro.queueing import (
    ImpatientMG1,
    accepted_wait_pmf,
    transient_workload,
)

MESSAGE_SLOTS = 25
OFFERED_LOAD = 0.75
DEADLINE = 75.0
BURST_BACKLOG = 200.0  # slots of unfinished work injected at t = 0


def main() -> None:
    lam = OFFERED_LOAD / MESSAGE_SLOTS
    service = ExactSchedulingModel(
        MESSAGE_SLOTS, optimal_window_occupancy()
    ).service_pmf()

    steady = ImpatientMG1(lam, service, DEADLINE).solve()
    print(
        f"steady state: loss {steady.loss_probability:.4f}, "
        f"idle {steady.idle_probability:.4f}\n"
    )

    result = transient_workload(
        lam, service, DEADLINE,
        horizon_slots=4_000,
        initial_workload=BURST_BACKLOG,
        snapshot_every=100,
    )
    rows = [
        [f"{t:g}", f"{loss:.4f}", f"{work:.1f}"]
        for t, loss, work in zip(
            result.times, result.loss_probability, result.mean_workload
        )
        if t <= 1500 or t == result.times[-1]
    ]
    print(
        ascii_table(
            ["t (tau)", "p(loss at t)", "E[workload]"],
            rows,
            title=f"Recovery from a {BURST_BACKLOG:g}-slot burst "
                  f"(rho'={OFFERED_LOAD}, K={DEADLINE:g})",
        )
    )
    settle = result.settling_time(steady.loss_probability, tolerance=0.1)
    print(
        f"\nloss within 10% of steady state after ~{settle:g} tau "
        f"({settle / MESSAGE_SLOTS:.0f} message times)\n"
    )

    wait = accepted_wait_pmf(lam, service, DEADLINE)
    quantiles = [(q, _quantile(wait, q)) for q in (0.5, 0.9, 0.99)]
    print(
        ascii_table(
            ["quantile", "accepted wait (tau)"],
            [[f"{q:.0%}", f"{v:.0f}"] for q, v in quantiles],
            title="Waiting time of accepted messages (buffer sizing)",
        )
    )


def _quantile(pmf, q):
    cdf = pmf.cdf()
    import numpy as np

    index = int(np.searchsorted(cdf, q))
    return index * pmf.delta


if __name__ == "__main__":
    main()

"""Entry point: ``python -m benchmarks.perf [--quick] [--workers N]``."""

from __future__ import annotations

import argparse

from .harness import PerfConfig, render_table, run_benchmarks, write_artifacts


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf",
        description="Time the MAC kernel and the Figure-7 sweep; write "
        "benchmarks/results/BENCH_mac.json and perf_kernel.txt.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke variant: 1/25th horizon, kernel only",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker processes for the sweep"
    )
    args = parser.parse_args()

    config = PerfConfig(workers=args.workers)
    if args.quick:
        payload = run_benchmarks(
            config.scaled(1 / 25), mode="smoke", end_to_end=False
        )
    else:
        payload = run_benchmarks(config, mode="full")
    write_artifacts(payload)
    print(render_table(payload))


if __name__ == "__main__":
    main()

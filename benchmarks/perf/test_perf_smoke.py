"""Perf smoke (CI): kernel microbenchmark + perf-regression gates.

Asserts, on a tiny grid:

* the fast path is bit-identical while being timed and its speedup over
  the reference loop stays above a pinned floor (the regression gate —
  a change that quietly loses the fast-forward or closed-form shortcuts
  fails CI, not just a local benchmark run);
* the batched replication kernel matches the sequential fast kernel bit
  for bit on the full-size 16-seed acceptance arm (parity is re-checked
  on every timed round) and actually amortises per-run overhead;
* the observability contracts hold: a disabled registry is free (≤3%,
  pure noise allowance) and an enabled one stays under the ISSUE 5
  budget (≤8%).

Writes the smoke entry into the append-style ``BENCH_mac.json`` history
and refreshes ``perf_kernel.txt`` so CI can upload them as artifacts.
Excluded from the tier-1 suite (pytest ``testpaths`` covers ``tests/``
only).
"""

from .harness import PerfConfig, run_benchmarks, write_artifacts

#: Pinned regression floors.  The fast kernel measures >20x on the smoke
#: cell and the batched lanes ~5.5x on the acceptance arm, so these
#: floors keep margin for CI-runner noise while still catching a lost
#: optimisation (losing the sprint or a closed form costs integer
#: factors, not percents).
KERNEL_SPEEDUP_FLOOR = 15.0
BATCH_SPEEDUP_FLOOR = 4.5


def test_fast_kernel_and_batch_gates():
    config = PerfConfig().scaled(1 / 25)  # 6k + 0.8k slots: seconds, not minutes
    payload = run_benchmarks(config, mode="smoke", end_to_end=False)
    write_artifacts(payload)

    # run_benchmarks already asserted kernel bit-identity and per-round
    # batched parity; these are the speed gates on top.
    kernel = payload["kernel"]
    assert kernel["speedup"] >= KERNEL_SPEEDUP_FLOOR, (
        f"fast-kernel speedup regressed: {kernel['speedup']:.1f}x "
        f"(floor {KERNEL_SPEEDUP_FLOOR:g}x)"
    )
    assert kernel["fast"]["slots_per_s"] > kernel["slow"]["slots_per_s"]

    batch = payload["batch_16seed"]
    assert batch["speedup"] >= BATCH_SPEEDUP_FLOOR, (
        f"batched replication speedup regressed: {batch['speedup']:.1f}x "
        f"on the {batch['replications']}-seed arm "
        f"(floor {BATCH_SPEEDUP_FLOOR:g}x)"
    )

    # Observability contracts: disabled is free; enabled stays within
    # the ISSUE 5 budget now that per-epoch observes are buffered and
    # flushed in bulk.  The disabled arm IS the uninstrumented path
    # (the simulator normalises it to None), so its limit is pure
    # timer-noise allowance on the ratio of per-arm minima.
    obs = payload["instrumentation"]
    assert obs["disabled_overhead"] <= 0.03, (
        f"disabled metrics registry costs "
        f"{obs['disabled_overhead']:.1%} on the fast kernel (limit 3%)"
    )
    assert obs["enabled_overhead"] <= 0.08, (
        f"enabled metrics registry costs "
        f"{obs['enabled_overhead']:.1%} on the fast kernel (limit 8%)"
    )

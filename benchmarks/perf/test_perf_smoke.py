"""Perf smoke (CI): kernel microbenchmark on a tiny grid.

Asserts the fast path is (a) bit-identical while being timed and (b) not
slower than the reference loop, then writes the smoke-mode
``BENCH_mac.json``/``perf_kernel.txt`` so CI can upload them as
artifacts.  Excluded from the tier-1 suite (pytest ``testpaths`` covers
``tests/`` only).
"""

from .harness import PerfConfig, run_benchmarks, write_artifacts


def test_fast_kernel_not_slower_than_reference():
    config = PerfConfig().scaled(1 / 25)  # 6k + 0.8k slots: seconds, not minutes
    payload = run_benchmarks(config, mode="smoke", end_to_end=False)
    write_artifacts(payload)
    kernel = payload["kernel"]
    # run_benchmarks already asserted bit-identity; at this idle-heavy
    # cell the fast path wins by >10x, so ">= 1" has enormous margin.
    assert kernel["speedup"] >= 1.0, (
        f"fast path slower than reference loop: {kernel['speedup']:.2f}x"
    )
    assert kernel["fast"]["slots_per_s"] > kernel["slow"]["slots_per_s"]
    # Disabled-is-free contract of the observability layer: a disabled
    # registry is normalised to the uninstrumented hot path, so its
    # min-of-N overhead must stay within timing noise (the ISSUE's 2%).
    obs = payload["instrumentation"]
    assert obs["disabled_overhead"] <= 0.02, (
        f"disabled metrics registry costs "
        f"{obs['disabled_overhead']:.1%} on the fast kernel (limit 2%)"
    )

"""Perf smoke (CI): kernel microbenchmark + perf-regression gates.

Asserts, on a tiny grid:

* the fast path is bit-identical while being timed and its speedup over
  the reference loop stays above a pinned floor (the regression gate —
  a change that quietly loses the fast-forward or closed-form shortcuts
  fails CI, not just a local benchmark run);
* the batched replication kernel matches the sequential fast kernel bit
  for bit on the full-size 16-seed acceptance arm (parity is re-checked
  on every timed round) and actually amortises per-run overhead;
* the compiled backend matches the fast kernel bit for bit on the
  full-size Figure-7 arm and holds the ISSUE 7 ≥10x floor — with or
  without numba (the pure-NumPy fallback carries the same gate, so the
  floor is meaningful on the default numba-free CI job);
* the ``stations_1e5`` scaling arm completes inside the perf-smoke
  budget with O(1) simulator construction;
* the faulted fast kernel (ISSUE 8) matches the faulted reference loop
  bit for bit — result and fault telemetry, per timed round — on the
  full-size Figure-7 arm under 2% feedback noise, and holds the ≥5x
  acceptance floor over the reference-loop fallback it replaced;
* the sequential replication engine (ISSUE 10) certifies the Figure-7
  CI target with ≥2.5x fewer lanes than the fixed budget on the
  acceptance arm, and CRN keeps paired arm-delta variance measurably
  below independent seeding;
* the observability contracts hold: a disabled registry is free (≤3%,
  pure noise allowance) and an enabled one stays under the ISSUE 5
  budget (≤8%).

Writes the smoke entry into the append-style ``BENCH_mac.json`` history
and refreshes ``perf_kernel.txt`` so CI can upload them as artifacts.
Excluded from the tier-1 suite (pytest ``testpaths`` covers ``tests/``
only).
"""

from .harness import PerfConfig, run_benchmarks, write_artifacts

#: Pinned regression floors.  The fast kernel measures >20x on the smoke
#: cell and the batched lanes ~5.5x on the acceptance arm, so these
#: floors keep margin for CI-runner noise while still catching a lost
#: optimisation (losing the sprint or a closed form costs integer
#: factors, not percents).
KERNEL_SPEEDUP_FLOOR = 15.0
BATCH_SPEEDUP_FLOOR = 4.5
#: ISSUE 7 acceptance: the compiled backend measures ~12.5x over the
#: fast kernel on the full Figure-7 arm even on the interpreted NumPy
#: fallback (the jitted walk only widens the gap), so 10x is the
#: contractual floor with realistic CI-noise margin.
COMPILED_SPEEDUP_FLOOR = 10.0
#: ISSUE 8 acceptance: faulted runs ride the fast kernel instead of
#: falling back to the reference loop.  The 2%-noise Figure-7 arm
#: measures ~10x (scan-gated idle fast-forward + the scalar phantom
#: descent executor), so 5x is the contractual floor with margin for
#: CI-runner noise.
ROBUSTNESS_FAULTED_SPEEDUP_FLOOR = 5.0
#: perf-smoke budgets for the 1e5-station scaling arm: the lazy
#: struct-of-arrays registry makes construction population-independent
#: (sub-millisecond; 100ms allows for cold-import noise), and the run
#: itself is arrival-bound, not station-bound.
STATIONS_1E5_CONSTRUCT_BUDGET_S = 0.1
STATIONS_1E5_RUN_BUDGET_S = 2.0
#: ISSUE 10 acceptance: the sequential engine stops the acceptance arm
#: at 8 lanes against the 32-lane fixed budget (4.0x); 2.5x is the
#: smoke floor (lane counts are deterministic given the seed, but the
#: floor leaves room for retuning wave sizes without breaking CI).
SEQUENTIAL_LANE_REDUCTION_FLOOR = 2.5
#: CRN gate: paired (fcfs − controlled) deltas on shared seeds measure
#: a ~0.17 variance ratio against independent seeding; 0.9 just asserts
#: "measurably below independent" with wide noise margin.
CRN_VARIANCE_RATIO_CEILING = 0.9


def test_fast_kernel_and_batch_gates():
    config = PerfConfig().scaled(1 / 25)  # 6k + 0.8k slots: seconds, not minutes
    payload = run_benchmarks(config, mode="smoke", end_to_end=False)
    write_artifacts(payload)

    # run_benchmarks already asserted kernel bit-identity and per-round
    # batched parity; these are the speed gates on top.
    kernel = payload["kernel"]
    assert kernel["speedup"] >= KERNEL_SPEEDUP_FLOOR, (
        f"fast-kernel speedup regressed: {kernel['speedup']:.1f}x "
        f"(floor {KERNEL_SPEEDUP_FLOOR:g}x)"
    )
    assert kernel["fast"]["slots_per_s"] > kernel["slow"]["slots_per_s"]

    batch = payload["batch_16seed"]
    assert batch["speedup"] >= BATCH_SPEEDUP_FLOOR, (
        f"batched replication speedup regressed: {batch['speedup']:.1f}x "
        f"on the {batch['replications']}-seed arm "
        f"(floor {BATCH_SPEEDUP_FLOOR:g}x)"
    )

    # Compiled backend: parity was asserted per timed round inside
    # measure_compiled; this is the ISSUE 7 speed floor on top.
    comp = payload["compiled"]
    assert comp["speedup"] >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled-backend speedup regressed: {comp['speedup']:.1f}x "
        f"over the fast kernel (floor {COMPILED_SPEEDUP_FLOOR:g}x, "
        f"numba={'yes' if comp['numba'] else 'no'})"
    )

    # Faulted kernel: parity (result + telemetry) was asserted per
    # timed round inside measure_robustness_faulted; this is the
    # ISSUE 8 speed floor on top.
    rob = payload["robustness_faulted"]
    assert rob["speedup"] >= ROBUSTNESS_FAULTED_SPEEDUP_FLOOR, (
        f"faulted fast-kernel speedup regressed: {rob['speedup']:.1f}x "
        f"over the reference loop at {rob['noise_rate']:g} feedback noise "
        f"(floor {ROBUSTNESS_FAULTED_SPEEDUP_FLOOR:g}x)"
    )

    # 1e5-station scaling arm: O(1) construction and a bounded run.
    st = payload["stations_1e5"]
    assert st["construct_s"] <= STATIONS_1E5_CONSTRUCT_BUDGET_S, (
        f"constructing a {st['n_stations']:,}-station simulator took "
        f"{st['construct_s']:.3f}s (budget "
        f"{STATIONS_1E5_CONSTRUCT_BUDGET_S:g}s) — per-station work crept "
        f"back into startup"
    )
    assert st["compiled_s"] <= STATIONS_1E5_RUN_BUDGET_S, (
        f"the {st['n_stations']:,}-station compiled run took "
        f"{st['compiled_s']:.2f}s (budget {STATIONS_1E5_RUN_BUDGET_S:g}s)"
    )

    # Sequential replication (ISSUE 10): both deliveries certified the
    # CI target inside measure_sequential_figure7; these are the
    # lane-economy and variance-reduction gates on top.
    seq = payload["sequential_figure7"]
    assert seq["lane_reduction"] >= SEQUENTIAL_LANE_REDUCTION_FLOOR, (
        f"sequential lane reduction regressed: {seq['lane_reduction']:.1f}x "
        f"on the acceptance arm against the "
        f"{seq['fixed_lanes_per_arm']}-lane fixed budget "
        f"(floor {SEQUENTIAL_LANE_REDUCTION_FLOOR:g}x)"
    )
    assert seq["crn"]["variance_ratio"] <= CRN_VARIANCE_RATIO_CEILING, (
        f"CRN paired-delta variance ratio is "
        f"{seq['crn']['variance_ratio']:.2f} of independent seeding "
        f"(ceiling {CRN_VARIANCE_RATIO_CEILING:g}) — the arms no longer "
        f"share sample paths"
    )

    # Observability contracts: disabled is free; enabled stays within
    # the ISSUE 5 budget now that per-epoch observes are buffered and
    # flushed in bulk.  The disabled arm IS the uninstrumented path
    # (the simulator normalises it to None), so its limit is pure
    # timer-noise allowance on the ratio of per-arm minima.
    obs = payload["instrumentation"]
    assert obs["disabled_overhead"] <= 0.03, (
        f"disabled metrics registry costs "
        f"{obs['disabled_overhead']:.1%} on the fast kernel (limit 3%)"
    )
    assert obs["enabled_overhead"] <= 0.08, (
        f"enabled metrics registry costs "
        f"{obs['enabled_overhead']:.1%} on the fast kernel (limit 8%)"
    )

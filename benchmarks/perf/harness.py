"""Timing harness for the MAC kernel and the Figure-7 sweep.

Two measurements, mirroring the two layers the performance work added:

* **Kernel microbenchmark** — one simulator run at the ρ′ = 0.25,
  M = 25 Figure-7 cell, fast kernel versus reference loop, reported as
  slots simulated per second of wall-clock.
* **End-to-end sweep** — the full simulation arm grid of that cell
  (three protocols × the deadline grid) the way the seed repo ran it
  (reference loop, sequential) versus the optimised path (fast kernel,
  four workers).  The acceptance target is ≥5× on this measurement.
  The panel's analytic curves are warmed into the memo cache before
  either arm is timed: they are identical work in both arms (and served
  from the cache on every repeat invocation in practice), so timing
  them would only dilute the quantity under test — the simulation
  sweep's wall-clock.

Both run every configuration at the same seed, so the speedups compare
identical work — the fast path's bit-identity means the *results* of the
timed runs agree exactly, which :func:`run_benchmarks` verifies as it
times them.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.core import ControlPolicy
from repro.experiments import PanelConfig, generate_panel
from repro.mac import WindowMACSimulator
from repro.obs.metrics import MetricsRegistry

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_mac.json"
BENCH_TABLE = RESULTS_DIR / "perf_kernel.txt"


@dataclass(frozen=True)
class PerfConfig:
    """The measured operating point (the ISSUE's acceptance cell)."""

    rho_prime: float = 0.25
    message_length: int = 25
    deadline_factor: float = 3.0
    horizon: float = 150_000.0
    warmup: float = 20_000.0
    workers: int = 4
    seed: int = 1

    @property
    def arrival_rate(self) -> float:
        return self.rho_prime / self.message_length

    @property
    def deadline(self) -> float:
        return self.deadline_factor * self.message_length

    def scaled(self, factor: float) -> "PerfConfig":
        """A shorter variant (the --quick / CI smoke grid)."""
        return PerfConfig(
            rho_prime=self.rho_prime,
            message_length=self.message_length,
            deadline_factor=self.deadline_factor,
            horizon=self.horizon * factor,
            warmup=self.warmup * factor,
            workers=self.workers,
            seed=self.seed,
        )


def _time_kernel(config: PerfConfig, fast: bool):
    simulator = WindowMACSimulator(
        ControlPolicy.optimal(config.deadline, config.arrival_rate),
        arrival_rate=config.arrival_rate,
        transmission_slots=config.message_length,
        deadline=config.deadline,
        seed=config.seed,
        fast=fast,
    )
    start = time.perf_counter()
    result = simulator.run(config.horizon, warmup_slots=config.warmup)
    elapsed = time.perf_counter() - start
    slots = config.horizon + config.warmup
    return {
        "elapsed_s": elapsed,
        "slots": slots,
        "slots_per_s": slots / elapsed,
    }, result


#: Smallest horizon the overhead measurement will time.  A ≤2% bound is
#: meaningless on a millisecond-scale run (scheduler jitter alone
#: exceeds it), so short smoke configs are stretched to this floor.
MIN_OVERHEAD_HORIZON = 60_000.0


def measure_instrumentation_overhead(config: PerfConfig, repeats: int = 7) -> dict:
    """Fast-kernel cost of the observability layer, as min-of-``repeats``.

    Three arms at identical seed: no registry at all, a *disabled*
    registry (must be normalised to the uninstrumented path by the
    simulator — the "disabled is free" contract, held to ≤2% by the
    smoke test), and an *enabled* registry (informational; per-epoch
    histograms have a real cost).  All three arms must return the same
    result bit-for-bit — instrumentation may never change physics.

    Timed in **CPU seconds** (``time.process_time``), not wall-clock:
    the question is whether the code path does extra work, and CPU time
    is blind to the scheduler preemption that dominates wall-clock
    jitter on shared CI runners (where a 2% wall bound on identical
    code flakes).
    """
    if config.horizon < MIN_OVERHEAD_HORIZON:
        config = config.scaled(MIN_OVERHEAD_HORIZON / config.horizon)

    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)

    def once(metrics):
        simulator = WindowMACSimulator(
            policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            deadline=config.deadline,
            seed=config.seed,
            fast=True,
            metrics=metrics,
        )
        start = time.process_time()
        result = simulator.run(config.horizon, warmup_slots=config.warmup)
        return time.process_time() - start, result

    # Round-robin the arms so a noise burst (CI neighbours, frequency
    # scaling) degrades all three equally instead of biasing whichever
    # arm it happened to land on; min-of-rounds then compares each
    # arm's cleanest pass.
    arms = {
        "plain": lambda: None,
        "disabled": lambda: MetricsRegistry(enabled=False),
        "enabled": lambda: MetricsRegistry(),
    }
    times = {name: [] for name in arms}
    results = {}
    for _ in range(repeats):
        for name, make_metrics in arms.items():
            elapsed, results[name] = once(make_metrics())
            times[name].append(elapsed)
    plain_s = min(times["plain"])
    disabled_s = min(times["disabled"])
    enabled_s = min(times["enabled"])
    if not (results["plain"] == results["disabled"] == results["enabled"]):
        raise AssertionError(
            "instrumentation changed the simulation result"
        )
    return {
        "repeats": repeats,
        "uninstrumented_s": plain_s,
        "disabled_registry_s": disabled_s,
        "enabled_registry_s": enabled_s,
        "disabled_overhead": disabled_s / plain_s - 1.0,
        "enabled_overhead": enabled_s / plain_s - 1.0,
    }


def _time_sweep(config: PerfConfig, fast: bool, workers: Optional[int]):
    panel = PanelConfig(
        rho_prime=config.rho_prime, message_length=config.message_length
    )
    start = time.perf_counter()
    result = generate_panel(
        panel,
        include_simulation=True,
        sim_horizon=config.horizon,
        sim_warmup=config.warmup,
        sim_seed=config.seed,
        workers=workers,
        sim_fast=fast,
    )
    elapsed = time.perf_counter() - start
    return {"elapsed_s": elapsed, "workers": workers or 1, "fast": fast}, result


def run_benchmarks(config: PerfConfig, mode: str, end_to_end: bool = True) -> dict:
    """Measure, cross-check result identity, and return the payload."""
    fast_kernel, fast_result = _time_kernel(config, fast=True)
    slow_kernel, slow_result = _time_kernel(config, fast=False)
    if fast_result != slow_result:
        raise AssertionError(
            "fast kernel diverged from the reference loop while being timed"
        )
    payload = {
        "schema": 1,
        "mode": mode,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cell": {
            "rho_prime": config.rho_prime,
            "message_length": config.message_length,
            "deadline": config.deadline,
            "horizon": config.horizon,
            "warmup": config.warmup,
            "seed": config.seed,
        },
        "kernel": {
            "fast": fast_kernel,
            "slow": slow_kernel,
            "speedup": slow_kernel["elapsed_s"] / fast_kernel["elapsed_s"],
        },
        "instrumentation": measure_instrumentation_overhead(config),
    }
    if end_to_end:
        # Warm the analytic memo so neither timed arm pays for eq. 4.7.
        panel = PanelConfig(
            rho_prime=config.rho_prime, message_length=config.message_length
        )
        generate_panel(panel)
        optimised, opt_panel = _time_sweep(
            config, fast=True, workers=config.workers
        )
        baseline, base_panel = _time_sweep(config, fast=False, workers=None)
        for name, series in base_panel.series.items():
            if opt_panel.series[name].points != series.points:
                raise AssertionError(
                    f"parallel fast sweep diverged on series {name!r}"
                )
        payload["end_to_end"] = {
            "baseline_sequential_slow": baseline,
            "fast_parallel": optimised,
            "speedup": baseline["elapsed_s"] / optimised["elapsed_s"],
        }
    return payload


def render_table(payload: dict) -> str:
    """The human-readable summary written next to the JSON."""
    cell = payload["cell"]
    kernel = payload["kernel"]
    lines = [
        f"Perf benchmark ({payload['mode']}) — rho'={cell['rho_prime']:g}, "
        f"M={cell['message_length']}, K={cell['deadline']:g}, "
        f"{cell['horizon']:g}+{cell['warmup']:g} slots, seed={cell['seed']}",
        "",
        f"{'measurement':<34} {'elapsed':>10} {'slots/sec':>12}",
        "-" * 58,
        f"{'kernel, reference loop':<34} "
        f"{kernel['slow']['elapsed_s']:>9.2f}s "
        f"{kernel['slow']['slots_per_s']:>12,.0f}",
        f"{'kernel, fast path':<34} "
        f"{kernel['fast']['elapsed_s']:>9.2f}s "
        f"{kernel['fast']['slots_per_s']:>12,.0f}",
        f"{'kernel speedup':<34} {kernel['speedup']:>9.1f}x",
    ]
    if "instrumentation" in payload:
        obs = payload["instrumentation"]
        lines += [
            "",
            f"{'metrics disabled (cpu, overhead)':<34} "
            f"{obs['disabled_registry_s']:>9.2f}s "
            f"{obs['disabled_overhead']:>11.1%}",
            f"{'metrics enabled (cpu, overhead)':<34} "
            f"{obs['enabled_registry_s']:>9.2f}s "
            f"{obs['enabled_overhead']:>11.1%}",
        ]
    if "end_to_end" in payload:
        e2e = payload["end_to_end"]
        base = e2e["baseline_sequential_slow"]
        opt = e2e["fast_parallel"]
        opt_label = f"figure-7 cell sweep, fast + {opt['workers']} workers"
        lines += [
            "",
            f"{'figure-7 cell sweep, seed setup':<34} {base['elapsed_s']:>9.2f}s",
            f"{opt_label:<34} {opt['elapsed_s']:>9.2f}s",
            f"{'end-to-end speedup':<34} {e2e['speedup']:>9.1f}x",
        ]
    return "\n".join(lines)


def write_artifacts(payload: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    BENCH_TABLE.write_text(render_table(payload) + "\n")

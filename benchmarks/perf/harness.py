"""Timing harness for the MAC kernel and the Figure-7 sweep.

Two measurements, mirroring the two layers the performance work added:

* **Kernel microbenchmark** — one simulator run at the ρ′ = 0.25,
  M = 25 Figure-7 cell, fast kernel versus reference loop, reported as
  slots simulated per second of wall-clock.
* **End-to-end sweep** — the full simulation arm grid of that cell
  (three protocols × the deadline grid) the way the seed repo ran it
  (reference loop, sequential) versus the optimised path (fast kernel,
  four workers).  The acceptance target is ≥5× on this measurement.
  The panel's analytic curves are warmed into the memo cache before
  either arm is timed: they are identical work in both arms (and served
  from the cache on every repeat invocation in practice), so timing
  them would only dilute the quantity under test — the simulation
  sweep's wall-clock.

Both run every configuration at the same seed, so the speedups compare
identical work — the fast path's bit-identity means the *results* of the
timed runs agree exactly, which :func:`run_benchmarks` verifies as it
times them.
"""

from __future__ import annotations

import gc
import json
import platform
import subprocess
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.core import ControlPolicy
from repro.experiments import PanelConfig, generate_panel
from repro.experiments.sweep import (
    MACRunSpec,
    SequentialOptions,
    SweepExecutor,
    derive_seeds,
    run_sequential,
    run_spec,
)
from repro.mac import WindowMACSimulator
from repro.mac.batch import run_batch
from repro.obs.metrics import MetricsRegistry
from repro.stats import t_interval

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_mac.json"
BENCH_TABLE = RESULTS_DIR / "perf_kernel.txt"

#: File-level schema of ``BENCH_mac.json``: ``{"schema": 2, "runs":
#: [...]}`` — an append-style history, one entry per harness invocation,
#: keyed by git SHA + date.  A v1 file (one overwritten payload) is
#: migrated in place: its payload becomes the first history entry.
BENCH_SCHEMA = 2


@dataclass(frozen=True)
class PerfConfig:
    """The measured operating point (the ISSUE's acceptance cell)."""

    rho_prime: float = 0.25
    message_length: int = 25
    deadline_factor: float = 3.0
    horizon: float = 150_000.0
    warmup: float = 20_000.0
    workers: int = 4
    seed: int = 1

    @property
    def arrival_rate(self) -> float:
        return self.rho_prime / self.message_length

    @property
    def deadline(self) -> float:
        return self.deadline_factor * self.message_length

    def scaled(self, factor: float) -> "PerfConfig":
        """A shorter variant (the --quick / CI smoke grid)."""
        return PerfConfig(
            rho_prime=self.rho_prime,
            message_length=self.message_length,
            deadline_factor=self.deadline_factor,
            horizon=self.horizon * factor,
            warmup=self.warmup * factor,
            workers=self.workers,
            seed=self.seed,
        )


def _timed(fn):
    """CPU seconds of one call, garbage collector paused.

    ``time.process_time`` is blind to scheduler preemption and the GC
    pause removes the one allocation-driven asymmetry between otherwise
    identical arms — together they make min-of-N stable enough to gate
    CI on single-digit percentages.
    """
    enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()
        result = fn()
        return time.process_time() - start, result
    finally:
        if enabled:
            gc.enable()


def _time_kernel(config: PerfConfig, fast: bool, rounds: int = 3):
    def once():
        simulator = WindowMACSimulator(
            ControlPolicy.optimal(config.deadline, config.arrival_rate),
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            deadline=config.deadline,
            seed=config.seed,
            fast=fast,
        )
        return _timed(
            lambda: simulator.run(config.horizon, warmup_slots=config.warmup)
        )

    times = []
    for _ in range(rounds):
        elapsed, result = once()
        times.append(elapsed)
    slots = config.horizon + config.warmup
    best = min(times)
    return {
        "elapsed_s": best,
        "rounds": rounds,
        "slots": slots,
        "slots_per_s": slots / best,
    }, result


#: Smallest horizon the overhead measurement will time.  A few-percent
#: bound is meaningless on a millisecond-scale run (scheduler jitter
#: alone exceeds it), so short smoke configs are stretched to this
#: floor.  ~30ms runs x many repeats beat fewer longer runs here: cache
#: -interference bursts on shared runners last long enough to cover a
#: whole long round, but short rounds slip between them, so the per-arm
#: minimum converges.
MIN_OVERHEAD_HORIZON = 150_000.0


def measure_instrumentation_overhead(config: PerfConfig, repeats: int = 20) -> dict:
    """Fast-kernel cost of the observability layer, as min-of-``repeats``.

    Three arms at identical seed: no registry at all, a *disabled*
    registry (must be normalised to the uninstrumented path by the
    simulator — the "disabled is free" contract, held to a ≤3% noise
    allowance by the smoke test), and an *enabled* registry (informational; per-epoch
    histograms have a real cost).  All three arms must return the same
    result bit-for-bit — instrumentation may never change physics.

    Timed in **CPU seconds** (``time.process_time``), not wall-clock:
    the question is whether the code path does extra work, and CPU time
    is blind to the scheduler preemption that dominates wall-clock
    jitter on shared CI runners (where a 2% wall bound on identical
    code flakes).
    """
    if config.horizon < MIN_OVERHEAD_HORIZON:
        config = config.scaled(MIN_OVERHEAD_HORIZON / config.horizon)

    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)

    def once(metrics):
        simulator = WindowMACSimulator(
            policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            deadline=config.deadline,
            seed=config.seed,
            fast=True,
            metrics=metrics,
        )
        return _timed(
            lambda: simulator.run(config.horizon, warmup_slots=config.warmup)
        )

    # Round-robin the arms so a noise burst (CI neighbours, frequency
    # scaling) degrades all three equally instead of biasing whichever
    # arm it happened to land on; min-of-rounds then compares each
    # arm's cleanest pass.
    arms = {
        "plain": lambda: None,
        "disabled": lambda: MetricsRegistry(enabled=False),
        "enabled": lambda: MetricsRegistry(),
    }
    times = {name: [] for name in arms}
    results = {}
    for _ in range(repeats):
        for name, make_metrics in arms.items():
            elapsed, results[name] = once(make_metrics())
            times[name].append(elapsed)
    plain_s = min(times["plain"])
    disabled_s = min(times["disabled"])
    enabled_s = min(times["enabled"])
    if not (results["plain"] == results["disabled"] == results["enabled"]):
        raise AssertionError(
            "instrumentation changed the simulation result"
        )
    return {
        "repeats": repeats,
        "uninstrumented_s": plain_s,
        "disabled_registry_s": disabled_s,
        "enabled_registry_s": enabled_s,
        "disabled_overhead": disabled_s / plain_s - 1.0,
        "enabled_overhead": enabled_s / plain_s - 1.0,
    }


def measure_batch(
    config: PerfConfig, replications: int = 16, rounds: int = 3
) -> dict:
    """Batched replication kernel versus the sequential fast kernel.

    The ISSUE 5 acceptance measurement: one Figure-7 arm at ``config``'s
    cell, ``replications`` seeds spawned exactly as the sweep grids
    spawn theirs, timed as min-of-``rounds`` CPU seconds per arm with
    the rounds interleaved.  Bit-parity between the batched lanes and
    the sequential fast kernel is asserted on **every** timed round —
    the CI gate fails on the first diverging field, not just on a slow
    run.
    """
    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)
    specs = [
        MACRunSpec(
            policy=policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            horizon=config.horizon,
            warmup=config.warmup,
            deadline=config.deadline,
            seed=seed,
        )
        for seed in derive_seeds(config.seed, replications)
    ]
    sequential_times, batched_times = [], []
    for _ in range(rounds):
        elapsed, sequential = _timed(lambda: [run_spec(s) for s in specs])
        sequential_times.append(elapsed)
        elapsed, batched = _timed(lambda: run_batch(specs))
        batched_times.append(elapsed)
        if batched != sequential:
            raise AssertionError(
                "batched lanes diverged from the sequential fast kernel "
                "while being timed"
            )
    sequential_s = min(sequential_times)
    batched_s = min(batched_times)
    slots = replications * (config.horizon + config.warmup)
    return {
        "replications": replications,
        "rounds": rounds,
        "slots": slots,
        "sequential_fast_s": sequential_s,
        "batched_s": batched_s,
        "sequential_slots_per_s": slots / sequential_s,
        "batched_slots_per_s": slots / batched_s,
        "speedup": sequential_s / batched_s,
    }


def measure_compiled(config: PerfConfig, rounds: int = 5) -> dict:
    """Compiled backend versus the fast kernel (the ISSUE 7 tentpole).

    Always measured at the full-size Figure-7 acceptance cell (like the
    16-seed batch arm): a shrunken horizon would understate the sprint
    and fast-forward amortisation the flat engine exists to exploit.
    Bit-parity between the compiled backend and the fast kernel is
    asserted on **every** timed round.  ``numba`` records which flavour
    ran — the ≥10x CI floor holds for the pure-NumPy fallback too, so
    the gate is meaningful on runners without the optional extra.
    """
    from repro.mac.kernels.compiled import numba_available

    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)

    def once(backend):
        simulator = WindowMACSimulator(
            policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            deadline=config.deadline,
            seed=config.seed,
            backend=backend,
        )
        return _timed(
            lambda: simulator.run(config.horizon, warmup_slots=config.warmup)
        )

    fast_times, compiled_times = [], []
    for _ in range(rounds):
        elapsed, fast_result = once("fast")
        fast_times.append(elapsed)
        elapsed, compiled_result = once("compiled")
        compiled_times.append(elapsed)
        if compiled_result != fast_result:
            raise AssertionError(
                "compiled backend diverged from the fast kernel "
                "while being timed"
            )
    fast_s = min(fast_times)
    compiled_s = min(compiled_times)
    slots = config.horizon + config.warmup
    return {
        "rounds": rounds,
        "slots": slots,
        "numba": numba_available(),
        "fast_s": fast_s,
        "compiled_s": compiled_s,
        "fast_slots_per_s": slots / fast_s,
        "compiled_slots_per_s": slots / compiled_s,
        "speedup": fast_s / compiled_s,
    }


def measure_robustness_faulted(config: PerfConfig, rounds: int = 3) -> dict:
    """Faulted fast kernel versus the reference loop (the ISSUE 8 gate).

    Times a feedback-noise run (2% misdetection — the midpoint of the
    ``repro robustness --feedback-errors`` degradation axis) on the
    full-size Figure-7 acceptance cell with ``backend="fast"`` against
    the same cell forced onto the reference loop.  Before ISSUE 8 every
    faulted run fell all the way down the compiled→fast→reference chain,
    so this ratio is exactly the speedup the robustness sweeps gained.
    Bit-parity — result *and* fault telemetry — is asserted on every
    timed round.
    """
    from repro.faults import FeedbackFaultModel

    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)

    def once(backend):
        simulator = WindowMACSimulator(
            policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            deadline=config.deadline,
            seed=config.seed,
            backend=backend,
            feedback_faults=FeedbackFaultModel.noise(0.02),
        )
        return _timed(
            lambda: simulator.run(config.horizon, warmup_slots=config.warmup)
        )

    fast_times, reference_times = [], []
    for _ in range(rounds):
        elapsed, reference_result = once("reference")
        reference_times.append(elapsed)
        elapsed, fast_result = once("fast")
        fast_times.append(elapsed)
        if (
            fast_result != reference_result
            or fast_result.faults != reference_result.faults
        ):
            raise AssertionError(
                "faulted fast kernel diverged from the reference loop "
                "while being timed"
            )
    fast_s = min(fast_times)
    reference_s = min(reference_times)
    slots = config.horizon + config.warmup
    return {
        "rounds": rounds,
        "slots": slots,
        "noise_rate": 0.02,
        "fast_s": fast_s,
        "reference_s": reference_s,
        "fast_slots_per_s": slots / fast_s,
        "reference_slots_per_s": slots / reference_s,
        "speedup": reference_s / fast_s,
    }


def measure_stations(
    config: PerfConfig, n_stations: int = 100_000, rounds: int = 3
) -> dict:
    """The large-population scaling arm (``stations_1e5`` by default).

    Times simulator *construction* (must stay O(1) in the population —
    the lazy struct-of-arrays registry allocates nothing per station)
    and a full compiled-backend run at ``n_stations``, with bit-parity
    against the fast kernel asserted every round.  The same measurement
    at ``n_stations=1_000_000`` is the documented local run
    (``docs/performance.md``); CI keeps the 1e5 arm inside the
    perf-smoke budget.
    """
    policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)

    def once(backend):
        construct_s, simulator = _timed(
            lambda: WindowMACSimulator(
                policy,
                arrival_rate=config.arrival_rate,
                transmission_slots=config.message_length,
                n_stations=n_stations,
                deadline=config.deadline,
                seed=config.seed,
                backend=backend,
            )
        )
        run_s, result = _timed(
            lambda: simulator.run(config.horizon, warmup_slots=config.warmup)
        )
        return construct_s, run_s, result

    construct_times, run_times = [], []
    for _ in range(rounds):
        _, _, fast_result = once("fast")
        construct_s, run_s, compiled_result = once("compiled")
        construct_times.append(construct_s)
        run_times.append(run_s)
        if compiled_result != fast_result:
            raise AssertionError(
                f"compiled backend diverged from the fast kernel at "
                f"n_stations={n_stations}"
            )
    slots = config.horizon + config.warmup
    compiled_s = min(run_times)
    return {
        "n_stations": n_stations,
        "rounds": rounds,
        "slots": slots,
        "construct_s": min(construct_times),
        "compiled_s": compiled_s,
        "compiled_slots_per_s": slots / compiled_s,
    }


#: Half-width the sequential Figure-7 measurement certifies.  Half a
#: loss-percentage point is comfortably below what Figure 7's published
#: curves resolve visually, so it is the quality bar a production sweep
#: actually needs.
SEQUENTIAL_CI_TARGET = 0.005

#: Fixed-replication lane budget per arm the sequential run is measured
#: against.  A fixed design must commit its count before seeing any
#: variance, so it is sized for the grid's *hardest* arm: the saturating
#: uncontrolled cells run at p ≈ 0.4 with ~1.5e3 resolved messages per
#: lane, where a t interval needs ≈ (2·0.0127/0.005)² ≈ 26 lanes to
#: certify the target — 32 is the enclosing power of two.  Every easier
#: arm then overshoots; the sequential engine's payoff is stopping those
#: arms at their own convergence instead.
SEQUENTIAL_FIXED_LANES = 32


def measure_sequential_figure7(config: PerfConfig) -> dict:
    """Sequential replication versus the fixed lane budget (ISSUE 10).

    Two protocol arms (controlled and FCFS) at the Figure-7 acceptance
    cell, both certifying the same CI half-width target:

    * **fixed** — ``SEQUENTIAL_FIXED_LANES`` batched lanes per arm (the
      pre-committed budget a fixed design needs for the grid's hardest
      arm), half-width reported from the per-lane t interval;
    * **sequential** — :func:`repro.experiments.sweep.run_sequential`
      with Wilson pooled counts, OBF alpha spending and CRN, stopping
      each arm at its own convergence.

    Both deliveries must sit at or under the target; the acceptance
    ratio is fixed-over-sequential lanes on the controlled (acceptance)
    arm.  The same fixed lanes also yield the CRN check: the variance of
    per-seed (fcfs − controlled) deltas under shared seeds against the
    independent-seeding variance ``var(fcfs) + var(controlled)`` — the
    paired design must come in measurably below.
    """
    policy_controlled = ControlPolicy.optimal(
        config.deadline, config.arrival_rate
    )
    policy_fcfs = ControlPolicy.uncontrolled_fcfs(config.arrival_rate)

    def spec(policy, seed):
        return MACRunSpec(
            policy=policy,
            arrival_rate=config.arrival_rate,
            transmission_slots=config.message_length,
            horizon=config.horizon,
            warmup=config.warmup,
            deadline=config.deadline,
            seed=seed,
        )

    # -- fixed budget: the same CRN seed list across both arms ---------
    seeds = derive_seeds(config.seed, SEQUENTIAL_FIXED_LANES)
    fixed_specs = [
        spec(policy, s)
        for policy in (policy_controlled, policy_fcfs)
        for s in seeds
    ]
    fixed_s, fixed_results = _timed(lambda: run_batch(fixed_specs))
    controlled = [
        r.loss_fraction for r in fixed_results[:SEQUENTIAL_FIXED_LANES]
    ]
    fcfs = [r.loss_fraction for r in fixed_results[SEQUENTIAL_FIXED_LANES:]]
    fixed_ci = t_interval(controlled)

    def _var(xs):
        mean = sum(xs) / len(xs)
        return sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)

    deltas = [f - c for c, f in zip(controlled, fcfs)]
    paired_var = _var(deltas)
    independent_var = _var(controlled) + _var(fcfs)

    # -- sequential: stop each arm at its own convergence --------------
    options = SequentialOptions(
        ci_target=SEQUENTIAL_CI_TARGET,
        max_replications=2 * SEQUENTIAL_FIXED_LANES,
        method="wilson",
        spending="obf",
        crn=True,
    )
    executor = SweepExecutor(None, None, batch=True)
    sequential_s, estimates = _timed(
        lambda: run_sequential(
            [
                ("controlled", spec(policy_controlled, config.seed)),
                ("fcfs", spec(policy_fcfs, config.seed)),
            ],
            options,
            executor,
            base_seed=config.seed,
        )
    )
    acceptance = estimates[0]
    if fixed_ci.half_width > SEQUENTIAL_CI_TARGET:
        raise AssertionError(
            "fixed baseline failed to certify the CI target "
            f"({fixed_ci.half_width:g} > {SEQUENTIAL_CI_TARGET:g})"
        )
    if acceptance.half_width > SEQUENTIAL_CI_TARGET:
        raise AssertionError(
            "sequential run failed to certify the CI target "
            f"({acceptance.half_width:g} > {SEQUENTIAL_CI_TARGET:g})"
        )
    return {
        "ci_target": SEQUENTIAL_CI_TARGET,
        "method": options.method,
        "spending": options.spending,
        "fixed_lanes_per_arm": SEQUENTIAL_FIXED_LANES,
        "fixed_s": fixed_s,
        "fixed_half_width": fixed_ci.half_width,
        "sequential_s": sequential_s,
        "arms": [
            {
                "label": est.label,
                "lanes": est.lanes,
                "waves": est.waves,
                "reason": est.reason,
                "mean": est.mean,
                "half_width": est.half_width,
                # Cluster variance inflation the pooled Wilson look
                # applied at the stopping wave (1.0 = messages behaved
                # as independent trials) — the certification is honest
                # only because the half-width already carries this.
                "design_effect": est.decisions[-1].design_effect,
            }
            for est in estimates
        ],
        "acceptance_lanes": acceptance.lanes,
        "lane_reduction": SEQUENTIAL_FIXED_LANES / acceptance.lanes,
        "total_lane_reduction": (
            2 * SEQUENTIAL_FIXED_LANES
            / sum(est.lanes for est in estimates)
        ),
        "crn": {
            "paired_delta_var": paired_var,
            "independent_var": independent_var,
            "variance_ratio": paired_var / independent_var,
        },
    }


def _time_sweep(
    config: PerfConfig, fast: bool, workers: Optional[int], batch: bool = True
):
    panel = PanelConfig(
        rho_prime=config.rho_prime, message_length=config.message_length
    )
    start = time.perf_counter()
    result = generate_panel(
        panel,
        include_simulation=True,
        sim_horizon=config.horizon,
        sim_warmup=config.warmup,
        sim_seed=config.seed,
        workers=workers,
        sim_fast=fast,
        batch=batch,
    )
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "workers": workers or 1,
        "fast": fast,
        "batch": batch,
    }, result


def _git_sha() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_benchmarks(config: PerfConfig, mode: str, end_to_end: bool = True) -> dict:
    """Measure, cross-check result identity, and return one history entry."""
    fast_kernel, fast_result = _time_kernel(config, fast=True)
    slow_kernel, slow_result = _time_kernel(config, fast=False)
    if fast_result != slow_result:
        raise AssertionError(
            "fast kernel diverged from the reference loop while being timed"
        )
    generated_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    payload = {
        "mode": mode,
        "git_sha": _git_sha(),
        "date": generated_at[:10],
        "generated_at": generated_at,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cell": {
            "rho_prime": config.rho_prime,
            "message_length": config.message_length,
            "deadline": config.deadline,
            "horizon": config.horizon,
            "warmup": config.warmup,
            "seed": config.seed,
        },
        "kernel": {
            "fast": fast_kernel,
            "slow": slow_kernel,
            "speedup": slow_kernel["elapsed_s"] / fast_kernel["elapsed_s"],
        },
        "instrumentation": measure_instrumentation_overhead(config),
        # Always measured at the full-size acceptance cell (the 16-seed
        # Figure-7 arm of ISSUE 5), independent of smoke scaling: a
        # shrunken arm would understate the amortised per-run overheads
        # the batched kernel exists to remove.
        "batch_16seed": measure_batch(PerfConfig()),
        # Also full-size, for the same reason: the compiled-vs-fast
        # ratio and the 1e5-station scaling arm are acceptance gates.
        "compiled": measure_compiled(PerfConfig()),
        "stations_1e5": measure_stations(PerfConfig()),
        # Full-size as well: the faulted-kernel ratio is the ISSUE 8
        # acceptance gate for the robustness sweeps.
        "robustness_faulted": measure_robustness_faulted(PerfConfig()),
        # Full-size: the lane-reduction ratio is the ISSUE 10 acceptance
        # gate for the sequential replication engine.
        "sequential_figure7": measure_sequential_figure7(PerfConfig()),
    }
    if end_to_end:
        # Warm the analytic memo so neither timed arm pays for eq. 4.7.
        panel = PanelConfig(
            rho_prime=config.rho_prime, message_length=config.message_length
        )
        generate_panel(panel)
        optimised, opt_panel = _time_sweep(
            config, fast=True, workers=config.workers
        )
        pr2_arm, pr2_panel = _time_sweep(
            config, fast=True, workers=None, batch=False
        )
        baseline, base_panel = _time_sweep(
            config, fast=False, workers=None, batch=False
        )
        for name, series in base_panel.series.items():
            if opt_panel.series[name].points != series.points:
                raise AssertionError(
                    f"parallel fast sweep diverged on series {name!r}"
                )
            if pr2_panel.series[name].points != series.points:
                raise AssertionError(
                    f"sequential fast sweep diverged on series {name!r}"
                )
        payload["end_to_end"] = {
            "baseline_sequential_slow": baseline,
            "fast_sequential": pr2_arm,
            "fast_parallel": optimised,
            "speedup": baseline["elapsed_s"] / optimised["elapsed_s"],
            "batch_speedup": pr2_arm["elapsed_s"] / optimised["elapsed_s"],
        }
    return payload


def render_table(payload: dict) -> str:
    """The human-readable summary written next to the JSON."""
    cell = payload["cell"]
    kernel = payload["kernel"]
    lines = [
        f"Perf benchmark ({payload['mode']}) — rho'={cell['rho_prime']:g}, "
        f"M={cell['message_length']}, K={cell['deadline']:g}, "
        f"{cell['horizon']:g}+{cell['warmup']:g} slots, seed={cell['seed']}",
        "",
        f"{'measurement':<34} {'elapsed':>10} {'slots/sec':>12}",
        "-" * 58,
        f"{'kernel, reference loop':<34} "
        f"{kernel['slow']['elapsed_s']:>9.2f}s "
        f"{kernel['slow']['slots_per_s']:>12,.0f}",
        f"{'kernel, fast path':<34} "
        f"{kernel['fast']['elapsed_s']:>9.2f}s "
        f"{kernel['fast']['slots_per_s']:>12,.0f}",
        f"{'kernel speedup':<34} {kernel['speedup']:>9.1f}x",
    ]
    if "instrumentation" in payload:
        obs = payload["instrumentation"]
        lines += [
            "",
            f"{'metrics disabled (cpu, overhead)':<34} "
            f"{obs['disabled_registry_s']:>9.2f}s "
            f"{obs['disabled_overhead']:>11.1%}",
            f"{'metrics enabled (cpu, overhead)':<34} "
            f"{obs['enabled_registry_s']:>9.2f}s "
            f"{obs['enabled_overhead']:>11.1%}",
        ]
    if "batch_16seed" in payload:
        batch = payload["batch_16seed"]
        reps = batch["replications"]
        lines += [
            "",
            f"{f'{reps}-seed arm, sequential fast':<34} "
            f"{batch['sequential_fast_s']:>9.2f}s "
            f"{batch['sequential_slots_per_s']:>12,.0f}",
            f"{f'{reps}-seed arm, batched lanes':<34} "
            f"{batch['batched_s']:>9.2f}s "
            f"{batch['batched_slots_per_s']:>12,.0f}",
            f"{'batched replication speedup':<34} {batch['speedup']:>9.1f}x",
        ]
    if "compiled" in payload:
        comp = payload["compiled"]
        flavour = "numba jit" if comp["numba"] else "numpy fallback"
        lines += [
            "",
            f"{'kernel, compiled (' + flavour + ')':<34} "
            f"{comp['compiled_s']:>9.2f}s "
            f"{comp['compiled_slots_per_s']:>12,.0f}",
            f"{'compiled speedup over fast':<34} {comp['speedup']:>9.1f}x",
        ]
    if "robustness_faulted" in payload:
        rob = payload["robustness_faulted"]
        noise = f"{rob['noise_rate']:g} noise"
        lines += [
            "",
            f"{'faulted run (' + noise + '), reference':<34} "
            f"{rob['reference_s']:>9.2f}s "
            f"{rob['reference_slots_per_s']:>12,.0f}",
            f"{'faulted run, fast kernel':<34} "
            f"{rob['fast_s']:>9.2f}s "
            f"{rob['fast_slots_per_s']:>12,.0f}",
            f"{'faulted kernel speedup':<34} {rob['speedup']:>9.1f}x",
        ]
    if "sequential_figure7" in payload:
        seq = payload["sequential_figure7"]
        fixed_label = (
            f"fixed {seq['fixed_lanes_per_arm']} lanes/arm "
            f"(ci<={seq['ci_target']:g})"
        )
        lines += [
            "",
            f"{fixed_label:<34} {seq['fixed_s']:>9.2f}s",
            f"{'sequential (' + seq['method'] + '+crn)':<34} "
            f"{seq['sequential_s']:>9.2f}s",
            f"{'acceptance-arm lane reduction':<34} "
            f"{seq['lane_reduction']:>9.1f}x",
            f"{'crn delta-variance ratio':<34} "
            f"{seq['crn']['variance_ratio']:>10.2f}",
        ]
    if "stations_1e5" in payload:
        st = payload["stations_1e5"]
        label = f"compiled, {st['n_stations']:,} stations"
        lines += [
            f"{label:<34} "
            f"{st['compiled_s']:>9.2f}s "
            f"{st['compiled_slots_per_s']:>12,.0f}",
            f"{'  construction (O(1) registry)':<34} "
            f"{st['construct_s'] * 1000:>8.1f}ms",
        ]
    if "end_to_end" in payload:
        e2e = payload["end_to_end"]
        base = e2e["baseline_sequential_slow"]
        opt = e2e["fast_parallel"]
        opt_label = f"figure-7 cell sweep, fast + {opt['workers']} workers"
        lines += [
            "",
            f"{'figure-7 cell sweep, seed setup':<34} {base['elapsed_s']:>9.2f}s",
            f"{opt_label:<34} {opt['elapsed_s']:>9.2f}s",
            f"{'end-to-end speedup':<34} {e2e['speedup']:>9.1f}x",
        ]
        if "fast_sequential" in e2e:
            seq = e2e["fast_sequential"]
            lines += [
                f"{'figure-7 cell sweep, fast no-batch':<34} "
                f"{seq['elapsed_s']:>9.2f}s",
                f"{'batching speedup over PR 2 path':<34} "
                f"{e2e['batch_speedup']:>9.1f}x",
            ]
    return "\n".join(lines)


def _load_history() -> dict:
    """Current ``BENCH_mac.json`` history, migrating a v1 file in place.

    v1 was a single overwritten payload; it becomes the first entry of
    the v2 ``runs`` list so the perf trajectory keeps its oldest point.
    """
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
        if isinstance(data, dict) and isinstance(data.get("runs"), list):
            return data
        data.pop("schema", None)
        data.setdefault("git_sha", "unknown")
        data.setdefault("date", str(data.get("generated_at", ""))[:10])
        return {"schema": BENCH_SCHEMA, "runs": [data]}
    return {"schema": BENCH_SCHEMA, "runs": []}


def write_artifacts(payload: dict) -> None:
    """Append ``payload`` to the benchmark history; refresh the table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    history = _load_history()
    history["schema"] = BENCH_SCHEMA
    history["runs"].append(payload)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n")
    BENCH_TABLE.write_text(render_table(payload) + "\n")

"""Performance benchmark suite for the simulation kernel and sweep engine.

Run ``python -m benchmarks.perf`` for the full measurement (the one whose
artifacts are checked in), or ``python -m benchmarks.perf --quick`` for
the CI smoke variant.  Artifacts land in ``benchmarks/results/``:

* ``BENCH_mac.json`` — machine-readable numbers (kernel slots/sec,
  batched-lane and compiled-backend speedups, the ``stations_1e5``
  scaling arm, end-to-end sweep wall-clock) appended as one
  schema-2 history entry per invocation, for tracking across PRs;
* ``perf_kernel.txt`` — the same numbers as a human table.
"""

"""Ablation benches (experiments A-EL4, A-WIN, A-SPLIT, A-ARITY, A-FIT).

Each bench isolates one design choice of the controlled protocol and
regenerates the comparison DESIGN.md §5 calls for.
"""

from repro.experiments import (
    ablation_table,
    arity_ablation,
    element4_ablation,
    split_rule_ablation,
    twopoint_fit_errors,
    window_length_ablation,
)

from .conftest import save_result


def test_ablation_element4(benchmark):
    """§4.2 attributes most of the controlled win to the sender discard."""
    arms = benchmark.pedantic(
        element4_ablation,
        kwargs=dict(rho_prime=0.75, message_length=25, deadline=50.0,
                    horizon=100_000.0, warmup=12_000.0),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_element4", ablation_table(arms, "Element 4 (sender discard)"))
    by_name = {arm.label: arm.loss for arm in arms}
    assert by_name["controlled"] < by_name["no_discard"]


def test_ablation_window_length(benchmark):
    """The §4.1 occupancy heuristic μ* minimises the analytic loss."""
    occupancies = (0.25, 0.5, 1.0886, 2.0, 4.0)
    arms = benchmark.pedantic(
        window_length_ablation,
        kwargs=dict(occupancies=occupancies, simulate=False),
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_window_length",
        ablation_table(arms, "Element 2 (window length via occupancy)"),
    )
    losses = [arm.loss for arm in arms]
    best = losses.index(min(losses))
    assert occupancies[best] == 1.0886  # the heuristic optimum wins


def test_ablation_split_rule(benchmark):
    """Element 3: older-half-first should not lose to the alternatives."""
    arms = benchmark.pedantic(
        split_rule_ablation,
        kwargs=dict(horizon=100_000.0, warmup=12_000.0),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_split_rule", ablation_table(arms, "Element 3 (split order)"))
    by_name = {arm.label: (arm.loss, arm.stderr) for arm in arms}
    older_loss, older_se = by_name["older"]
    newer_loss, newer_se = by_name["newer"]
    # Allow simulation noise, but older must not be significantly worse.
    assert older_loss <= newer_loss + 3 * ((older_se or 0) + (newer_se or 0))


def test_ablation_arity(benchmark):
    """§5 extension: k-ary splitting is a viable variant (binary is the
    paper's choice; ternary is typically comparable)."""
    arms = benchmark.pedantic(
        arity_ablation,
        kwargs=dict(arities=(2, 3, 4), horizon=80_000.0, warmup=10_000.0),
        rounds=1,
        iterations=1,
    )
    save_result("ablation_arity", ablation_table(arms, "Split arity"))
    assert len(arms) == 3
    for arm in arms:
        assert 0.0 <= arm.loss <= 1.0


def test_ablation_twopoint_fit(benchmark):
    """[Kurose 83]'s endpoint fit versus the exact recursion."""
    table = benchmark.pedantic(twopoint_fit_errors, rounds=1, iterations=1)
    save_result("ablation_twopoint_fit", table)
    assert "rel. error" in table

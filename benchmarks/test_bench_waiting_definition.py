"""Waiting-time-definition bench (the §4.2 approximation, quantified).

The paper defines waiting time to exclude the message's own windowing
process, scores its simulations by the *true* definition, and argues the
two agree closely.  This bench makes that argument quantitative: the
analytic correction of :mod:`repro.queueing.true_wait` (paper wait ⊛ own
scheduling time) should bracket the simulated true-definition loss from
above, with eq. 4.7 bracketing from below.
"""

import numpy as np

from repro.core import ControlPolicy
from repro.crp import ExactSchedulingModel, optimal_window_occupancy
from repro.experiments import ascii_table
from repro.mac import WindowMACSimulator
from repro.queueing import true_wait_correction

from .conftest import save_result


def _sweep():
    lam, m = 0.03, 25  # rho' = 0.75
    scheduling = ExactSchedulingModel(m, optimal_window_occupancy()).scheduling_pmf()
    rows = []
    for deadline in (40.0, 80.0, 150.0):
        correction = true_wait_correction(lam, scheduling, m, deadline)
        sims = []
        for seed in (1, 2, 3):
            simulator = WindowMACSimulator(
                ControlPolicy.optimal(deadline, lam), lam, m,
                deadline=deadline, seed=seed,
            )
            sims.append(simulator.run(80_000.0, warmup_slots=10_000.0).loss_fraction)
        rows.append(
            (deadline, correction.sender_loss, correction.total_loss,
             float(np.mean(sims)))
        )
    return rows


def test_waiting_definition_bracket(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = ascii_table(
        ["K", "eq 4.7 (paper wait)", "corrected (true wait)", "simulated (true)"],
        [[f"{k:g}", f"{a:.4f}", f"{b:.4f}", f"{c:.4f}"] for k, a, b, c in rows],
        title="Waiting-time definitions: analysis vs simulation (rho'=0.75, M=25)",
    )
    save_result("waiting_definition", table)
    for _k, eq47, corrected, simulated in rows:
        assert eq47 <= corrected
        # the truth lies between the definitions, with simulation noise
        assert eq47 - 0.02 <= simulated <= corrected + 0.02

"""Sensitivity benches: robustness sweeps beyond the paper's evaluation.

Not reproductions of paper figures; these probe the assumptions the
paper's analysis makes (infinite population, Poisson arrivals, geometric
scheduling-time shape) using the simulator as ground truth.
"""

from repro.experiments import (
    ablation_table,
    ascii_table,
    burstiness_sensitivity,
    scheduling_model_sensitivity,
    station_count_sensitivity,
)

from .conftest import save_result


def test_station_count(benchmark):
    """Performance should be nearly population-independent: the protocol
    keys on arrival instants, not station identities."""
    arms = benchmark.pedantic(
        station_count_sensitivity,
        kwargs=dict(horizon=80_000.0, warmup=10_000.0),
        rounds=1,
        iterations=1,
    )
    save_result("sensitivity_stations", ablation_table(arms, "Loss vs population"))
    losses = [arm.loss for arm in arms]
    spread = max(losses) - min(losses)
    noise = 4 * max(arm.stderr or 0.0 for arm in arms)
    assert spread <= max(0.02, 2 * noise)


def test_burstiness(benchmark):
    """Burstier traffic (same mean rate) loses more messages."""
    arms = benchmark.pedantic(
        burstiness_sensitivity,
        kwargs=dict(horizon=120_000.0, warmup=15_000.0),
        rounds=1,
        iterations=1,
    )
    save_result("sensitivity_burstiness", ablation_table(arms, "Loss vs burstiness"))
    losses = [arm.loss for arm in arms]
    assert losses[-1] > losses[0]  # heaviest burst loses most


def test_scheduling_model_shape(benchmark):
    """The paper's geometric scheduling-time approximation is benign: the
    eq. 4.7 loss changes by well under 5% across deadlines."""
    rows = benchmark.pedantic(scheduling_model_sensitivity, rounds=1, iterations=1)
    save_result(
        "sensitivity_scheduling_shape",
        ascii_table(["K", "exact", "geometric", "gap"], rows,
                    title="Eq. 4.7: exact vs geometric scheduling law"),
    )
    for _deadline, _exact, _geo, gap in rows:
        assert float(gap.rstrip("%")) < 5.0

"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure of the paper (see DESIGN.md §4)
and writes the reproduced rows under ``benchmarks/results/`` so the
artifacts survive the run; pytest-benchmark reports the generation time.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a reproduced table under benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")

"""Theorem 1 bench (experiment E-T1).

Regenerates the decision-model results of §3 / Appendix A: the
exhaustive {Pʷ} sweep, the policy-iteration fixed point, and the
Monte-Carlo pseudo-time cross-check — everything the paper proves,
verified numerically.
"""

from repro.experiments import Theorem1Config, run_theorem1_experiment

from .conftest import save_result

CONFIG = Theorem1Config(
    arrival_rate=0.15, deadline=10, transmission=4, window_length=4, depth=8
)


def test_theorem1(benchmark):
    report = benchmark.pedantic(
        run_theorem1_experiment,
        args=(CONFIG,),
        kwargs={"simulate": True, "sim_horizon": 200_000.0},
        rounds=1,
        iterations=1,
    )
    save_result("theorem1", report.to_table())

    # The paper's Theorem 1, three ways:
    assert report.minimum_slack_is_best()
    assert report.iteration_uses_theorem_elements()
    sim = {(r.placement, r.split): r.loss for r in report.simulated}
    assert sim["oldest", "older"] == min(sim.values())

    # Element 1 dominates element 3 at these parameters.
    family = {(r.placement, r.split): r.loss for r in report.family}
    assert family["oldest", "newer"] < family["newest", "older"]

"""Validity bench: the model-validity divergence map on the full grid.

Not a reproduction of a paper figure — the paper never evaluated its
analysis off the Poisson assumption.  This regenerates the ISSUE 9
dashboard (every scenario family x the Figure-7 grid) and asserts its
headline: eq. 4.7 holds for the stationary control and breaks for every
nonstationary family.  pytest-benchmark reports the sweep time
EXPERIMENTS.md quotes.
"""

from repro.experiments import ValidityConfig, run_validity

from .conftest import save_result


def test_validity_map(benchmark):
    report = benchmark.pedantic(
        run_validity,
        args=(ValidityConfig(),),
        kwargs=dict(workers=4),
        rounds=1,
        iterations=1,
    )
    save_result("validity_map", report.to_table())
    summaries = {s.family: s for s in report.family_summaries()}
    assert summaries["stationary"].holds
    for family in ("heavy-tailed", "diurnal", "flash-crowd", "adversarial"):
        assert not summaries[family].holds, family

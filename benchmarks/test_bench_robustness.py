"""Robustness benches: graceful degradation under injected faults.

Not paper reproductions — the paper assumes perfect feedback.  These
benches quantify how the protocol leaves that envelope: loss should rise
*smoothly* with the feedback-error rate (no cliff, no deadlock), and a
population suffering crashes and deaf periods must still run to
completion with bounded replica divergence.
"""

from repro.experiments import (
    RobustnessConfig,
    ascii_table,
    feedback_error_sweep,
    station_failure_scenario,
)
from repro.stats.summaries import monotone_fraction

from .conftest import save_result


def test_feedback_error_degradation(benchmark):
    """Loss grows monotonically (modulo noise) in the feedback-error rate
    at the paper's central operating point (rho' = 0.5, M = 25, K = 3M)."""
    report = benchmark.pedantic(feedback_error_sweep, rounds=1, iterations=1)
    save_result("robustness_feedback_errors", report.to_table())
    losses = report.losses()
    # Harsher channels lose strictly more end-to-end...
    assert losses[-1] > losses[0]
    # ...and the curve is monotone up to replication noise.
    assert monotone_fraction(losses, decreasing=False) >= 0.75
    # Degradation, not collapse: even at 5% symmetric feedback error the
    # protocol keeps resolving traffic rather than saturating.
    assert not report.points[-1].saturated


def test_station_failure_soak(benchmark):
    """Crash/restart and deafness cycles never deadlock the protocol: all
    replications reach the horizon and every restart re-synchronizes."""
    config = RobustnessConfig()
    results = benchmark.pedantic(
        station_failure_scenario, args=(config,), rounds=1, iterations=1
    )
    rows = []
    for i, result in enumerate(results):
        t = result.faults
        assert t.crashes > 0
        assert t.resyncs >= t.restarts + t.deaf_recoveries
        assert result.loss_fraction < 0.5  # degraded, not collapsed
        rows.append(
            [
                str(config.base_seed + i),
                f"{result.loss_fraction:.4f}",
                str(result.lost_to_faults),
                str(t.crashes),
                str(t.restarts),
                str(t.deaf_events),
                str(t.resyncs),
                str(t.peak_cohorts),
            ]
        )
    save_result(
        "robustness_station_failures",
        ascii_table(
            ["seed", "loss", "fault-lost", "crashes", "restarts",
             "deaf", "resyncs", "peak cohorts"],
            rows,
            title=(
                f"Station-failure soak: rho'={config.rho_prime:g}, "
                f"M={config.message_length}, K={config.deadline:g}, "
                f"{config.horizon:g} slots"
            ),
        ),
    )

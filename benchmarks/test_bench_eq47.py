"""Eq. 4.7 bench (experiment E-47): the paper's analytic checks.

§4.1 offers two sanity limits for the loss formula — p(loss) → 0 as
K → ∞ and p(loss) → 1 − P(0) as K → 0 — and this repo adds the modern
validation the 1983 authors could not run: agreement between the series
solver, an exact discrete workload chain, and Monte Carlo, across loads
including ρ > 1.
"""

import numpy as np
import pytest

from repro.experiments import ascii_table
from repro.queueing import (
    ImpatientMG1,
    deterministic_pmf,
    simulate_impatient_mg1,
    solve_workload_chain,
)

from .conftest import save_result

CASES = [
    # (lambda, M, K) — rho = lambda * M
    (0.02, 25, 50.0),
    (0.03, 25, 60.0),
    (0.05, 25, 60.0),  # rho = 1.25: only balking keeps it stable
]


def _solve_all():
    rows = []
    rng = np.random.default_rng(2024)
    for lam, m, deadline in CASES:
        service = deterministic_pmf(m)
        series = ImpatientMG1(lam, service.refine(4), deadline).solve()
        chain = solve_workload_chain(lam, service.refine(4), deadline)
        mc = simulate_impatient_mg1(lam, service, deadline, 300_000, rng)
        rows.append(
            (lam, m, deadline, series.loss_probability, chain.loss_probability,
             mc.loss_probability, mc.loss_stderr())
        )
    return rows


def test_eq47_three_way_agreement(benchmark):
    rows = benchmark.pedantic(_solve_all, rounds=1, iterations=1)
    table_rows = [
        [f"{lam:g}", f"{m}", f"{K:g}", f"{lam * m:.2f}",
         f"{s:.5f}", f"{c:.5f}", f"{mc:.5f}±{2 * se:.5f}"]
        for lam, m, K, s, c, mc, se in rows
    ]
    save_result(
        "eq47_agreement",
        ascii_table(
            ["lambda", "M", "K", "rho", "series (4.7)", "workload chain", "monte carlo"],
            table_rows,
            title="Eq. 4.7 vs exact chain vs simulation",
        ),
    )
    for _lam, _m, _K, series, chain, mc, se in rows:
        assert series == pytest.approx(chain, rel=0.05, abs=5e-4)
        assert series == pytest.approx(mc, rel=0.12, abs=max(4 * se, 1e-3))


def test_eq47_limits(benchmark):
    """The paper's two limit checks on eq. 4.7."""

    def limits():
        import math

        lam, m = 0.03, 25
        service = deterministic_pmf(m)
        at_zero = ImpatientMG1(lam, service, 0.0).solve()
        at_large = ImpatientMG1(lam, service, 2_000.0).solve()
        at_inf = ImpatientMG1(lam, service, math.inf).solve()
        return at_zero, at_large, at_inf

    at_zero, at_large, at_inf = benchmark.pedantic(limits, rounds=1, iterations=1)
    rho = 0.75
    # K -> 0: loss -> 1 − P(0) (customer enters only an empty system).
    assert at_zero.loss_probability == pytest.approx(1.0 - at_zero.idle_probability)
    assert at_zero.loss_probability == pytest.approx(rho / (1 + rho), rel=1e-9)
    # K large: loss already negligible.
    assert at_large.loss_probability < 1e-8
    # K = inf: loss exactly 0 and P(0) = 1 − ρ.
    assert at_inf.loss_probability == 0.0
    assert at_inf.idle_probability == pytest.approx(1 - rho, rel=1e-9)

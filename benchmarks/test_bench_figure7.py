"""Figure 7 benches (experiments F7a–F7f).

Each bench regenerates one panel of the paper's Figure 7: loss versus
the time constraint K for the controlled protocol (eq. 4.7 analytic +
slot-level simulation) against the uncontrolled FCFS and LCFS protocols
of [Kurose 83].  Absolute values need not match the 1983 plots (whose
axes are unreadable in the scan); the *shape* assertions encode what the
paper claims:

* every curve falls as K grows;
* the controlled protocol never loses more than FCFS;
* LCFS beats FCFS at tight K and loses at loose K;
* losses grow with ρ′ at fixed K/M;
* analytic and simulated controlled curves agree to paper-level accuracy.

Simulation arms run at a reduced horizon to keep the bench finite; the
analytic arms use the full grid.
"""

import pytest

from repro.experiments import PanelConfig, generate_panel
from repro.stats import monotone_fraction

from .conftest import save_result

SIM_HORIZON = 80_000.0
SIM_WARMUP = 10_000.0


def _panel(rho_prime: float, message_length: int, simulate: bool):
    config = PanelConfig(rho_prime=rho_prime, message_length=message_length)
    m = message_length
    deadlines = [m * mult for mult in (0.5, 1, 1.5, 2, 3, 4, 6, 8, 12)]
    sim_deadlines = [m * mult for mult in (1, 3, 6)]
    return generate_panel(
        config,
        deadlines=deadlines,
        include_simulation=simulate,
        sim_horizon=SIM_HORIZON,
        sim_warmup=SIM_WARMUP,
        sim_deadlines=sim_deadlines,
    )


def _assert_panel_shape(panel):
    controlled = panel.series["controlled_analytic"]
    fcfs = panel.series["fcfs_analytic"]
    lcfs = panel.series["lcfs_analytic"]

    # Monotone decreasing loss in K for the analytic curves.
    for series in (controlled, fcfs, lcfs):
        assert monotone_fraction(series.losses(), decreasing=True) == 1.0

    # Controlled never worse than FCFS (Theorem 1 + element 4).
    for c, f in zip(controlled.losses(), fcfs.losses()):
        assert c <= f + 1e-9

    # LCFS/FCFS crossover: better at the tightest K, worse at the loosest
    # (when the queue is stable; a saturated panel pins all baselines at 1).
    if fcfs.losses()[0] < 1.0:
        assert lcfs.losses()[0] <= fcfs.losses()[0] + 1e-9
        assert lcfs.losses()[-1] >= fcfs.losses()[-1] - 1e-9

    # Simulation corroboration for the controlled protocol.
    if "controlled_sim" in panel.series:
        sim = panel.series["controlled_sim"]
        for point in sim.points:
            analytic = controlled.loss_at(point.deadline)
            tolerance = max(0.03, 6 * (point.stderr or 0.0), 0.5 * analytic)
            assert abs(point.loss - analytic) <= tolerance


@pytest.mark.parametrize(
    "name,rho,m",
    [
        ("f7_rho25_m25", 0.25, 25),
        ("f7_rho25_m100", 0.25, 100),
        ("f7_rho50_m25", 0.50, 25),
        ("f7_rho50_m100", 0.50, 100),
        ("f7_rho75_m25", 0.75, 25),
        ("f7_rho75_m100", 0.75, 100),
    ],
)
def test_figure7_panel(benchmark, name, rho, m):
    panel = benchmark.pedantic(
        _panel, args=(rho, m, True), rounds=1, iterations=1
    )
    save_result(name, panel.to_table())
    _assert_panel_shape(panel)


def test_f7_load_ordering(benchmark):
    """Across panels: higher ρ′ means higher loss at the same K/M."""

    def build():
        return {
            rho: _panel(rho, 25, simulate=False) for rho in (0.25, 0.50, 0.75)
        }

    panels = benchmark.pedantic(build, rounds=1, iterations=1)
    for multiplier in (25.0, 75.0, 300.0):
        losses = [
            panels[rho].series["controlled_analytic"].loss_at(multiplier)
            for rho in (0.25, 0.50, 0.75)
        ]
        assert losses[0] <= losses[1] <= losses[2] + 1e-12

"""Protocol controller: the shared state machine of all stations.

Because every station observes the same channel feedback and follows the
same policy, the entire network's protocol state is a single object
(§2): the set of unresolved past time, the discard horizon (element 4),
and the windowing process currently in flight.  The controller owns that
state; a channel substrate (:mod:`repro.mac`) drives it by asking for
decisions and reporting feedback.

Under the optimal policy the unresolved set is always one contiguous
interval whose old edge is the paper's ``t_past`` (consequence of
Theorem 1, end of §3.2) — asserted by the test suite; uncontrolled
policies legitimately fragment it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .policy import ControlPolicy
from .timeline import IntervalSet
from .window import WindowingProcess

__all__ = ["DiscardReport", "ProtocolController"]


@dataclass(frozen=True)
class DiscardReport:
    """What element 4 removed at a decision epoch.

    Attributes
    ----------
    horizon:
        The cut instant ``now − K``; stations drop older messages.
    measure_removed:
        Unresolved time discarded (0 when nothing was stale).
    """

    horizon: float
    measure_removed: float


class ProtocolController:
    """Tracks unresolved time and issues windowing processes.

    Parameters
    ----------
    policy:
        The four-element control policy.
    rng:
        Random generator for stochastic policy elements (random position
        or random split); optional otherwise.
    """

    def __init__(self, policy: ControlPolicy, rng: Optional[np.random.Generator] = None):
        self.policy = policy
        self.rng = rng
        self.unresolved = IntervalSet()
        self.frontier = 0.0

    @property
    def t_past(self) -> Optional[float]:
        """The oldest unresolved instant (None when fully resolved)."""
        return None if self.unresolved.is_empty() else self.unresolved.oldest()

    def backlog_measure(self) -> float:
        """Pseudo-time extent of unresolved time."""
        return self.unresolved.measure

    def advance_time(self, now: float) -> None:
        """Account for newly elapsed time ``[frontier, now]``."""
        if now < self.frontier - 1e-9:
            raise ValueError(f"time moved backwards: {now} < {self.frontier}")
        if now > self.frontier:
            self.unresolved.add(self.frontier, now)
            self.frontier = now

    def apply_discard(self, now: float) -> Optional[DiscardReport]:
        """Apply policy element 4 at the current instant.

        Returns a report (for the simulator to drop stale messages), or
        None when the policy has no discard deadline.
        """
        deadline = self.policy.discard_deadline
        if deadline is None:
            return None
        horizon = now - deadline
        removed = self.unresolved.clamp_before(horizon)
        return DiscardReport(horizon=horizon, measure_removed=removed)

    def resynchronize(self, now: float, horizon: float) -> None:
        """Fault-recovery reset: declare ``[now − horizon, now]`` unresolved.

        Used by :mod:`repro.faults` when a station's replica of the
        shared state has (or may have) diverged from the network's — a
        detected inconsistency, a crash restart, or recovery from a deaf
        period.  The reset is *conservative*: it marks the whole recent
        horizon unresolved again, so windows may re-examine time that was
        already resolved (those examinations come back idle and cost
        slots) but no pending message is ever excluded from future
        windows.  With policy element 4 active, anything older than the
        constraint ``K`` would be discarded anyway, so resetting to
        ``[now − K, now]`` loses nothing schedulable.
        """
        if horizon <= 0:
            raise ValueError(f"resync horizon must be positive, got {horizon}")
        self.unresolved = IntervalSet()
        start = max(0.0, now - horizon)
        if now > start:
            self.unresolved.add(start, now)
        self.frontier = now

    def begin_process(self, now: float) -> Optional[WindowingProcess]:
        """Select an initial window and start a windowing process.

        Advances bookkeeping to ``now``, applies element 4, and carves
        the initial window with elements 1 and 2.  Returns ``None`` when
        no unresolved time exists (the channel waits one slot).
        """
        self.advance_time(now)
        self.apply_discard(now)
        measure = self.unresolved.measure
        if measure <= 1e-12:
            return None
        length = min(self.policy.length.length(measure), measure)
        span = self.policy.position.select(self.unresolved, length, self.rng)
        if span.is_empty():
            return None
        return WindowingProcess(
            span, split=self.policy.split, arity=self.policy.split_arity, rng=self.rng
        )

    def complete_process(self, process: WindowingProcess) -> None:
        """Fold a finished process's resolved time back into the state."""
        if not process.done:
            raise ValueError("cannot complete an unfinished windowing process")
        for span in process.resolved_spans:
            self.unresolved.subtract_span(span)

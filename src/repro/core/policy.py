"""The four control-policy elements of the window protocol (§2–§3).

A :class:`ControlPolicy` bundles the paper's four policy elements:

1. **position** — where the initial window starts
   (:class:`OldestFirstPosition` is Theorem 1's optimal choice;
   :class:`NewestFirstPosition` and :class:`RandomPosition` realise the
   LCFS and RANDOM disciplines of [Kurose 83]);
2. **length** — how long the initial window is
   (:class:`OccupancyLength` is the §4.1 heuristic: target the occupancy
   μ* that minimises the mean scheduling time;
   :class:`FixedLength`/:class:`FullBacklogLength` for ablations);
3. **split** — which half of a split window is examined first
   (``"older"`` is Theorem 1's optimal choice);
4. **discard** — whether messages older than the constraint K are
   discarded at the sender (element 4; disabling it recovers the
   uncontrolled protocols, which lose messages only at the receiver).

Factory methods :meth:`ControlPolicy.optimal`,
:meth:`ControlPolicy.uncontrolled_fcfs`, :meth:`~ControlPolicy.uncontrolled_lcfs`
and :meth:`~ControlPolicy.uncontrolled_random` build the four protocols
evaluated in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..crp.window_opt import WindowSizer
from .timeline import IntervalSet, Span

__all__ = [
    "PositionRule",
    "OldestFirstPosition",
    "NewestFirstPosition",
    "RandomPosition",
    "LengthRule",
    "FixedLength",
    "FullBacklogLength",
    "OccupancyLength",
    "ControlPolicy",
]


# -- element 1: window position ---------------------------------------------------


class PositionRule:
    """Strategy choosing where the initial window sits in the backlog."""

    def select(
        self, unresolved: IntervalSet, length: float, rng: Optional[np.random.Generator]
    ) -> Span:
        """Carve a window span of (at most) ``length`` from the backlog."""
        raise NotImplementedError


class OldestFirstPosition(PositionRule):
    """Window starts at the oldest unresolved instant (Theorem 1, element 1)."""

    def select(self, unresolved, length, rng=None) -> Span:
        return unresolved.slice_oldest(length)


class NewestFirstPosition(PositionRule):
    """Window covers the youngest unresolved time (LCFS discipline)."""

    def select(self, unresolved, length, rng=None) -> Span:
        return unresolved.slice_youngest(length)


class RandomPosition(PositionRule):
    """Window placed uniformly at random within the backlog (RANDOM)."""

    def select(self, unresolved, length, rng) -> Span:
        if rng is None:
            raise ValueError("RandomPosition requires an rng")
        slack = max(0.0, unresolved.measure - length)
        offset = rng.uniform(0.0, slack) if slack > 0 else 0.0
        return unresolved.slice_offset(offset, length)


# -- element 2: window length -----------------------------------------------------


class LengthRule:
    """Strategy choosing the initial window length."""

    def length(self, unresolved_measure: float) -> float:
        """Desired window length given the current backlog measure."""
        raise NotImplementedError

    def constant_length(self) -> Optional[float]:
        """The rule's backlog-independent length, or ``None``.

        The fast simulation kernel (:mod:`repro.mac.fastpath`) asks once
        per run instead of re-deriving the length at every decision
        epoch; rules whose length depends on the backlog return ``None``
        and are evaluated per epoch.
        """
        return None


@dataclass(frozen=True)
class FixedLength(LengthRule):
    """A constant window length (clipped to the backlog by the caller)."""

    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError(f"window length must be positive, got {self.value}")

    def length(self, unresolved_measure: float) -> float:
        return self.value

    def constant_length(self) -> Optional[float]:
        return self.value


class FullBacklogLength(LengthRule):
    """Window covers the entire backlog (one pass, heavy splitting)."""

    def length(self, unresolved_measure: float) -> float:
        return unresolved_measure if unresolved_measure > 0 else 1.0


@dataclass(frozen=True)
class OccupancyLength(LengthRule):
    """The §4.1 heuristic: target occupancy μ* at the given arrival rate.

    Parameters
    ----------
    arrival_rate:
        The rate of messages the windows will encounter (for the
        controlled protocol, the *accepted* rate).
    occupancy:
        Target mean arrivals per window; ``None`` uses the universal
        optimum μ* ≈ 1.09 of :func:`repro.crp.window_opt.optimal_window_occupancy`.
    """

    arrival_rate: float
    occupancy: Optional[float] = None

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.arrival_rate}")

    def length(self, unresolved_measure: float) -> float:
        sizer = WindowSizer(occupancy=self.occupancy)
        return sizer.window_length(self.arrival_rate)

    def constant_length(self) -> Optional[float]:
        return self.length(0.0)


# -- the bundled policy -------------------------------------------------------------


@dataclass(frozen=True)
class ControlPolicy:
    """The four policy elements bundled (see module docstring).

    Attributes
    ----------
    position:
        Element 1 — initial window position rule.
    length:
        Element 2 — initial window length rule.
    split:
        Element 3 — ``"older"``, ``"newer"`` or ``"random"``.
    discard_deadline:
        Element 4 — discard messages older than this at the sender;
        ``None`` disables sender discards (uncontrolled operation).
    name:
        Human-readable label used in experiment output.
    """

    position: PositionRule
    length: LengthRule
    split: str
    discard_deadline: Optional[float]
    name: str
    split_arity: int = 2

    def __post_init__(self):
        if self.split not in ("older", "newer", "random"):
            raise ValueError(f"unknown split rule: {self.split!r}")
        if self.discard_deadline is not None and self.discard_deadline <= 0:
            raise ValueError(
                f"discard deadline must be positive, got {self.discard_deadline}"
            )
        if self.split_arity < 2:
            raise ValueError(f"split arity must be at least 2, got {self.split_arity}")

    # -- factories -----------------------------------------------------------

    @classmethod
    def optimal(
        cls,
        deadline: float,
        accepted_rate: float,
        occupancy: Optional[float] = None,
    ) -> "ControlPolicy":
        """Theorem 1 elements + the §4.1 length heuristic + element 4."""
        return cls(
            position=OldestFirstPosition(),
            length=OccupancyLength(accepted_rate, occupancy),
            split="older",
            discard_deadline=deadline,
            name="controlled",
        )

    @classmethod
    def uncontrolled_fcfs(cls, arrival_rate: float) -> "ControlPolicy":
        """[Kurose 83] FCFS: oldest-first windows, everything transmitted."""
        return cls(
            position=OldestFirstPosition(),
            length=OccupancyLength(arrival_rate),
            split="older",
            discard_deadline=None,
            name="fcfs",
        )

    @classmethod
    def uncontrolled_lcfs(cls, arrival_rate: float) -> "ControlPolicy":
        """[Kurose 83] LCFS: newest-first windows, everything transmitted."""
        return cls(
            position=NewestFirstPosition(),
            length=OccupancyLength(arrival_rate),
            split="newer",
            discard_deadline=None,
            name="lcfs",
        )

    @classmethod
    def uncontrolled_random(cls, arrival_rate: float) -> "ControlPolicy":
        """[Kurose 83] RANDOM: uniformly placed windows, everything sent."""
        return cls(
            position=RandomPosition(),
            length=OccupancyLength(arrival_rate),
            split="random",
            discard_deadline=None,
            name="random",
        )

"""Canonical window split rules — policy element 3, implemented once.

Every kernel that resolves collisions — the reference loop's
:class:`~repro.core.window.WindowingProcess`, the fast kernel
(:mod:`repro.mac.fastpath`), the batched lanes (:mod:`repro.mac.batch`)
and the compiled backend (:mod:`repro.mac.kernels`) — splits a colliding
span into ``arity`` equal-measure parts and examines them in the
policy's order.  Those two decisions are the protocol's split semantics,
and they live *here* and nowhere else: :func:`split_parts` carves the
parts (the exact ``split_at_measure`` walk, so every kernel produces the
same float endpoints bit for bit) and :func:`examination_order` realises
element 3 (``"older"`` / ``"newer"`` deterministic orders, ``"random"``
via the caller's generator with the same draw pattern everywhere).

This module sits in :mod:`repro.core` so the windowing state machine can
import it without touching :mod:`repro.mac`;
:mod:`repro.mac.kernels.primitives` re-exports both functions as part of
the shared kernel-primitive surface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .timeline import Span

__all__ = ["split_parts", "examination_order"]


def split_parts(span: Span, arity: int) -> List[Span]:
    """Split a span into ``arity`` equal-measure parts, oldest first.

    The offset of every cut is ``total / arity`` with ``total`` the
    *original* span measure — not the shrinking remainder — so the float
    endpoints are reproducible by any kernel that replays the same walk.
    """
    parts: List[Span] = []
    rest = span
    total = span.measure
    for _ in range(arity - 1):
        piece, rest = rest.split_at_measure(total / arity)
        parts.append(piece)
    parts.append(rest)
    return parts


def examination_order(
    split: str, n_parts: int, rng: Optional[np.random.Generator]
) -> Sequence[int]:
    """Element 3: the order in which split parts are examined.

    ``"older"`` examines oldest-first, ``"newer"`` newest-first, and
    ``"random"`` shuffles a list of part indices with ``rng`` — the
    *list* form specifically, so every kernel consumes the generator's
    bitstream identically (NumPy's array and sequence shuffles draw the
    same way, but pinning one call form removes the question).
    """
    if split == "older":
        return range(n_parts)
    if split == "newer":
        return range(n_parts - 1, -1, -1)
    if rng is None:
        raise ValueError("random split requires an rng")
    order = list(range(n_parts))
    rng.shuffle(order)
    return order

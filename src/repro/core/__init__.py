"""The paper's primary contribution: the controlled window protocol.

Policy elements 1-4 (:mod:`repro.core.policy`), the station's view of
the time axis (:mod:`repro.core.timeline`), the windowing / splitting
state machine (:mod:`repro.core.window`) and the shared protocol
controller (:mod:`repro.core.controller`).
"""

from .controller import DiscardReport, ProtocolController
from .policy import (
    ControlPolicy,
    FixedLength,
    FullBacklogLength,
    LengthRule,
    NewestFirstPosition,
    OccupancyLength,
    OldestFirstPosition,
    PositionRule,
    RandomPosition,
)
from .timeline import IntervalSet, Span
from .window import ChannelFeedback, WindowingProcess

__all__ = [
    "ControlPolicy",
    "PositionRule",
    "OldestFirstPosition",
    "NewestFirstPosition",
    "RandomPosition",
    "LengthRule",
    "FixedLength",
    "FullBacklogLength",
    "OccupancyLength",
    "IntervalSet",
    "Span",
    "ChannelFeedback",
    "WindowingProcess",
    "ProtocolController",
    "DiscardReport",
]

"""Bookkeeping of the station's view of the time axis (Figure 2).

Every station tracks which intervals of past time may still contain
untransmitted message arrivals.  Intervals known to be empty — examined
idle windows, resolved chunks, transmitted sub-windows, and (under
policy element 4) anything older than the constraint — are removed from
consideration.  The remaining *unresolved* time is what initial windows
are drawn from; measuring along it is exactly the paper's pseudo time
(§3.1).

:class:`IntervalSet` stores the unresolved region as disjoint, sorted
intervals and supports the measure-based slicing the window policies
need: "the oldest w units of unresolved time" is a :class:`Span` — a
list of real-time intervals of total length w — and splitting a span in
half by measure is the real-axis realisation of splitting the pseudo-time
window in half.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Tuple

__all__ = ["Span", "IntervalSet"]

_EPS = 1e-12


@dataclass(frozen=True)
class Span:
    """A finite union of disjoint real-time intervals, sorted ascending.

    Represents a window (or window half) on the real axis; its *measure*
    is the window's pseudo-time length.  Real time increases to the
    right; *older* means smaller values.
    """

    pieces: Tuple[Tuple[float, float], ...]

    @cached_property
    def measure(self) -> float:
        """Total length of all pieces.

        Cached: spans are frozen, and the hot kernels (split descents
        under feedback faults especially) query the same span's measure
        several times per slot.  The cached value is the identical
        left-to-right float sum, so bit-parity is unaffected.
        """
        pieces = self.pieces
        if len(pieces) == 1:
            lo, hi = pieces[0]
            return hi - lo
        return sum(hi - lo for lo, hi in pieces)

    @property
    def start(self) -> float:
        """Oldest instant covered."""
        if not self.pieces:
            raise ValueError("empty span has no start")
        return self.pieces[0][0]

    @property
    def end(self) -> float:
        """Youngest instant covered."""
        if not self.pieces:
            raise ValueError("empty span has no end")
        return self.pieces[-1][1]

    def is_empty(self) -> bool:
        """Whether the span covers no time."""
        return self.measure <= _EPS

    def split_half(self) -> Tuple["Span", "Span"]:
        """Split into (older half, newer half) of equal measure."""
        half = 0.5 * self.measure
        return self.split_at_measure(half)

    def split_at_measure(self, offset: float) -> Tuple["Span", "Span"]:
        """Split into (oldest ``offset`` of measure, the rest)."""
        pieces = self.pieces
        if len(pieces) == 1:
            # Single-interval fast path: the overwhelmingly common case
            # in the slot kernels (contiguous windows).  Reproduces the
            # generic walk below exactly — same branches, same float
            # endpoint ``lo + offset`` — so every kernel still produces
            # bit-identical spans.
            lo, hi = pieces[0]
            width = hi - lo
            if offset < -_EPS or offset > width + _EPS:
                raise ValueError(
                    f"split offset {offset} outside span measure {width}"
                )
            if offset >= width - _EPS:
                return self, Span(())
            if offset <= _EPS:
                return Span(()), self
            cut = lo + offset
            return Span(((lo, cut),)), Span(((cut, hi),))
        if offset < -_EPS or offset > self.measure + _EPS:
            raise ValueError(
                f"split offset {offset} outside span measure {self.measure}"
            )
        older: List[Tuple[float, float]] = []
        newer: List[Tuple[float, float]] = []
        remaining = offset
        for lo, hi in self.pieces:
            width = hi - lo
            if remaining >= width - _EPS:
                older.append((lo, hi))
                remaining -= width
            elif remaining <= _EPS:
                newer.append((lo, hi))
            else:
                older.append((lo, lo + remaining))
                newer.append((lo + remaining, hi))
                remaining = 0.0
        return Span(tuple(older)), Span(tuple(newer))

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` lies inside the span."""
        return any(lo <= t <= hi for lo, hi in self.pieces)


@dataclass
class IntervalSet:
    """Disjoint, sorted intervals of time possibly containing arrivals."""

    _lows: List[float] = field(default_factory=list)
    _highs: List[float] = field(default_factory=list)

    @property
    def measure(self) -> float:
        """Total unresolved time (the pseudo-time backlog extent)."""
        return sum(hi - lo for lo, hi in zip(self._lows, self._highs))

    @property
    def n_intervals(self) -> int:
        """Number of disjoint unresolved intervals (gap complexity)."""
        return len(self._lows)

    def is_empty(self) -> bool:
        """Whether no unresolved time remains."""
        return not self._lows

    def oldest(self) -> float:
        """The oldest unresolved instant (the paper's t_past)."""
        if not self._lows:
            raise ValueError("interval set is empty")
        return self._lows[0]

    def youngest(self) -> float:
        """The youngest unresolved instant."""
        if not self._highs:
            raise ValueError("interval set is empty")
        return self._highs[-1]

    def intervals(self) -> List[Tuple[float, float]]:
        """A copy of the interval list."""
        return list(zip(self._lows, self._highs))

    # -- mutation ----------------------------------------------------------

    def add(self, lo: float, hi: float) -> None:
        """Mark ``[lo, hi]`` as possibly containing arrivals (union)."""
        if hi <= lo + _EPS:
            return
        i = bisect.bisect_left(self._highs, lo)
        j = bisect.bisect_right(self._lows, hi)
        if i < j:
            lo = min(lo, self._lows[i])
            hi = max(hi, self._highs[j - 1])
        self._lows[i:j] = [lo]
        self._highs[i:j] = [hi]

    def subtract(self, lo: float, hi: float) -> None:
        """Mark ``[lo, hi]`` as resolved (set difference)."""
        if hi <= lo + _EPS:
            return
        i = bisect.bisect_right(self._highs, lo + _EPS)
        j = bisect.bisect_left(self._lows, hi - _EPS)
        if i >= j:
            # Check the single interval possibly containing [lo, hi].
            if i < len(self._lows) and self._lows[i] < lo and hi < self._highs[i]:
                # Split one interval in two.
                old_hi = self._highs[i]
                self._highs[i] = lo
                self._lows.insert(i + 1, hi)
                self._highs.insert(i + 1, old_hi)
            return
        new_lows: List[float] = []
        new_highs: List[float] = []
        if self._lows[i] < lo - _EPS:
            new_lows.append(self._lows[i])
            new_highs.append(lo)
        if self._highs[j - 1] > hi + _EPS:
            new_lows.append(hi)
            new_highs.append(self._highs[j - 1])
        self._lows[i:j] = new_lows
        self._highs[i:j] = new_highs

    def subtract_span(self, span: Span) -> None:
        """Resolve every piece of ``span``."""
        for lo, hi in span.pieces:
            self.subtract(lo, hi)

    def clamp_before(self, t: float) -> float:
        """Drop everything older than ``t`` (policy element 4).

        Returns the measure removed (time aged past the constraint).
        """
        removed = 0.0
        while self._lows and self._highs[0] <= t + _EPS:
            removed += self._highs[0] - self._lows[0]
            del self._lows[0]
            del self._highs[0]
        if self._lows and self._lows[0] < t:
            removed += t - self._lows[0]
            self._lows[0] = t
        return removed

    # -- slicing -----------------------------------------------------------

    def slice_oldest(self, length: float) -> Span:
        """The oldest ``length`` units of unresolved measure as a span."""
        return self._slice(length, from_old_end=True)

    def slice_youngest(self, length: float) -> Span:
        """The youngest ``length`` units of unresolved measure."""
        return self._slice(length, from_old_end=False)

    def slice_offset(self, offset: float, length: float) -> Span:
        """``length`` units of measure starting ``offset`` from the old end."""
        whole = Span(tuple(self.intervals()))
        _, after = whole.split_at_measure(min(offset, whole.measure))
        window, _ = after.split_at_measure(min(length, after.measure))
        return window

    def _slice(self, length: float, from_old_end: bool) -> Span:
        whole = Span(tuple(self.intervals()))
        length = min(length, whole.measure)
        if from_old_end:
            window, _ = whole.split_at_measure(length)
        else:
            _, window = whole.split_at_measure(whole.measure - length)
        return window

"""The windowing process — collision resolution on a window span.

:class:`WindowingProcess` is the distributed algorithm every station
runs in §2: examine the initial window; on collision split it (in half
by default; §5 suggests other arities, supported here) and examine the
parts in policy order; an idle part hands examination to the next
sibling — and when every earlier sibling was idle, the last one is known
to contain all the colliding arrivals and is split immediately without
being examined.  A collision inside a part abandons its remaining
siblings to the backlog and recurses.  The process ends when a single
station transmits, or immediately when the initial window is empty.

The process is an explicit state machine driven by channel feedback, so
the same code serves the analytic checks and the slot-level MAC
simulator: callers repeatedly read :attr:`current_span` (who may
transmit) and report the observed :class:`ChannelFeedback`.

The process records which time it has *resolved* — examined-idle pieces
and the success sub-window — which the caller removes from its
unresolved interval set.  Abandoned siblings are *not* resolved; they
simply remain in the backlog.
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from .splits import examination_order, split_parts
from .timeline import Span

__all__ = ["ChannelFeedback", "WindowingProcess"]

_MAX_SPLIT_DEPTH = 60  # beyond double resolution; splitting cannot separate ties


class ChannelFeedback(enum.Enum):
    """Ternary channel outcome observable by every station after τ."""

    IDLE = "idle"
    SUCCESS = "success"
    COLLISION = "collision"


class WindowingProcess:
    """One windowing process: from an initial window to one transmission.

    Parameters
    ----------
    initial_window:
        The span selected by policy elements 1 and 2.
    split:
        Element 3 — ``"older"``, ``"newer"`` or ``"random"`` examination
        order of split parts.
    arity:
        Number of parts a colliding span is split into (default 2, the
        paper's rule; §5 contemplates other values).
    rng:
        Needed only for the random split order.

    Notes
    -----
    Drive the process with::

        process = WindowingProcess(window, split="older")
        while not process.done:
            feedback = channel.examine(process.current_span)
            process.on_feedback(feedback)

    After completion, :attr:`resolved_spans` lists every piece of time
    the process has proven message-free or transmitted, and
    :attr:`slots_spent` counts the idle/collision slots consumed (the
    success slot starts the transmission and is not counted — see
    DESIGN.md §7).
    """

    def __init__(
        self,
        initial_window: Span,
        split: str = "older",
        arity: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        if initial_window.is_empty():
            raise ValueError("initial window must have positive measure")
        if split not in ("older", "newer", "random"):
            raise ValueError(f"unknown split rule: {split!r}")
        if arity < 2:
            raise ValueError(f"split arity must be at least 2, got {arity}")
        if split == "random" and rng is None:
            raise ValueError("random split requires an rng")
        self.split = split
        self.arity = arity
        self._rng = rng
        self.current_span: Optional[Span] = initial_window
        # Unexamined siblings at the current level, in examination order.
        # Invariant: when non-None, (current_span + siblings) jointly hold
        # at least two arrivals.
        self._siblings: Optional[List[Span]] = None
        self._depth = 0
        self.slots_spent = 0
        self.resolved_spans: List[Span] = []
        self.done = False
        self.transmission_started = False

    @property
    def depth(self) -> int:
        """Current split depth (how many times the window was subdivided).

        Fault-tolerant drivers (:mod:`repro.faults`) watch this: corrupted
        feedback can send the state machine into an idle descent on a
        span it believes occupied, and an abnormal depth is the earliest
        local symptom of a diverged replica.
        """
        return self._depth

    # -- feedback handling --------------------------------------------------

    def on_feedback(self, feedback: ChannelFeedback) -> None:
        """Advance the state machine with the observed channel outcome."""
        if self.done:
            raise RuntimeError("windowing process already finished")
        span = self.current_span
        assert span is not None

        if feedback is ChannelFeedback.SUCCESS:
            # Exactly one ready station; its transmission is under way and
            # the examined span is resolved.
            self.resolved_spans.append(span)
            self.transmission_started = True
            self._finish()
            return

        if feedback is ChannelFeedback.IDLE:
            self.slots_spent += 1
            self.resolved_spans.append(span)
            if self._siblings is None:
                # Empty initial window: the process ends with no message.
                self._finish()
                return
            if len(self._siblings) == 1:
                # All earlier siblings idle: the last one holds every
                # colliding arrival (>= 2) and is split immediately (§2).
                self._split_into(self._siblings[0])
            else:
                self.current_span = self._siblings[0]
                self._siblings = self._siblings[1:]
            return

        # COLLISION: recurse into the examined span; any remaining
        # siblings are abandoned to the backlog.
        self.slots_spent += 1
        self._split_into(span)

    # -- internals -----------------------------------------------------------

    def _finish(self) -> None:
        self.done = True
        self.current_span = None
        self._siblings = None

    def _split_into(self, span: Span) -> None:
        """Split ``span`` into ``arity`` parts and stage the first."""
        self._depth += 1
        if self._depth > _MAX_SPLIT_DEPTH:
            # Two stations generated arrivals closer than double
            # resolution; like the paper's continuous-time protocol, the
            # splitting process cannot separate them.  With float64
            # uniform arrival instants this needs indistinguishable
            # values — astronomically unlikely — so fail loudly rather
            # than silently mis-resolve.
            raise RuntimeError(
                "window splitting exceeded the maximum depth; two arrivals "
                "are indistinguishable at double precision"
            )
        parts = split_parts(span, self.arity)
        order = examination_order(self.split, len(parts), self._rng)
        ordered = [parts[i] for i in order]
        self.current_span = ordered[0]
        self._siblings = ordered[1:]


#: Backward-compatible alias; the canonical implementation moved to
#: :func:`repro.core.splits.split_parts` so every kernel shares it.
_split_parts = split_parts

"""Slotted-ALOHA baseline (extension — not part of the paper's Figure 7).

Included to situate the window protocol among classic random-access
protocols: ALOHA has no scheduling discipline at all, so its
time-constrained performance degrades quickly.  Frames are
``transmission_slots`` long; every backlogged station transmits in a
frame independently with probability p; exactly one transmitter means
success.  Two retransmission policies:

* fixed ``p``;
* ``adaptive=True`` — p = 1/n with n the current backlog (the
  genie-aided stabilisation bound, giving ALOHA its best case 1/e
  throughput).

Messages can optionally be discarded at the sender once older than the
deadline (the analogue of policy element 4), which is the fair
comparison against the controlled window protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = ["AlohaResult", "SlottedAlohaSimulator"]


@dataclass(frozen=True)
class AlohaResult:
    """Outcome of a slotted-ALOHA run (fields as in ``MACSimResult``)."""

    arrivals: int
    delivered_on_time: int
    delivered_late: int
    discarded: int
    unresolved: int
    throughput: float

    @property
    def resolved(self) -> int:
        """Messages with a terminal outcome."""
        return self.arrivals - self.unresolved

    @property
    def loss_fraction(self) -> float:
        """Fraction of resolved messages that missed the deadline."""
        if self.resolved <= 0:
            return float("nan")
        return (self.delivered_late + self.discarded) / self.resolved


class SlottedAlohaSimulator:
    """Frame-slotted ALOHA on the same channel model as the window MAC.

    Parameters
    ----------
    arrival_rate:
        Network-wide Poisson arrival rate (messages per τ slot).
    transmission_slots:
        Message length M; frames are M slots.
    retransmission_probability:
        Fixed per-frame transmission probability (ignored when adaptive).
    adaptive:
        Use p = 1/backlog (idealised stabilised ALOHA).
    deadline:
        Scoring constraint K (slots); also the sender-discard age when
        ``discard_stale`` is set.
    discard_stale:
        Drop messages older than the deadline at the sender.
    """

    def __init__(
        self,
        arrival_rate: float,
        transmission_slots: int,
        deadline: float,
        retransmission_probability: float = 0.1,
        adaptive: bool = True,
        discard_stale: bool = True,
        seed: int = 0,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if transmission_slots < 1:
            raise ValueError("transmission must be at least one slot")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if not 0 < retransmission_probability <= 1:
            raise ValueError("retransmission probability must be in (0, 1]")
        self.arrival_rate = arrival_rate
        self.frame = transmission_slots
        self.deadline = deadline
        self.p = retransmission_probability
        self.adaptive = adaptive
        self.discard_stale = discard_stale
        self.rng = np.random.default_rng(seed)

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> AlohaResult:
        """Simulate and score messages arriving after the warm-up."""
        total = warmup_slots + horizon_slots
        n = self.rng.poisson(self.arrival_rate * total)
        arrival_times = np.sort(self.rng.uniform(0.0, total, size=n))

        backlog: list = []  # arrival times of pending messages
        next_arrival = 0
        delivered_on_time = delivered_late = discarded = 0
        successes = 0
        now = 0.0

        while now < total:
            while next_arrival < n and arrival_times[next_arrival] <= now:
                backlog.append(arrival_times[next_arrival])
                next_arrival += 1

            if self.discard_stale:
                horizon = now - self.deadline
                keep = []
                for arrival in backlog:
                    if arrival < horizon:
                        if arrival >= warmup_slots:
                            discarded += 1
                    else:
                        keep.append(arrival)
                backlog = keep

            if backlog:
                p = min(1.0, 1.0 / len(backlog)) if self.adaptive else self.p
                transmitting = self.rng.random(len(backlog)) < p
                if transmitting.sum() == 1:
                    index = int(np.flatnonzero(transmitting)[0])
                    arrival = backlog.pop(index)
                    successes += 1
                    wait = now - arrival
                    if arrival >= warmup_slots:
                        if wait > self.deadline:
                            delivered_late += 1
                        else:
                            delivered_on_time += 1
            now += self.frame

        measured_arrivals = int(np.sum(arrival_times >= warmup_slots))
        unresolved = sum(1 for arrival in backlog if arrival >= warmup_slots)
        return AlohaResult(
            arrivals=measured_arrivals,
            delivered_on_time=delivered_on_time,
            delivered_late=delivered_late,
            discarded=discarded,
            unresolved=unresolved,
            throughput=successes * self.frame / total,
        )

"""The compiled backend: jitted hot loops with a pure-NumPy fallback.

Selected with ``backend="compiled"`` on
:class:`~repro.mac.simulator.WindowMACSimulator` (or ``--backend
compiled`` on the CLI).  The backend drives a single
:class:`~repro.mac.kernels.engine.FlatLane` — the struct-of-arrays
engine whose GEN epochs run on flat float columns — and, when ``numba``
is importable, swaps the steady-state sprint walk for an ``@njit`` twin
operating on NumPy views of the same precomputed tables.

**Fallback.**  ``numba`` is an optional extra (``pip install
repro[compiled]``).  When it is missing, or its compilation fails, the
backend logs a one-time notice and runs the identical walk in pure
Python over the same NumPy-precomputed tables — same operation
sequence, same results, just slower.  ``backend="compiled"`` therefore
never *requires* numba; it requires only eligibility.

**Bit parity.**  Both flavours are bound by the kernel contract:
field-for-field equality with the reference loop (seeded RANDOM
included) and equal metrics registries when instrumentation is on.
numba's default configuration does not enable fastmath, so the jitted
walk performs the same IEEE-754 double operations in the same order as
the interpreted one.

**Eligibility** (:func:`compiled_eligible`) mirrors the fast kernel's
gate plus the flat engine's own requirements: no fault model, no §5
window scales, a canonical position rule (the flat window selection
replicates exactly the three shipped rules), a standard loss
definition, no sub-slot discard deadline, and invariant-checking off
(chaos runs keep the reference kernel whose guards are calibrated for
it).  Ineligible runs fall back to the fast kernel (or further down its
own fallback chain) with a one-time logged notice.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, List

import numpy as np

from ...core.policy import (
    NewestFirstPosition,
    OldestFirstPosition,
    RandomPosition,
)
from ...resilience.invariants import invariants_enabled
from .engine import FlatLane

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator import MACSimResult, WindowMACSimulator

__all__ = [
    "compiled_eligible",
    "numba_available",
    "run_compiled",
]

logger = logging.getLogger(__name__)

_POSITION_CODES = {
    OldestFirstPosition: 0,
    NewestFirstPosition: 1,
    RandomPosition: 2,
}

# Lazy one-time probe state: the jitted sprint walk (or None when numba
# is unavailable) and whether the probe has run.
_JIT_WALK = None
_PROBED = False


def _probe():
    """Compile the jitted sprint walk once, or record its absence.

    Returns the jitted walk callable or ``None``.  The fallback notice
    is logged exactly once per process; parity is unaffected either way.
    """
    global _JIT_WALK, _PROBED
    if _PROBED:
        return _JIT_WALK
    _PROBED = True
    try:
        import numba
    except ImportError:
        logger.info(
            "numba is not installed; the compiled backend runs its "
            "pure-NumPy struct-of-arrays fallback (identical results; "
            "install repro[compiled] for the jitted sprint walk)"
        )
        return None
    try:
        @numba.njit(cache=False)
        def _walk(arr, cl, tl, iso, p, n, prev_now, last_fr,
                  warmup, sdl_f, m, kf, tot, wc, wt, wp):
            # Twin of LaneState._sprint_walk: same operation sequence
            # on the NumPy views of the same tables (numba's default
            # config keeps strict IEEE-754 — no fastmath).
            ot = 0
            lt = 0
            nm = 0
            idle_acc = 0.0
            tx_acc = 0.0
            while p < n:
                u = arr[p]
                if u > prev_now:
                    if not iso[p]:
                        break
                    c = cl[p]
                    idle_acc += c - prev_now
                    tv = tl[p]
                    if u >= warmup:
                        wc += 1
                        d = tv - wt
                        wt += d / wc
                        d = tv - wp
                        wp += d / wc
                        if tv > sdl_f:
                            lt += 1
                        else:
                            ot += 1
                        nm += 1
                    tx_acc += m
                    last_fr = c
                    prev_now = c + m
                    p += 1
                else:
                    if p + 1 < n and arr[p + 1] <= prev_now:
                        break
                    if prev_now >= tot:
                        break
                    pk = prev_now - kf
                    lo = last_fr if last_fr >= pk else pk
                    if u < lo:
                        break
                    tv = prev_now - u
                    if u >= warmup:
                        wc += 1
                        d = tv - wt
                        wt += d / wc
                        d = tv - wp
                        wp += d / wc
                        if tv > sdl_f:
                            lt += 1
                        else:
                            ot += 1
                        nm += 1
                    tx_acc += m
                    last_fr = prev_now
                    prev_now = prev_now + m
                    p += 1
            return (p, prev_now, last_fr, idle_acc, tx_acc,
                    wc, wt, wp, ot, lt, nm)

        _JIT_WALK = _walk
    except Exception as error:  # pragma: no cover - numba-version specific
        logger.warning(
            "numba is installed but jit compilation failed (%s); the "
            "compiled backend runs its pure-NumPy fallback", error
        )
        _JIT_WALK = None
    return _JIT_WALK


def numba_available() -> bool:
    """Whether the jitted sprint walk is compiled and usable."""
    return _probe() is not None


def compiled_eligible(sim: "WindowMACSimulator") -> bool:
    """Whether the compiled backend reproduces this run bit-for-bit.

    See the module docstring; ineligible runs are the fast kernel's
    business (it has its own fallback chain below it).
    """
    policy = sim.policy
    return (
        sim.fault_model is None
        # Feedback-faulted runs are the faulted fast kernel's business
        # (repro.mac.kernels.faults): the sprint walk has no fault hooks.
        and sim.feedback_faults is None
        and not sim.registry.has_scaled_stations
        and sim.loss_definition in ("true", "paper")
        and (
            policy.discard_deadline is None
            or policy.discard_deadline > 1e-6
        )
        and type(policy.position) in _POSITION_CODES
        and not invariants_enabled()
    )


def run_compiled(
    sim: "WindowMACSimulator", total_time: float, warmup_slots: float
) -> "MACSimResult":
    """Run the compiled backend; same contract as ``run_fast``.

    Draw order is identical to the reference loop: arrivals from
    ``sim._arrival_rng`` first (the workload substream under
    ``RandomStreams``, ``sim.rng`` itself on plain seeds), then policy
    draws (random placement / random split) from ``sim.rng`` as epochs
    execute.  Unlike the batched kernel this uses the simulator's own
    generator objects, so seeded *and* stream-based runs stay
    bit-identical.

    ``scored_messages`` is not materialised on this backend (nothing in
    the tree consumes it after a compiled run; the fast kernel remains
    the path for callers that want per-message records).
    """
    policy = sim.policy
    rng = sim.rng

    # -- arrival generation: identical draws to _generate_arrivals ----------
    arrival_rng = sim._arrival_rng
    if sim.workload is not None:
        gen_times, gen_stations = sim.workload.generate(
            total_time, sim.registry.n_stations, arrival_rng
        )
    else:
        n = arrival_rng.poisson(sim.arrival_rate * total_time)
        gen_times = np.sort(arrival_rng.uniform(0.0, total_time, size=n))
        gen_stations = arrival_rng.integers(0, sim.registry.n_stations, size=n)
    arr_t: List[float] = [float(t) for t in gen_times]
    arr_s: List[int] = [int(s) for s in gen_stations]

    lane = FlatLane(
        policy,
        rng,
        sim.transmission_slots,
        sim.deadline,
        sim.loss_definition,
        warmup_slots,
        total_time,
        arr_t,
        arr_s,
        sim.metrics is not None,
        registry=sim.metrics,
        pos_code=_POSITION_CODES[type(policy.position)],
        jit_walk=_probe(),
    )
    while lane.now < lane.total_time:
        if not lane.advance_round():
            break
    result = lane.finalize()
    sim.scored_messages = []
    sim.channel.now = lane.now
    sim.channel.stats = result.channel
    return result

"""The flat struct-of-arrays engine behind the compiled backend.

:class:`FlatLane` is a :class:`~repro.mac.kernels.lane.LaneState` whose
GEN epochs never touch the object stack: the unresolved pseudo-time set
lives in two parallel ``list[float]`` columns (``u_lo``/``u_hi``) plus a
frontier scalar, and one decision epoch — controller bookkeeping, window
selection, the splitting state machine, scoring — runs as straight-line
Python over those columns.  No :class:`~repro.core.controller.ProtocolController`
method, :class:`~repro.core.window.WindowingProcess` object or
:class:`~repro.core.timeline.IntervalSet` is created per epoch, which is
where the remaining per-epoch cost of the lane kernel lived.

**Bit parity.**  Every helper here is a literal transcription of the
corresponding :mod:`repro.core.timeline` method — same epsilon
(``1e-12``), same bisect bounds, same branch structure, same sequential
measure folds — so each float operation happens in the same order with
the same operands as the reference loop's.  The split rules are not
transcribed at all: a collision calls the canonical
:func:`repro.core.splits.split_parts` / ``examination_order`` on a real
:class:`~repro.core.timeline.Span` (collisions are rare; the shared code
path is worth more than the microseconds).  Two deliberate deviations
that provably cannot change results:

* resolved sub-spans are subtracted from the unresolved columns *as the
  process resolves them* rather than batched in
  ``complete_process`` — the same subtract calls in the same order on a
  set nothing reads in between;
* ``advance_time``'s backwards-clock guard is dropped — the lane clock
  is strictly monotone by construction.

**RNG.**  The flat epoch draws from the same generator at the same two
sites as the reference loop: the :class:`~repro.core.policy.RandomPosition`
placement draw (only when the slack is positive) and the random split
shuffle inside ``examination_order``.  All other paths are draw-free.

The steady-state sprint walk is inherited from :class:`LaneState`; when
the compiled backend has a ``numba``-jitted twin available it is swapped
in via ``jit_walk`` and runs over NumPy views of the same tables —
identical operation sequence, identical IEEE-754 results (numba's
default config does not enable fastmath).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

import numpy as np

from ...core.splits import examination_order, split_parts
from ...core.timeline import Span
from ...core.window import _MAX_SPLIT_DEPTH
from .lane import LaneState
from .primitives import LATE, ON_TIME

__all__ = ["FlatLane"]

_EPS = 1e-12

_SPLIT_DEPTH_MESSAGE = (
    "window splitting exceeded the maximum depth; two arrivals "
    "are indistinguishable at double precision"
)


def _iv_add(lows: List[float], highs: List[float], lo: float, hi: float) -> None:
    """``IntervalSet.add`` on parallel columns (verbatim arithmetic)."""
    if hi <= lo + _EPS:
        return
    i = bisect_left(highs, lo)
    j = bisect_right(lows, hi)
    if i < j:
        lo = min(lo, lows[i])
        hi = max(hi, highs[j - 1])
    lows[i:j] = [lo]
    highs[i:j] = [hi]


def _iv_subtract(lows: List[float], highs: List[float], lo: float, hi: float) -> None:
    """``IntervalSet.subtract`` on parallel columns (verbatim arithmetic)."""
    if hi <= lo + _EPS:
        return
    i = bisect_right(highs, lo + _EPS)
    j = bisect_left(lows, hi - _EPS)
    if i >= j:
        # Check the single interval possibly containing [lo, hi].
        if i < len(lows) and lows[i] < lo and hi < highs[i]:
            # Split one interval in two.
            old_hi = highs[i]
            highs[i] = lo
            lows.insert(i + 1, hi)
            highs.insert(i + 1, old_hi)
        return
    new_lows: List[float] = []
    new_highs: List[float] = []
    if lows[i] < lo - _EPS:
        new_lows.append(lows[i])
        new_highs.append(lo)
    if highs[j - 1] > hi + _EPS:
        new_lows.append(hi)
        new_highs.append(highs[j - 1])
    lows[i:j] = new_lows
    highs[i:j] = new_highs


def _iv_clamp_before(lows: List[float], highs: List[float], t: float) -> None:
    """``IntervalSet.clamp_before`` on parallel columns.

    The removed-measure return value feeds only the
    :class:`~repro.core.controller.DiscardReport` nobody on this path
    reads, so it is not computed.
    """
    while lows and highs[0] <= t + _EPS:
        del lows[0]
        del highs[0]
    if lows and lows[0] < t:
        lows[0] = t


def _split_pieces(
    pieces: Tuple[Tuple[float, float], ...], offset: float
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
    """``Span.split_at_measure``'s walk on a raw piece sequence.

    Callers clamp ``offset`` into range exactly like the slicing
    helpers, so the out-of-range guard (which would raise) is
    unreachable and elided.
    """
    older: List[Tuple[float, float]] = []
    newer: List[Tuple[float, float]] = []
    remaining = offset
    for lo, hi in pieces:
        width = hi - lo
        if remaining >= width - _EPS:
            older.append((lo, hi))
            remaining -= width
        elif remaining <= _EPS:
            newer.append((lo, hi))
        else:
            older.append((lo, lo + remaining))
            newer.append((lo + remaining, hi))
            remaining = 0.0
    return older, newer


class FlatLane(LaneState):
    """A lane whose GEN epochs run on flat columns instead of objects.

    ``pos_code`` is derived from the policy's position rule: 0 for
    oldest-first, 1 for newest-first, 2 for random placement.  The
    eligibility gate (:func:`repro.mac.kernels.compiled.compiled_eligible`)
    guarantees the rule is one of the three canonical classes before a
    ``FlatLane`` is built.
    """

    __slots__ = ("rng", "u_lo", "u_hi", "fr", "pos_code", "jit_walk",
                 "arr_np", "ceil_np", "true_np", "iso_np")

    def __init__(self, *args, pos_code: int = 0, jit_walk=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.rng = self.controller.rng
        self.pos_code = pos_code
        # The flat image of the controller state the superclass seeded:
        # fresh (∅, 0) — valid for closed-form and exotic lanes alike.
        self.u_lo: List[float] = []
        self.u_hi: List[float] = []
        self.fr = 0.0
        self.jit_walk = jit_walk
        if jit_walk is not None and self.iso is not None:
            self.arr_np = np.asarray(self.arr_t, dtype=np.float64)
            self.ceil_np = np.asarray(self.ceil_t, dtype=np.float64)
            self.true_np = np.asarray(self.true_t, dtype=np.float64)
            self.iso_np = np.asarray(self.iso, dtype=np.bool_)
        else:
            self.arr_np = None
            self.ceil_np = None
            self.true_np = None
            self.iso_np = None

    # -- sprint hook ---------------------------------------------------------

    def _sprint_walk(
        self, arrl, cl, tl, iso, p, n, prev_now, last_fr, warmup, sdl_f, m,
        kf, tot, wc, wt, wp,
    ):
        walk = self.jit_walk
        if walk is None:
            return LaneState._sprint_walk(
                arrl, cl, tl, iso, p, n, prev_now, last_fr,
                warmup, sdl_f, m, kf, tot, wc, wt, wp,
            )
        return walk(
            self.arr_np, self.ceil_np, self.true_np, self.iso_np,
            p, n, prev_now, last_fr, warmup, sdl_f, m, kf, tot, wc, wt, wp,
        )

    # -- flat controller state ----------------------------------------------

    def _materialize(self, frontier: float) -> None:
        """Enter GEN mode at the closed-form state (∅, F), flat columns."""
        del self.u_lo[:]
        del self.u_hi[:]
        self.fr = frontier
        self.vec = False

    def gen_step(self, now_f: float) -> None:
        """One post-ingest iteration: flat fast-forward, else flat epoch."""
        u_lo = self.u_lo
        u_hi = self.u_hi
        if not self.backlog_t and self.entry_ok:
            # try_fast_forward, flat: the advance/discard mutations
            # persist whether or not the jump happens, exactly as the
            # subsequent epoch expects.
            fr = self.fr
            if now_f > fr:
                _iv_add(u_lo, u_hi, fr, now_f)
                self.fr = now_f
            deadline = self.discard_deadline
            if deadline is not None:
                _iv_clamp_before(u_lo, u_hi, now_f - deadline)
            meas = 0.0
            for k in range(len(u_lo)):
                meas += u_hi[k] - u_lo[k]
            if meas > _EPS:
                if self.covers:
                    length = meas
                elif self.const is not None:
                    length = self.const
                else:
                    length = self.policy.length.length(meas)
                if length >= meas:
                    # Every slot until the next arrival (or the horizon)
                    # resolves the whole backlog and comes back idle.
                    stop = min(self.upcoming, self.total_time)
                    skipped = (
                        math.ceil(stop - now_f) if self.steady else 1
                    )
                    del u_lo[:]
                    del u_hi[:]
                    self.fr = now_f + skipped - 1.0
                    self.idle += skipped
                    self.now = now_f + skipped
                    self.frontier = self.fr
                    self.vec = self.traits.closed_form
                    if self.ob is not None:
                        self.ob.ff_skips.append(skipped)
                    return
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(self.backlog_t))
        self._gen_epoch(now_f)

    # -- the flat decision epoch ---------------------------------------------

    def _select(self, length: float, meas: float) -> List[Tuple[float, float]]:
        """Element 1 on the flat columns (the three canonical rules).

        Replicates the slicing helpers' float arithmetic: every measure
        is the same sequential fold, every clamp the same ``min``, and
        the random placement draws ``rng.uniform(0.0, slack)`` exactly
        when the slack is positive.
        """
        pieces = tuple(zip(self.u_lo, self.u_hi))
        code = self.pos_code
        if code == 0:  # oldest-first: slice_oldest(length)
            window, _ = _split_pieces(pieces, length)
            return window
        if code == 1:  # newest-first: slice_youngest(length)
            _, window = _split_pieces(pieces, meas - length)
            return window
        # random placement: slice_offset(offset, length)
        slack = max(0.0, meas - length)
        offset = self.rng.uniform(0.0, slack) if slack > 0 else 0.0
        _, after = _split_pieces(pieces, min(offset, meas))
        after_meas = 0.0
        for lo, hi in after:
            after_meas += hi - lo
        window, _ = _split_pieces(tuple(after), min(length, after_meas))
        return window

    def _gen_epoch(self, now_f: float) -> None:
        """One decision epoch, flat: begin + resolve + score, no objects.

        The call sequence is ``begin_process`` (advance, discard,
        measure, length, select), the element-4 backlog cut, then the
        windowing state machine of ``execute_epoch`` /
        :class:`~repro.core.window.WindowingProcess` with resolved spans
        subtracted eagerly, and finally the verbatim scoring epilogue.
        """
        u_lo = self.u_lo
        u_hi = self.u_hi
        now = now_f

        # -- begin_process ---------------------------------------------------
        fr = self.fr
        if now > fr:
            _iv_add(u_lo, u_hi, fr, now)
            self.fr = now
        deadline = self.discard_deadline
        if deadline is not None:
            _iv_clamp_before(u_lo, u_hi, now - deadline)
        meas = 0.0
        for k in range(len(u_lo)):
            meas += u_hi[k] - u_lo[k]
        cur: Optional[List[Tuple[float, float]]] = None
        wmeas = 0.0
        if meas > _EPS:
            if self.covers:
                length = meas  # min(measure, measure)
            elif self.const is not None:
                const = self.const
                length = const if const < meas else meas
            else:
                value = self.policy.length.length(meas)
                length = value if value < meas else meas
            cur = self._select(length, meas)
            for lo, hi in cur:
                wmeas += hi - lo
            if wmeas <= _EPS:  # Span.is_empty
                cur = None

        # -- element-4 backlog cut (after begin, exactly as execute_epoch) --
        self._cut(now)

        if cur is None:
            self.wait += 1.0
            self.now = now + 1.0
            return

        process_start = now
        ob = self.ob
        if ob is not None:
            ob.window_sizes.append(wmeas)

        # Per-process arrival bins: snapshot the initial window's
        # messages once; the backlog cannot change until it completes.
        backlog_t = self.backlog_t
        backlog_i = self.backlog_i
        arr_s = self.arr_s
        snap_t: List[float] = []
        snap_s: List[int] = []
        snap_i: List[int] = []
        for lo, hi in cur:
            left = bisect_left(backlog_t, lo)
            right = bisect_right(backlog_t, hi)
            for k in range(left, right):
                snap_t.append(backlog_t[k])
                index = backlog_i[k]
                snap_s.append(arr_s[index])
                snap_i.append(index)

        # -- the windowing state machine ------------------------------------
        m_slots = self.m_slots
        split = self.policy.split
        arity = self.policy.split_arity
        rng = self.rng
        sibs: Optional[List] = None
        depth = 0
        idle_d = 0.0
        collision_d = 0.0
        transmission_d = 0.0
        transmitted = -1
        tx_instant = 0.0
        stranded: List[int] = []
        while True:
            # Resolve one slot against the snapshot: distinct enabled
            # stations decide idle/success/collision.
            first = -1
            first_station = -1
            collided = False
            for lo, hi in cur:
                left = bisect_left(snap_t, lo)
                right = bisect_right(snap_t, hi)
                for k in range(left, right):
                    if first < 0:
                        first = k
                        first_station = snap_s[k]
                    elif snap_s[k] != first_station:
                        collided = True
                        break
                if collided:
                    break
            if first < 0:
                now += 1.0
                idle_d += 1.0
                # IDLE: the examined span is resolved.
                for lo, hi in cur:
                    _iv_subtract(u_lo, u_hi, lo, hi)
                if sibs is None:
                    break  # empty initial window: no transmission
                if len(sibs) == 1:
                    # All earlier siblings idle: the last one holds every
                    # colliding arrival (>= 2) and is split immediately.
                    cur, sibs, depth = self._split(sibs[0], depth, split, arity, rng)
                else:
                    cur = sibs[0]
                    sibs = sibs[1:]
            elif collided:
                now += 1.0
                collision_d += 1.0
                cur, sibs, depth = self._split(cur, depth, split, arity, rng)
            else:
                # Single enabled station: SUCCESS; the examined span is
                # resolved, remaining siblings are abandoned.
                transmitted = snap_i[first]
                tx_instant = now
                if deadline is None:
                    for lo, hi in cur:
                        left = bisect_left(snap_t, lo)
                        right = bisect_right(snap_t, hi)
                        for k in range(left, right):
                            if k != first:
                                stranded.append(snap_i[k])
                now += m_slots
                transmission_d += m_slots
                for lo, hi in cur:
                    _iv_subtract(u_lo, u_hi, lo, hi)
                break

        # -- scoring epilogue (verbatim from execute_epoch) ------------------
        ctx = self.ctx
        arr_t = self.arr_t
        warmup = self.warmup
        on_time_d = 0
        late_d = 0
        if transmitted >= 0:
            arrival = arr_t[transmitted]
            position = bisect_left(backlog_t, arrival)
            while backlog_i[position] != transmitted:
                position += 1
            del backlog_t[position]
            del backlog_i[position]
            stuck_i = self.stuck_i
            for index in stranded:
                position = bisect_left(backlog_t, arr_t[index])
                while backlog_i[position] != index:
                    position += 1
                del backlog_t[position]
                del backlog_i[position]
                stuck_i.append(index)
            ctx.tx_start[transmitted] = tx_instant
            ctx.process_start_of[transmitted] = process_start
            true_value = tx_instant - arrival
            paper_value = max(0.0, process_start - arrival)
            wait = true_value if ctx.true_definition else paper_value
            sdl = self.score_deadline
            late = sdl is not None and wait > sdl
            ctx.fate[transmitted] = LATE if late else ON_TIME
            if arrival >= warmup:
                if late:
                    late_d += 1
                else:
                    on_time_d += 1
                ctx.waits.observe(true_value, paper_value)

        self.idle += idle_d
        self.coll += collision_d
        self.tx += transmission_d
        self.now = now
        if on_time_d:
            self.on_time += on_time_d
        if late_d:
            self.late += late_d
        if self.traits.closed_form and not u_lo:
            self.vec = True
            self.frontier = self.fr

    @staticmethod
    def _split(pieces, depth: int, split: str, arity: int, rng):
        """One split: the canonical primitives on a real span.

        Collisions are rare (the paper's arms spend well under 1% of
        epochs here), so this path goes through the shared
        :func:`~repro.core.splits.split_parts` rather than a private
        transcription — the one place the flat engine pays an object
        allocation, in exchange for split semantics that cannot drift.
        """
        depth += 1
        if depth > _MAX_SPLIT_DEPTH:
            raise RuntimeError(_SPLIT_DEPTH_MESSAGE)
        parts = split_parts(Span(tuple(pieces)), arity)
        order = examination_order(split, len(parts), rng)
        ordered = [parts[i].pieces for i in order]
        return ordered[0], ordered[1:], depth

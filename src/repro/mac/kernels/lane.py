"""The lane state machine: one independent run advanced in fused rounds.

A *lane* is one simulator run reduced to struct-of-arrays form — the
machinery the batched replication kernel (:mod:`repro.mac.batch`)
introduced, extracted here so the compiled backend
(:mod:`repro.mac.kernels.compiled`) can drive a single lane through the
same code.  See the batch module's docstring for the VEC/GEN mode
design and the bit-parity argument; every method body here is that
kernel's, verbatim.

:class:`LaneState` takes its run description as explicit parameters
(policy, generator, arrival arrays, horizon) rather than a
:class:`~repro.experiments.sweep.MACRunSpec`, so a caller may hand it a
generator that already produced the arrival draws — exactly what the
compiled backend does with the simulator's own ``rng``.  The batched
kernel's ``_Lane`` subclass reconstructs generator and arrivals from a
spec, reproducing the historical construction bit for bit.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional

import numpy as np

from ...core.controller import ProtocolController
from ...core.timeline import IntervalSet
from ...obs.metrics import MetricsRegistry
from ..channel import ChannelStats
from ..simulator import MACSimResult, flush_result_metrics
from .primitives import (
    DISCARDED,
    LATE,
    ON_TIME,
    EpochContext,
    ObsBuffers,
    execute_epoch,
    kernel_traits,
    try_fast_forward,
)

__all__ = ["LaneState", "LaneWaits", "drive"]

_EPS = 1e-12


class LaneWaits:
    """Per-lane adapter giving GEN epochs the lane's Welford state.

    Same arithmetic as :class:`~repro.mac.kernels.primitives.WaitStats`,
    applied to this lane's accumulators — so a lane that mixes VEC
    (closed-form update) and GEN (this adapter) epochs still produces
    one uninterrupted Welford stream.
    """

    __slots__ = ("lane",)

    def __init__(self, lane: "LaneState"):
        self.lane = lane

    def observe(self, true_value: float, paper_value: float) -> None:
        lane = self.lane
        count = lane.wcount + 1
        lane.wcount = count
        delta = true_value - lane.wtrue
        lane.wtrue += delta / count
        delta = paper_value - lane.wpaper
        lane.wpaper += delta / count


class LaneState:
    """One run: its arm scalars, backlog, RNG, and the per-round hot
    state the round loop reads (plain Python floats/ints — see the
    batch module docstring for why these are not NumPy cells)."""

    __slots__ = (
        "policy",
        "traits",
        "controller",
        "m_slots",
        "m_f",
        "discard_deadline",
        "k_f",
        "score_deadline",
        "sdl_f",
        "warmup",
        "arr_t",
        "arr_s",
        "n_arrivals",
        "total_time",
        "ceil_t",
        "true_t",
        "iso",
        "backlog_t",
        "backlog_i",
        "stuck_i",
        "ob",
        "registry",
        "ctx",
        # hot per-round state (was the struct-of-arrays cells)
        "now",
        "frontier",
        "idle",
        "coll",
        "tx",
        "wait",
        "upcoming",
        "const",
        "covers",
        "steady",
        "entry_ok",
        "vec",
        "wcount",
        "wtrue",
        "wpaper",
        "on_time",
        "late",
        "disc",
        "n_meas",
        "ptr",
    )

    def __init__(
        self,
        policy,
        rng: np.random.Generator,
        m_slots: int,
        score_deadline: Optional[float],
        loss_definition: str,
        warmup: float,
        total_time: float,
        arr_t: List[float],
        arr_s: List[int],
        instrumented: bool,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.policy = policy
        traits = kernel_traits(policy)
        self.traits = traits
        self.m_slots = m_slots
        self.m_f = float(m_slots)
        self.discard_deadline = policy.discard_deadline
        self.k_f = (
            float(policy.discard_deadline)
            if policy.discard_deadline is not None
            else math.inf
        )
        self.score_deadline = score_deadline
        self.sdl_f = float(score_deadline) if score_deadline is not None else math.inf
        self.warmup = float(warmup)

        # The generator that produced the arrival draws keeps driving
        # the controller, in the same draw order as the reference loop.
        self.controller = ProtocolController(policy, rng=rng)

        self.arr_t = arr_t
        self.arr_s = arr_s
        self.n_arrivals = len(arr_t)
        self.total_time = float(total_time)
        self.backlog_t: List[float] = []
        self.backlog_i: List[int] = []
        self.stuck_i: List[int] = []
        self._prepare_sprint(self.total_time, traits)

        if instrumented:
            self.registry = registry if registry is not None else MetricsRegistry()
            self.ob = ObsBuffers()
        else:
            self.registry = None
            self.ob = None
        fate = np.zeros(self.n_arrivals, dtype=np.int8)
        tx_start = np.full(self.n_arrivals, np.nan)
        process_start_of = np.full(self.n_arrivals, np.nan)
        self.ctx = EpochContext(
            self.controller,
            self.m_slots,
            self.discard_deadline,
            self.score_deadline,
            loss_definition == "true",
            self.warmup,
            self.arr_t,
            self.arr_s,
            self.backlog_t,
            self.backlog_i,
            self.stuck_i,
            fate,
            tx_start,
            process_start_of,
            LaneWaits(self),
            self.ob,
        )

        # Seed the hot state.
        self.now = 0.0
        self.frontier = 0.0
        self.idle = 0.0
        self.coll = 0.0
        self.tx = 0.0
        self.wait = 0.0
        self.upcoming = self.arr_t[0] if self.arr_t else math.inf
        self.const = traits.const_length
        self.covers = traits.covers_backlog
        self.steady = traits.steady_skippable
        self.entry_ok = traits.entry_discard_ok
        # Lanes whose length rule has no closed form drive the real
        # controller from slot zero (its fresh state is already (∅, 0)).
        self.vec = traits.closed_form
        self.wcount = 0
        self.wtrue = 0.0
        self.wpaper = 0.0
        self.on_time = 0
        self.late = 0
        self.disc = 0
        self.n_meas = 0
        self.ptr = 0

    # -- steady-state sprint -------------------------------------------------

    def _prepare_sprint(self, total_time: float, traits) -> None:
        """Precompute the arrival-axis tables the sprint loop walks.

        In the happy steady state every event is *jump to the next
        arrival, deliver it on one slot*.  With an integer transmission
        length the clock only ever advances by integers, and for an
        integer-valued float ``prev`` with ``0 <= prev <= u`` the
        subtraction ``u - prev`` is exact (the difference's bits span at
        most 53 positions), so the kernel's ``prev + ceil(u - prev)``
        equals ``ceil(u)`` *bitwise* — the jump recurrence decouples and
        every landing instant, wait value, and isolation predicate can
        be precomputed on the arrival axis in one NumPy pass.  Arrival
        ``p`` is *isolated* when the lane was ready before it
        (``u_p > ceil(u_{p-1}) + m``), it is alone in its landing slot
        (``u_{p+1} > ceil(u_p)``), and the landing is inside the
        horizon.  The window checks reduce to per-lane constants: the
        pre-jump span is ``min(m, K)`` and the landing span exactly
        ``1.0`` (the clamp ``max(c-1, c-K)`` returns the representable
        bound ``c-1`` for any ``K >= 1``), so coverability folds into
        the one-time gate below.  Lanes with fractional transmission
        lengths or awkward sub-``m`` fractional deadlines simply skip
        the sprint and stay on the phased rounds.
        """
        m_f = float(self.m_slots)
        kk = self.discard_deadline
        axis = (
            traits.closed_form
            and traits.steady_skippable
            and traits.entry_discard_ok
            and self.n_arrivals > 0
            and m_f.is_integer()
            and (
                kk is None
                or kk >= m_f
                or (kk >= 1.0 and float(kk).is_integer())
            )
        )
        if axis:
            meas_jump = m_f if (kk is None or kk >= m_f) else float(kk)
            covers = traits.covers_backlog
            const = traits.const_length
            axis = (covers or (const is not None and const >= meas_jump)) and (
                covers or (const is not None and const >= 1.0)
            )
        if not axis:
            self.ceil_t = None
            self.true_t = None
            self.iso = None
            return
        arr = np.asarray(self.arr_t, dtype=np.float64)
        c = np.ceil(arr)
        self.ceil_t = c.tolist()
        self.true_t = (c - arr).tolist()
        n = self.n_arrivals
        iso = np.empty(n, dtype=bool)
        iso[0] = False  # the run's first event is validated dynamically
        if n > 1:
            iso[1:] = arr[1:] > c[:-1] + m_f  # lane ready before arrival
            iso[:-1] &= arr[1:] > c[:-1]  # alone in its landing slot
        iso &= c < total_time  # landing inside the horizon
        self.iso = iso.tolist()

    def sprint(self) -> None:
        """Drain this lane's run of isolated arrivals in pure Python.

        The caller (:meth:`advance_round`) has already established the
        jump preconditions — VEC mode, empty backlog, positive-measure
        coverable window — so this validates only the parts of the
        first jump+success pair the precomputed tables cannot know
        (any failed condition defers the lane, untouched, to the
        phased round), then walks the precomputed isolation mask:
        per event only the Welford updates are inherently sequential,
        and plain float arithmetic on ~16-wide problems beats NumPy's
        per-op dispatch by a wide margin.  Every accumulator update is
        an exact integer-valued float sum, so batching them locally and
        storing once is bit-identical to the per-event stores.
        """
        iso = self.iso
        if iso is None:
            return
        arrl = self.arr_t
        n = self.n_arrivals
        p = self.ptr
        if p >= n:
            return
        now = self.now
        u = arrl[p]
        if u <= now:
            return  # due arrival: the phased ingest must run first
        tot = self.total_time
        kf = self.k_f
        covers = self.covers
        const = self.const
        stop = u if u < tot else tot
        sk0 = math.ceil(stop - now)
        new_now = now + sk0
        if new_now >= tot:
            return  # dying jump: the phased round applies it
        nxt = arrl[p + 1] if p + 1 < n else math.inf
        if nxt <= new_now:
            return  # arrival cluster at the landing slot
        new_fr = new_now - 1.0
        lo2 = max(new_fr, new_now - kf)
        meas2 = new_now - lo2
        if not (
            meas2 > _EPS
            and (covers or (const is not None and const >= meas2))
            and u >= lo2
        ):
            return
        warmup = self.warmup
        sdl_f = self.sdl_f
        m = self.m_f
        cl = self.ceil_t
        tl = self.true_t
        ob = self.ob
        wc = self.wcount
        wt = self.wtrue
        wp = self.wpaper
        ot = 0
        lt = 0
        nm = 0
        idle_acc = 0.0
        tx_acc = 0.0
        # The entry event (dynamic state; new_now == ceil(u) by the
        # decoupling argument, keeping the iso mask's premises true).
        idle_acc += sk0
        tv = new_now - u
        # tx and process start coincide at the epoch instant and
        # tv >= 0, so both loss definitions observe the same value.
        if u >= warmup:
            wc += 1
            d = tv - wt
            wt += d / wc
            d = tv - wp
            wp += d / wc
            if tv > sdl_f:
                lt += 1
            else:
                ot += 1
            nm += 1
        tx_acc += m
        if ob is not None:
            ob.ff_skips.append(sk0)
            ob.epochs += 1
            ob.backlog_sizes.append(1)
            ob.window_sizes.append(meas2)
        last_fr = new_now
        prev_now = new_now + m
        p += 1
        if ob is None:
            # The tight loop, with the instrumentation branch hoisted
            # out entirely — this is where batched runs spend their time.
            p, prev_now, last_fr, idle_d, tx_d, wc, wt, wp, ot_d, lt_d, nm_d = (
                self._sprint_walk(
                    arrl, cl, tl, iso, p, n, prev_now, last_fr,
                    warmup, sdl_f, m, kf, tot, wc, wt, wp,
                )
            )
            idle_acc += idle_d
            tx_acc += tx_d
            ot += ot_d
            lt += lt_d
            nm += nm_d
        else:
            while p < n and iso[p]:
                u = arrl[p]
                c = cl[p]
                skf = c - prev_now
                idle_acc += skf
                tv = tl[p]
                if u >= warmup:
                    wc += 1
                    d = tv - wt
                    wt += d / wc
                    d = tv - wp
                    wp += d / wc
                    if tv > sdl_f:
                        lt += 1
                    else:
                        ot += 1
                    nm += 1
                tx_acc += m
                ob.ff_skips.append(int(skf))
                ob.epochs += 1
                ob.backlog_sizes.append(1)
                ob.window_sizes.append(1.0)
                last_fr = c
                prev_now = c + m
                p += 1
        self.now = prev_now
        self.frontier = last_fr
        self.ptr = p
        self.upcoming = arrl[p] if p < n else math.inf
        self.idle += idle_acc
        self.tx += tx_acc
        self.wcount = wc
        self.wtrue = wt
        self.wpaper = wp
        if ot:
            self.on_time += ot
        if lt:
            self.late += lt
        if nm:
            self.n_meas += nm

    @staticmethod
    def _sprint_walk(
        arrl, cl, tl, iso, p, n, prev_now, last_fr, warmup, sdl_f, m,
        kf, tot, wc, wt, wp,
    ):
        """The uninstrumented mask walk, one epoch per event.

        A staticmethod over plain scalars and sequences so the compiled
        backend can swap in an ``@njit`` twin operating on the NumPy
        views of the same tables — the float operation sequence is
        identical either way, so the results are bit-equal.

        Two event shapes run inline; anything else exits to the rounds:

        * an *isolated* arrival (``iso[p]``): jump to its landing slot,
          deliver on one slot — the precomputed tables' case.  The
          static ready-before premise is replaced by the dynamic
          ``u > prev_now`` so the walk stays valid after busy events
          (``prev_now`` remains integer-valued, so the ceil decoupling
          argument of :meth:`_prepare_sprint` is unchanged).
        * a *busy* arrival (``u <= prev_now``: it landed during the
          predecessor's transmission and is due the instant the lane
          is ready): the inlined single-success epoch, exactly
          :meth:`advance_round`'s ``succ_epoch`` path.  Its window
          preconditions are static under the sprint gate — the span is
          ``prev_now − last_fr = m`` clamped to ``min(m, K)``, the
          measure the gate already proved coverable — leaving only the
          dynamic checks: it is the *only* due arrival, the horizon is
          not reached, and the message is inside the clamped window
          (``u >= lo``, which also makes the element-4 cut a no-op).
        """
        ot = 0
        lt = 0
        nm = 0
        idle_acc = 0.0
        tx_acc = 0.0
        while p < n:
            u = arrl[p]
            if u > prev_now:
                if not iso[p]:
                    break
                c = cl[p]
                idle_acc += c - prev_now
                tv = tl[p]
                if u >= warmup:
                    wc += 1
                    d = tv - wt
                    wt += d / wc
                    d = tv - wp
                    wp += d / wc
                    if tv > sdl_f:
                        lt += 1
                    else:
                        ot += 1
                    nm += 1
                tx_acc += m
                last_fr = c
                prev_now = c + m
                p += 1
            else:
                if p + 1 < n and arrl[p + 1] <= prev_now:
                    break  # >= 2 due arrivals: the general epoch
                if prev_now >= tot:
                    break  # the horizon check belongs to the rounds
                pk = prev_now - kf
                lo = last_fr if last_fr >= pk else pk
                if u < lo:
                    break  # outside the clamped window: discard path
                tv = prev_now - u
                if u >= warmup:
                    wc += 1
                    d = tv - wt
                    wt += d / wc
                    d = tv - wp
                    wp += d / wc
                    if tv > sdl_f:
                        lt += 1
                    else:
                        ot += 1
                    nm += 1
                tx_acc += m
                last_fr = prev_now
                prev_now = prev_now + m
                p += 1
        return p, prev_now, last_fr, idle_acc, tx_acc, wc, wt, wp, ot, lt, nm

    # -- scalar helpers (the uncommon paths) --------------------------------

    def ingest(self, now_f: float) -> None:
        arr_t = self.arr_t
        n = self.n_arrivals
        p = self.ptr
        backlog_t = self.backlog_t
        backlog_i = self.backlog_i
        warmup = self.warmup
        measured = 0
        while p < n and arr_t[p] <= now_f:
            t = arr_t[p]
            backlog_t.append(t)
            backlog_i.append(p)
            if t >= warmup:
                measured += 1
            p += 1
        self.ptr = p
        if measured:
            self.n_meas += measured
        self.upcoming = arr_t[p] if p < n else math.inf

    def _cut(self, now_f: float) -> None:
        """Element-4 discard of over-age backlog (same as execute_epoch)."""
        deadline = self.discard_deadline
        if deadline is None:
            return
        backlog_t = self.backlog_t
        cut = bisect_left(backlog_t, now_f - deadline)
        if cut:
            backlog_i = self.backlog_i
            arr_t = self.arr_t
            warmup = self.warmup
            fate = self.ctx.fate
            dropped = 0
            for index in backlog_i[:cut]:
                fate[index] = DISCARDED
                if arr_t[index] >= warmup:
                    dropped += 1
            if dropped:
                self.disc += dropped
            del backlog_t[:cut]
            del backlog_i[:cut]

    def _materialize(self, frontier: float) -> None:
        """Rebuild the real controller at the lane's VEC state (∅, F)."""
        controller = self.controller
        controller.unresolved = IntervalSet()
        controller.frontier = frontier
        self.vec = False

    def _gen_epoch(self, now_f: float) -> None:
        """One reference epoch on the real controller (shared code)."""
        (
            now2,
            idle_d,
            coll_d,
            tx_d,
            wait_d,
            on_time_d,
            late_d,
            discarded_d,
        ) = execute_epoch(self.ctx, now_f)
        self.idle += idle_d
        self.coll += coll_d
        self.tx += tx_d
        self.wait += wait_d
        self.now = now2
        if on_time_d:
            self.on_time += on_time_d
        if late_d:
            self.late += late_d
        if discarded_d:
            self.disc += discarded_d
        controller = self.controller
        if self.traits.closed_form and controller.unresolved.is_empty():
            self.vec = True
            self.frontier = controller.frontier

    def vec_epoch(self, now_f: float) -> None:
        """One decision epoch from the closed-form state (∅, F).

        Replicates the reference epoch's float arithmetic exactly:
        the clamp is ``max``, the measure one subtraction (the same op
        ``IntervalSet.measure`` performs on a single interval), and a
        whole-window selection returns the interval verbatim with no
        RNG draw for any position rule.
        """
        frontier = self.frontier
        deadline = self.discard_deadline
        if deadline is None:
            lo = frontier
        else:
            horizon = now_f - deadline
            lo = horizon if frontier < horizon else frontier
        meas = now_f - lo
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(self.backlog_t))
        if meas <= _EPS:
            # begin_process would return None (measure zero ⇔ now == F,
            # so advance_time was a no-op and the set stays empty); the
            # element-4 cut still runs before the None branch.
            self._cut(now_f)
            self.wait += 1.0
            self.now = now_f + 1.0
            return
        if not (
            self.covers or (self.const is not None and self.const >= meas)
        ):
            # Window shorter than the span: the real split machinery.
            self._materialize(frontier)
            self._gen_epoch(now_f)
            return
        # The window is the whole span [lo, now); membership is t >= lo.
        # The cut removes t < now−K ≤ lo only, so the in-window count is
        # cut-invariant and can gate the closed form before any mutation.
        backlog_t = self.backlog_t
        n_in = len(backlog_t) - bisect_left(backlog_t, lo)
        if n_in >= 2:
            self._materialize(frontier)
            self._gen_epoch(now_f)
            return
        self._cut(now_f)
        if ob is not None:
            ob.window_sizes.append(meas)
        if n_in == 0:
            # One full-window idle examination resolves everything.
            self.idle += 1.0
            self.frontier = now_f
            self.now = now_f + 1.0
            return
        # Exactly one in-window message: SUCCESS on the first slot.
        backlog_i = self.backlog_i
        pos = len(backlog_t) - 1  # in-window ⇒ newest of the sorted backlog
        index = backlog_i[pos]
        t0 = backlog_t[pos]
        del backlog_t[pos]
        del backlog_i[pos]
        m = self.m_slots
        self.tx += m
        self.frontier = now_f
        self.now = now_f + m
        ctx = self.ctx
        true_value = now_f - t0
        paper_value = max(0.0, now_f - t0)
        wait = true_value if ctx.true_definition else paper_value
        sdl = self.score_deadline
        late = sdl is not None and wait > sdl
        ctx.fate[index] = LATE if late else ON_TIME
        ctx.tx_start[index] = now_f
        ctx.process_start_of[index] = now_f
        if t0 >= self.warmup:
            if late:
                self.late += 1
            else:
                self.on_time += 1
            ctx.waits.observe(true_value, paper_value)

    def gen_step(self, now_f: float) -> None:
        """One post-ingest iteration on the real controller."""
        traits = self.traits
        if not self.backlog_t and traits.entry_discard_ok:
            skipped = try_fast_forward(
                self.controller,
                self.policy,
                traits,
                now_f,
                self.upcoming,
                self.total_time,
                False,
            )
            if skipped:
                self.idle += skipped
                self.now = now_f + skipped
                self.frontier = self.controller.frontier
                self.vec = traits.closed_form
                if self.ob is not None:
                    self.ob.ff_skips.append(skipped)
                return
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(self.backlog_t))
        self._gen_epoch(now_f)

    def succ_epoch(self, now_f: float, meas: float) -> None:
        """Single-message SUCCESS epoch, the steady state of the rounds.

        Same arithmetic as :meth:`vec_epoch`'s one-in-window branch with
        the preconditions (VEC, backlog of exactly one in-window
        message, full-cover window, head not over-age so the element-4
        cut is a no-op) already established by the caller.  The fate /
        tx-start buffers are not written here: they are diagnostic
        arrays that no scored quantity reads back, exactly as in the
        reference kernel's own fast-forward shortcuts.
        """
        backlog_t = self.backlog_t
        t0 = backlog_t[0]
        true_value = now_f - t0
        m = self.m_f
        self.tx += m
        self.frontier = now_f
        self.now = now_f + m
        if t0 >= self.warmup:
            wc = self.wcount + 1
            self.wcount = wc
            delta = true_value - self.wtrue
            self.wtrue += delta / wc
            paper_value = max(0.0, true_value)
            delta = paper_value - self.wpaper
            self.wpaper += delta / wc
            if true_value > self.sdl_f:
                self.late += 1
            else:
                self.on_time += 1
        backlog_t.clear()
        self.backlog_i.clear()
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(1)
            ob.window_sizes.append(meas)

    def step(self) -> None:
        now_f = self.now
        if self.vec:
            self.vec_epoch(now_f)
        else:
            self.gen_step(now_f)

    def advance_round(self) -> bool:
        """One fused round of this lane; returns whether it stays live.

        Executes, in order: ingest of due arrivals; a steady-state
        sprint when eligible (zero or more jump+success events drained,
        see :meth:`sprint`); the idle fast-forward jump; a second ingest
        if the jump landed on an arrival; then one decision epoch (the
        inlined single-success form when its preconditions hold, else
        the general dispatch).  That is one or more iterations of the
        sequential kernel's loop — batching only reschedules work
        across lanes, never reorders a lane's own event sequence.
        """
        now = self.now
        tot = self.total_time
        if self.upcoming <= now:
            self.ingest(now)

        # -- steady-state sprint + idle fast-forward jump ----------------
        if self.vec and not self.backlog_t and self.entry_ok:
            lo = max(self.frontier, now - self.k_f)
            meas = now - lo
            jump = meas > _EPS and (
                self.covers or (self.const is not None and self.const >= meas)
            )
            if jump and self.steady:
                self.sprint()
                now = self.now
                if now >= tot:
                    return False
                # Sprint exits may have landed on (or past) due arrivals.
                if self.upcoming <= now:
                    self.ingest(now)
                if self.vec and not self.backlog_t and self.entry_ok:
                    lo = max(self.frontier, now - self.k_f)
                    meas = now - lo
                    jump = meas > _EPS and (
                        self.covers
                        or (self.const is not None and self.const >= meas)
                    )
                else:
                    jump = False
            if jump:
                # Closed form of try_fast_forward: clamp, measure,
                # full-window test, ceil to the next arrival — identical
                # arithmetic, no controller objects touched.
                stop = min(self.upcoming, tot)
                skipped = math.ceil(stop - now) if self.steady else 1.0
                new_now = now + skipped
                self.idle += skipped
                self.frontier = new_now - 1.0
                self.now = new_now
                if self.ob is not None:
                    self.ob.ff_skips.append(int(skipped))
                now = new_now
                # A jump lands at (or past) the next arrival: ingest it
                # and fall through to this round's epoch, fusing the two
                # sequential iterations into one pass.
                if now < tot and self.upcoming <= now:
                    self.ingest(now)

        # -- decision epoch ----------------------------------------------
        if now >= tot:
            return False
        # Inlined single-message SUCCESS epoch: VEC lane, backlog of
        # exactly one in-window message, full-cover window.  This is the
        # steady state at the paper's operating points.
        backlog_t = self.backlog_t
        if self.vec and len(backlog_t) == 1:
            lo = max(self.frontier, now - self.k_f)
            meas = now - lo
            if (
                meas > _EPS
                and (self.covers or (self.const is not None and self.const >= meas))
                and backlog_t[0] >= lo
            ):
                self.succ_epoch(now, meas)
                return self.now < tot
        self.step()
        return self.now < tot

    def finalize(self) -> MACSimResult:
        arr_t = self.arr_t
        warmup = self.warmup
        unresolved_count = sum(
            1 for index in self.backlog_i if arr_t[index] >= warmup
        ) + sum(1 for index in self.stuck_i if arr_t[index] >= warmup)
        stats = ChannelStats(
            idle_slots=float(self.idle),
            collision_slots=float(self.coll),
            transmission_slots=float(self.tx),
            wait_slots=float(self.wait),
        )
        wcount = self.wcount
        result = MACSimResult(
            arrivals=int(self.n_meas),
            delivered_on_time=int(self.on_time),
            delivered_late=int(self.late),
            discarded=int(self.disc),
            unresolved=unresolved_count,
            mean_true_wait=float(self.wtrue) if wcount else math.nan,
            mean_paper_wait=float(self.wpaper) if wcount else math.nan,
            channel=stats,
            deadline=self.score_deadline,
        )
        if self.registry is not None:
            self.ob.flush(self.registry)
            flush_result_metrics(self.registry, result)
        return result


def drive(lanes: List[LaneState]) -> None:
    """Drive all lanes to their horizons, one fused round per pass.

    Each round advances every live lane once (see
    :meth:`LaneState.advance_round`); lanes that reach their horizon
    drop out of the live list.  Lanes are independent state machines, so
    the lockstep schedule affects only interpreter locality, never
    results.
    """
    live = [lane for lane in lanes if lane.now < lane.total_time]
    while live:
        live = [lane for lane in live if lane.advance_round()]

"""Fault application lifted into the fast-kernel primitives.

Runs carrying a :class:`~repro.faults.feedback.FeedbackFaultModel` used
to be a concept this package had no answer for: any fault meant the
compiled→fast→reference downgrade chain bottomed out at the slow loop.
Common-mode feedback errors, however, leave the network with a *single*
shared protocol state — exactly the structure the fast kernel's
struct-of-arrays bookkeeping models — so this module executes them at
kernel speed.

:func:`execute_epoch_faulted` is the faulted sibling of
:func:`~repro.mac.kernels.primitives.execute_epoch`: one decision epoch
with the same controller call sequence, plus per-slot fault
application — jam bursts force COLLISION, the observation rule corrupts
the symbol the windowing process sees, dispositions (delivery, faded
frame, phantom capture dequeue) act on the struct-of-arrays backlog,
and the divergence abort stops idle descents at ``max_split_depth``
under the selected recovery policy.

:func:`run_fast_faulted` wraps it into a full run, mirroring
:func:`~repro.mac.fastpath.run_fast` with two deliberate differences:

* **fault-aware idle fast-forward** — an idle examination slot consumes
  exactly one fault-stream uniform under misdetection noise, and only
  an erasure corrupts a truly idle span, so the kernel pre-draws an
  idle stretch's uniforms in one block
  (:meth:`~repro.faults.feedback.FeedbackFaultState.scan_idle`), jumps
  the clean prefix in closed form, and runs the first corrupted slot
  (and its split descent) through the real epoch machinery on the very
  same draw values.  Models with *event* faults (missed feedback,
  jamming) never fast-forward: their clocks are anchored to executed
  epoch tops, so every epoch runs for real in both loops;
* **no companion stranding** — messages that can never transmit again
  (same-station companions of a success span, desynced leftovers)
  simply stay in the backlog and count as unresolved at the end, which
  is observably identical and keeps the two loops' backlog bookkeeping
  in lockstep.

Bit-parity contract: for every fault family, recovery policy and
protocol (seeded RANDOM included) the result *and* the metrics registry
equal the faulted reference loop's
(:meth:`~repro.mac.simulator.WindowMACSimulator._run_shared_faulted`)
field for field — enforced by ``tests/mac/test_faulted_parity.py``.
Epoch-granularity histograms (``mac.epochs``, ``mac.backlog.size``,
``mac.window.size``) cover *executed* epochs only, exactly as on the
fault-free fast path: fast-forwarded idle examinations are accounted
under ``mac.fastforward.*`` instead, so those names — and only those —
legitimately differ from the reference loop when the noise-only
fast-forward fires.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List

import numpy as np

from ...core.splits import examination_order
from ...core.window import ChannelFeedback
from ...faults.feedback import FeedbackFaultState
from ...resilience.invariants import invariants_enabled, require
from ..channel import ChannelStats
from ..messages import Message
from .primitives import (
    FATE_OF_CODE,
    LATE,
    LOST,
    ON_TIME,
    PENDING,
    EpochContext,
    ObsBuffers,
    WaitStats,
    kernel_traits,
    try_fast_forward,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator import MACSimResult, WindowMACSimulator

__all__ = ["execute_epoch_faulted", "execute_phantom_epoch", "run_fast_faulted"]

_IDLE = ChannelFeedback.IDLE
_SUCCESS = ChannelFeedback.SUCCESS
_COLLISION = ChannelFeedback.COLLISION

_EPS = 1e-12  # matches repro.core.timeline._EPS

#: Distinct from ``None``: ``None`` is the *empty span*; this marks "no
#: unexamined sibling yet" (the initial window, before any split).
_NO_SIBLING = object()


def _scalar_split(piece, offset):
    """Mirror ``Span.split_at_measure`` for a 0/1-piece span.

    ``piece`` is ``(lo, hi)`` or ``None`` (the empty span).  Branch
    structure, epsilon comparisons and the ``lo + offset`` cut are the
    exact walk :meth:`~repro.core.timeline.Span.split_at_measure`
    performs, so the scalar phantom descent produces bit-identical
    endpoints to the :class:`~repro.core.window.WindowingProcess` one.
    """
    if piece is None:
        if offset < -_EPS or offset > _EPS:
            raise ValueError(f"split offset {offset} outside span measure 0.0")
        return None, None
    lo, hi = piece
    width = hi - lo
    if offset < -_EPS or offset > width + _EPS:
        raise ValueError(f"split offset {offset} outside span measure {width}")
    if offset >= width - _EPS:
        return piece, None
    if offset <= _EPS:
        return None, piece
    cut = lo + offset
    return (lo, cut), (cut, hi)


def _scalar_parts(piece, arity):
    """Mirror :func:`~repro.core.splits.split_parts` on a 0/1-piece span."""
    total = 0.0 if piece is None else piece[1] - piece[0]
    parts = []
    rest = piece
    for _ in range(arity - 1):
        part, rest = _scalar_split(rest, total / arity)
        parts.append(part)
    parts.append(rest)
    return parts


def _dequeue(ctx: EpochContext, index: int) -> None:
    """Remove one message from the struct-of-arrays backlog."""
    backlog_t = ctx.backlog_t
    backlog_i = ctx.backlog_i
    position = bisect_left(backlog_t, ctx.arr_t[index])
    while backlog_i[position] != index:
        position += 1
    del backlog_t[position]
    del backlog_i[position]


def drop_station_backlog(
    ctx: EpochContext, state: FeedbackFaultState, station: int
) -> int:
    """Destroy a dropping-out station's pending backlog (fate LOST).

    Mirrors ``registry.drop_station`` + per-message loss marking on the
    reference loop.  Returns the measured-interval loss count.
    """
    lost_d = 0
    backlog_t = ctx.backlog_t
    backlog_i = ctx.backlog_i
    arr_s = ctx.arr_s
    fate = ctx.fate
    keep_t: List[float] = []
    keep_i: List[int] = []
    for t, index in zip(backlog_t, backlog_i):
        if arr_s[index] == station:
            fate[index] = LOST
            state.telemetry.dropped_messages += 1
            if t >= ctx.warmup_slots:
                lost_d += 1
        else:
            keep_t.append(t)
            keep_i.append(index)
    if lost_d or len(keep_t) != len(backlog_t):
        backlog_t[:] = keep_t
        backlog_i[:] = keep_i
    return lost_d


def execute_epoch_faulted(ctx: EpochContext, state: FeedbackFaultState, now: float):
    """One fault-injected decision epoch.

    Same controller call sequence as
    :func:`~repro.mac.kernels.primitives.execute_epoch`, with fault
    application at every examination slot.  Returns the 8-tuple of the
    clean executor extended with a ninth element: ``(now, idle,
    collision, transmission, wait, on_time, late, discarded, lost)``.
    """
    controller = ctx.controller
    backlog_t = ctx.backlog_t
    backlog_i = ctx.backlog_i
    arr_t = ctx.arr_t
    arr_s = ctx.arr_s
    warmup_slots = ctx.warmup_slots
    fate = ctx.fate
    discard_deadline = ctx.discard_deadline
    model = state.model
    telemetry = state.telemetry
    desynced = state.desynced

    idle_d = 0.0
    collision_d = 0.0
    transmission_d = 0.0
    wait_d = 0.0
    on_time_d = 0
    late_d = 0
    discarded_d = 0
    lost_d = 0

    process = controller.begin_process(now)
    if discard_deadline is not None:
        horizon = now - discard_deadline
        cut = bisect_left(backlog_t, horizon)
        if cut:
            for index in backlog_i[:cut]:
                fate[index] = 3  # DISCARDED
                if arr_t[index] >= warmup_slots:
                    discarded_d += 1
            del backlog_t[:cut]
            del backlog_i[:cut]

    if process is None:
        return (now + 1.0, 0.0, 0.0, 0.0, 1.0, 0, 0, discarded_d, 0)

    process_start = now
    if ctx.obs is not None:
        ctx.obs.window_sizes.append(process.current_span.measure)
    # Per-process arrival bins, as in the clean executor.  Entries can
    # die mid-process here (phantom capture, drop-out), so every slot
    # filters the snapshot by fate and desync status.
    snap_t: List[float] = []
    snap_s: List[int] = []
    snap_i: List[int] = []
    for lo, hi in process.current_span.pieces:
        left = bisect_left(backlog_t, lo)
        right = bisect_right(backlog_t, hi)
        for k in range(left, right):
            snap_t.append(backlog_t[k])
            index = backlog_i[k]
            snap_s.append(arr_s[index])
            snap_i.append(index)

    m_slots = ctx.m_slots
    aborted = False
    while not process.done:
        # Fault events due this slot: jam starts, misses, drop-outs.
        for station in state.poll(now):
            lost_d += drop_station_backlog(ctx, state, station)
        span = process.current_span
        # Participants: alive, non-desynced snapshot entries in the span.
        first = -1
        first_station = -1
        collided = False
        for lo, hi in span.pieces:
            left = bisect_left(snap_t, lo)
            right = bisect_right(snap_t, hi)
            for k in range(left, right):
                if fate[snap_i[k]] != PENDING:
                    continue
                s = snap_s[k]
                if desynced and s in desynced:
                    continue
                if first < 0:
                    first = k
                    first_station = s
                elif s != first_station:
                    collided = True
                    break
            if collided:
                break
        if now < state.jam_until:
            # Adversarial burst: the channel reads COLLISION whatever
            # happened; any frame transmitted into it is destroyed
            # (stations abort after one slot, as on a real collision).
            true_symbol = _COLLISION
            duration = 1.0
            collision_d += 1.0
            telemetry.jam_slots += 1
        elif first < 0:
            true_symbol = _IDLE
            duration = 1.0
            idle_d += 1.0
        elif collided:
            true_symbol = _COLLISION
            duration = 1.0
            collision_d += 1.0
        else:
            true_symbol = _SUCCESS
            duration = float(m_slots)
            transmission_d += m_slots
        observed = state.observe(true_symbol)

        # Dispositions: physical truth decides delivery; the observed
        # symbol decides what the protocol state (and the sender) does.
        if true_symbol is _SUCCESS:
            index = snap_i[first]
            if observed is _SUCCESS:
                _dequeue(ctx, index)
                ctx.tx_start[index] = now
                ctx.process_start_of[index] = process_start
                arrival = arr_t[index]
                true_value = now - arrival
                paper_value = max(0.0, process_start - arrival)
                wait = true_value if ctx.true_definition else paper_value
                late = (
                    ctx.score_deadline is not None and wait > ctx.score_deadline
                )
                fate[index] = LATE if late else ON_TIME
                if arrival >= warmup_slots:
                    if late:
                        late_d += 1
                    else:
                        on_time_d += 1
                    ctx.waits.observe(true_value, paper_value)
            elif observed is _IDLE:
                # Faded frame: the transmission happened but nobody —
                # receiver included — decoded it, and the span resolves
                # idle, so the message can never be rescheduled.
                _dequeue(ctx, index)
                fate[index] = LOST
                telemetry.faded_frames += 1
                if arr_t[index] >= warmup_slots:
                    lost_d += 1
            # observed COLLISION (erasure): the frame is retransmitted
            # when the split descent isolates it again — stays pending.
        elif true_symbol is _COLLISION and observed is _SUCCESS:
            # Capture: every participating station believes its frame
            # got through and dequeues its oldest in-span message.
            captured: Dict[int, int] = {}
            for lo, hi in span.pieces:
                left = bisect_left(snap_t, lo)
                right = bisect_right(snap_t, hi)
                for k in range(left, right):
                    index = snap_i[k]
                    if fate[index] != PENDING:
                        continue
                    s = snap_s[k]
                    if desynced and s in desynced:
                        continue
                    if s not in captured:
                        captured[s] = index
            for index in captured.values():
                _dequeue(ctx, index)
                fate[index] = LOST
                telemetry.phantom_deliveries += 1
                if arr_t[index] >= warmup_slots:
                    lost_d += 1

        now += duration
        process.on_feedback(observed)
        if not process.done and process.depth > model.max_split_depth:
            # Divergence abort: a split descent this deep cannot happen
            # under fault-free feedback (see FeedbackFaultModel notes).
            telemetry.divergence_detections += 1
            telemetry.diverged_slots += process.slots_spent
            telemetry.resyncs += 1
            if model.recovery == "drop-out":
                # Every station entangled in the diverged process gives
                # up its in-window backlog.
                for k in range(len(snap_i)):
                    index = snap_i[k]
                    if fate[index] != PENDING:
                        continue
                    _dequeue(ctx, index)
                    fate[index] = LOST
                    telemetry.dropped_messages += 1
                    if arr_t[index] >= warmup_slots:
                        lost_d += 1
            elif model.recovery == "gated-rejoin":
                # The network listens before re-engaging.
                now += model.rejoin_listen_slots
                wait_d += model.rejoin_listen_slots
            # Fold the resolved pieces back (the done-check in
            # complete_process forbids calling it on an aborted
            # process); the unexamined remainder stays unresolved.
            for resolved in process.resolved_spans:
                controller.unresolved.subtract_span(resolved)
            aborted = True
            break
    if not aborted:
        controller.complete_process(process)

    return (
        now,
        idle_d,
        collision_d,
        transmission_d,
        wait_d,
        on_time_d,
        late_d,
        discarded_d,
        lost_d,
    )


def execute_phantom_epoch(ctx: EpochContext, state: FeedbackFaultState, now: float):
    """A faulted decision epoch on an **empty backlog**, noise-only model.

    Precondition: no pending messages and ``model.has_events`` is false.
    Every examination is then truly IDLE — no participants, no jam
    window, no event clocks — so the epoch is driven entirely by the
    per-slot misdetection draws: a clean draw resolves the examined
    span, an erasure observes a phantom COLLISION and sends the state
    machine into a split descent that (with binary splits) can only end
    at the divergence-abort depth.  :func:`execute_epoch_faulted` walks
    that descent through :class:`~repro.core.window.WindowingProcess`
    span arithmetic; this executor replays the identical state machine
    on scalar ``(lo, hi)`` endpoints (via :func:`_scalar_split`, the
    exact ``split_at_measure`` walk) and the same
    :meth:`~repro.faults.feedback.FeedbackFaultState.observe` draws, so
    results, telemetry and unresolved-set mutations are bit-identical —
    at a fraction of the cost.  Multi-piece initial windows (fragmented
    unresolved time under uncontrolled policies) drive the real process
    object instead, skipping only the participant scan that an empty
    snapshot makes vacuous.

    Same return contract as :func:`execute_epoch_faulted`.
    """
    controller = ctx.controller
    model = state.model
    telemetry = state.telemetry

    process = controller.begin_process(now)
    if process is None:
        return (now + 1.0, 0.0, 0.0, 0.0, 1.0, 0, 0, 0, 0)

    if ctx.obs is not None:
        ctx.obs.window_sizes.append(process.current_span.measure)

    idle_d = 0.0
    wait_d = 0.0
    unresolved = controller.unresolved
    max_depth = model.max_split_depth
    gated = model.recovery == "gated-rejoin"

    if len(process.current_span.pieces) == 1 and process.arity == 2:
        # Scalar replay of the windowing state machine, binary splits
        # (the paper's rule): after the first split there is always
        # exactly one unexamined sibling, so the level bookkeeping is a
        # single variable, and the misdetection draw is inlined from
        # ``FeedbackFaultState.observe`` (true IDLE: only the erasure
        # threshold applies) with the same stash discipline.
        split_rule = process.split
        rng = process._rng
        noise = state._noise
        p_erasure = state._p_erasure
        rng_random = state.rng.random
        current = process.current_span.pieces[0]
        sibling = _NO_SIBLING
        depth = 0
        slots = 0
        resolved: List = []
        while True:
            idle_d += 1.0
            now += 1.0
            slots += 1
            erased = False
            if noise:
                stash = state._stash
                if stash is None:
                    u = rng_random()
                else:
                    pos = state._stash_pos
                    u = stash[pos]
                    pos += 1
                    if pos >= len(stash):
                        state._stash = None
                    else:
                        state._stash_pos = pos
                if u < p_erasure:
                    erased = True
                    telemetry.corrupted_observations += 1
            if not erased:
                if current is not None:
                    resolved.append(current)
                if sibling is _NO_SIBLING:
                    # Initial window examined idle: the process is done.
                    for lo, hi in resolved:
                        unresolved.subtract(lo, hi)
                    return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)
                piece = sibling  # all earlier siblings idle: split (§2)
            else:
                piece = current  # phantom COLLISION: recurse, abandon
            depth += 1
            if piece is None:
                p0 = p1 = None
            else:
                lo, hi = piece
                width = hi - lo
                offset = width / 2
                if offset >= width - _EPS:
                    p0, p1 = piece, None
                elif offset <= _EPS:
                    p0, p1 = None, piece
                else:
                    cut = lo + offset
                    p0, p1 = (lo, cut), (cut, hi)
            if split_rule == "older":
                current, sibling = p0, p1
            elif split_rule == "newer":
                current, sibling = p1, p0
            elif examination_order("random", 2, rng)[0] == 0:
                current, sibling = p0, p1
            else:
                current, sibling = p1, p0
            if depth > max_depth:
                telemetry.divergence_detections += 1
                telemetry.diverged_slots += slots
                telemetry.resyncs += 1
                if gated:
                    now += model.rejoin_listen_slots
                    wait_d += model.rejoin_listen_slots
                for lo, hi in resolved:
                    unresolved.subtract(lo, hi)
                return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)

    if len(process.current_span.pieces) == 1:
        # General-arity scalar replay.
        arity = process.arity
        split_rule = process.split
        rng = process._rng
        current = process.current_span.pieces[0]
        siblings = None
        depth = 0
        slots = 0
        resolved = []
        while True:
            idle_d += 1.0
            observed = state.observe(_IDLE)
            now += 1.0
            slots += 1
            if observed is _IDLE:
                resolved.append(current)
                if siblings is None:
                    # Initial window examined idle: the process is done.
                    for piece in resolved:
                        if piece is not None:
                            unresolved.subtract(piece[0], piece[1])
                    return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)
                if len(siblings) == 1:
                    # All earlier siblings idle: split the last (§2).
                    depth += 1
                    parts = _scalar_parts(siblings[0], arity)
                    order = examination_order(split_rule, len(parts), rng)
                    current = parts[order[0]]
                    siblings = [parts[i] for i in order[1:]]
                else:
                    current = siblings[0]
                    siblings = siblings[1:]
            else:
                # Phantom COLLISION: recurse, abandoning any siblings.
                depth += 1
                parts = _scalar_parts(current, arity)
                order = examination_order(split_rule, len(parts), rng)
                current = parts[order[0]]
                siblings = [parts[i] for i in order[1:]]
            if depth > max_depth:
                telemetry.divergence_detections += 1
                telemetry.diverged_slots += slots
                telemetry.resyncs += 1
                if gated:
                    now += model.rejoin_listen_slots
                    wait_d += model.rejoin_listen_slots
                for piece in resolved:
                    if piece is not None:
                        unresolved.subtract(piece[0], piece[1])
                return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)

    # Fragmented window: drive the real state machine (rare and cheap —
    # the expensive participant/jam/event work is vacuous here).
    while not process.done:
        idle_d += 1.0
        observed = state.observe(_IDLE)
        now += 1.0
        process.on_feedback(observed)
        if not process.done and process.depth > max_depth:
            telemetry.divergence_detections += 1
            telemetry.diverged_slots += process.slots_spent
            telemetry.resyncs += 1
            if gated:
                now += model.rejoin_listen_slots
                wait_d += model.rejoin_listen_slots
            for span in process.resolved_spans:
                unresolved.subtract_span(span)
            return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)
    controller.complete_process(process)
    return (now, idle_d, 0.0, 0.0, wait_d, 0, 0, 0, 0)


def run_fast_faulted(
    sim: "WindowMACSimulator", total_time: float, warmup_slots: float
) -> "MACSimResult":
    """Run the fast kernel under a feedback fault model.

    Same contract as ``_run_shared_faulted`` (the faulted reference
    loop), bit for bit — results, telemetry and metrics registry.
    """
    from ..simulator import (  # deferred: import cycle
        MACSimResult,
        flush_fault_metrics,
        flush_result_metrics,
    )

    policy = sim.policy
    controller = sim.controller
    rng = sim.rng
    m_slots = sim.transmission_slots
    discard_deadline = policy.discard_deadline
    score_deadline = sim.deadline
    true_definition = sim.loss_definition == "true"
    model = sim.feedback_faults
    state = FeedbackFaultState(model, sim.registry.n_stations, sim._fault_rng)
    telemetry = state.telemetry
    traits = kernel_traits(policy)
    # Idle fast-forward and the scalar phantom executor are only sound
    # for noise-only models: event clocks (misses, jam bursts) interact
    # with executed epoch tops — a skipped epoch would shift rejoin
    # instants and jam telemetry.
    phantom_ok = not model.has_events
    can_scan = phantom_ok and traits.entry_discard_ok

    # -- arrival generation: identical draws to _generate_arrivals ----------
    arrival_rng = sim._arrival_rng
    if sim.workload is not None:
        gen_times, gen_stations = sim.workload.generate(
            total_time, sim.registry.n_stations, arrival_rng
        )
    else:
        n = arrival_rng.poisson(sim.arrival_rate * total_time)
        gen_times = np.sort(arrival_rng.uniform(0.0, total_time, size=n))
        gen_stations = arrival_rng.integers(0, sim.registry.n_stations, size=n)
    arr_t: List[float] = [float(t) for t in gen_times]
    arr_s: List[int] = [int(s) for s in gen_stations]
    n_arrivals = len(arr_t)
    fate = np.zeros(n_arrivals, dtype=np.int8)
    tx_start = np.full(n_arrivals, np.nan)
    process_start_of = np.full(n_arrivals, np.nan)

    # -- state ---------------------------------------------------------------
    now = 0.0
    idle_slots = 0.0
    collision_slots = 0.0
    transmission_slots = 0.0
    wait_slots = 0.0

    backlog_t: List[float] = []
    backlog_i: List[int] = []
    next_arrival = 0

    n_measured = 0
    delivered_on_time = 0
    delivered_late = 0
    discarded = 0
    lost = 0
    waits = WaitStats()

    check = invariants_enabled()
    last_now = -math.inf
    obs = sim.metrics
    ob = ObsBuffers() if obs is not None else None

    ctx = EpochContext(
        controller,
        m_slots,
        discard_deadline,
        score_deadline,
        true_definition,
        warmup_slots,
        arr_t,
        arr_s,
        backlog_t,
        backlog_i,
        [],  # stuck_i: unused — faulted runs never strand companions
        fate,
        tx_start,
        process_start_of,
        waits,
        ob,
    )

    while now < total_time:
        if check:
            require(now > last_now, f"faulted-path clock stalled at slot {now}")
            last_now = now
        while next_arrival < n_arrivals and arr_t[next_arrival] <= now:
            backlog_t.append(arr_t[next_arrival])
            backlog_i.append(next_arrival)
            if arr_t[next_arrival] >= warmup_slots:
                n_measured += 1
            next_arrival += 1

        # -- idle-period fast-forward (noise-only models) -------------------
        if can_scan and not backlog_t:
            upcoming = (
                arr_t[next_arrival] if next_arrival < n_arrivals else math.inf
            )
            skipped = try_fast_forward(
                controller, policy, traits, now, upcoming, total_time, check,
                scan=state.scan_idle,
            )
            if skipped:
                # A scan capped below the stretch length means the next
                # idle examination reads a corrupted symbol; the re-entry
                # scan returns 0 there and the real epoch consumes the
                # stashed draw.
                idle_slots += skipped
                now += skipped
                if ob is not None:
                    ob.ff_skips.append(skipped)
                continue

        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(backlog_t))

        if phantom_ok and not backlog_t:
            # Empty backlog, noise-only model: poll/rejoin are vacuous
            # and every slot is truly idle — take the scalar executor.
            (
                now,
                idle_d,
                collision_d,
                transmission_d,
                wait_d,
                on_time_d,
                late_d,
                discarded_d,
                lost_d,
            ) = execute_phantom_epoch(ctx, state, now)
        else:
            # Epoch-top fault bookkeeping: events due by now, then
            # rejoins (stations only ever rejoin at a decision boundary).
            for station in state.poll(now):
                lost += drop_station_backlog(ctx, state, station)
            state.rejoin(now)

            (
                now,
                idle_d,
                collision_d,
                transmission_d,
                wait_d,
                on_time_d,
                late_d,
                discarded_d,
                lost_d,
            ) = execute_epoch_faulted(ctx, state, now)
        idle_slots += idle_d
        collision_slots += collision_d
        transmission_slots += transmission_d
        wait_slots += wait_d
        delivered_on_time += on_time_d
        delivered_late += late_d
        discarded += discarded_d
        lost += lost_d

    unresolved_count = sum(
        1 for index in backlog_i if arr_t[index] >= warmup_slots
    )
    if check:
        accounted = (
            delivered_on_time
            + delivered_late
            + discarded
            + lost
            + unresolved_count
        )
        require(
            accounted == n_measured,
            f"message conservation violated (faulted fast path): "
            f"{n_measured} measured arrivals but {accounted} accounted for",
        )

    scored: List[Message] = []
    for index in range(n_arrivals):
        arrival = arr_t[index]
        if arrival < warmup_slots:
            continue
        message = Message(arrival=arrival, station=arr_s[index], uid=index)
        message.fate = FATE_OF_CODE[int(fate[index])]
        if not math.isnan(tx_start[index]):
            message.tx_start = float(tx_start[index])
            message.process_start = float(process_start_of[index])
        scored.append(message)
    sim.scored_messages = scored

    stats = ChannelStats(
        idle_slots=idle_slots,
        collision_slots=collision_slots,
        transmission_slots=transmission_slots,
        wait_slots=wait_slots,
    )
    sim.channel.now = now
    sim.channel.stats = stats
    result = MACSimResult(
        arrivals=n_measured,
        delivered_on_time=delivered_on_time,
        delivered_late=delivered_late,
        discarded=discarded,
        unresolved=unresolved_count,
        mean_true_wait=waits.mean_true,
        mean_paper_wait=waits.mean_paper,
        channel=stats,
        deadline=score_deadline,
        lost_to_faults=lost,
        faults=telemetry,
    )
    if obs is not None:
        ob.flush(obs)
        flush_result_metrics(obs, result)
        flush_fault_metrics(obs, telemetry)
    return result

"""Shared protocol primitives consumed by every simulation kernel.

The decision-epoch body, the idle fast-forward shortcut, the policy
trait derivation, the wait/instrumentation accumulators and the fate
codes all live here — one implementation, four consumers (reference
loop, fast kernel, batched lanes, compiled backend).  The split rules of
policy element 3 are re-exported from :mod:`repro.core.splits`, where
the reference :class:`~repro.core.window.WindowingProcess` takes them
from as well, so no kernel carries private split logic.

Everything in this module is bound by the bit-parity contract: any
kernel built from these primitives must reproduce the reference loop's
results field for field — identical RNG draw order, identical float
arithmetic on every recorded quantity.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ...core.splits import examination_order, split_parts
from ...core.timeline import IntervalSet
from ...core.window import ChannelFeedback
from ...resilience.invariants import require
from ..messages import MessageFate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...core.controller import ProtocolController
    from ...core.policy import ControlPolicy
    from ...obs.metrics import MetricsRegistry

__all__ = [
    "PENDING",
    "ON_TIME",
    "LATE",
    "DISCARDED",
    "LOST",
    "FATE_OF_CODE",
    "KernelTraits",
    "kernel_traits",
    "WaitStats",
    "ObsBuffers",
    "EpochContext",
    "execute_epoch",
    "try_fast_forward",
    "split_parts",
    "examination_order",
]

# Integer fate codes of the struct-of-arrays bookkeeping.
PENDING = 0
ON_TIME = 1
LATE = 2
DISCARDED = 3
LOST = 4  # destroyed by an injected fault (repro.mac.kernels.faults)

FATE_OF_CODE = {
    PENDING: MessageFate.PENDING,
    ON_TIME: MessageFate.DELIVERED_ON_TIME,
    LATE: MessageFate.DELIVERED_LATE,
    DISCARDED: MessageFate.DISCARDED_AT_SENDER,
    LOST: MessageFate.LOST_TO_FAULT,
}


@dataclass(frozen=True)
class KernelTraits:
    """Shortcut eligibility of a control policy, derived once per run.

    These are exactly the tests the fast kernel used to perform inline;
    they are shared across kernels so all agree — by construction — on
    when a closed-form step is legal.
    """

    #: Policy element 2 is :class:`~repro.core.policy.FullBacklogLength`:
    #: the initial window always spans the whole unresolved set.
    covers_backlog: bool
    #: ``policy.length.constant_length()`` — lets a kernel skip the
    #: per-epoch WindowSizer round trip when the rule is state-free.
    const_length: Optional[float]
    #: Whether epochs *after* the entry epoch (backlog measure exactly
    #: one slot) also resolve in one full-window examination.
    steady_skippable: bool
    #: Whether element 4 cannot clip a one-slot backlog (K ≥ 1), the
    #: gate on attempting the idle fast-forward at all.
    entry_discard_ok: bool

    @property
    def closed_form(self) -> bool:
        """Whether the window length is computable without the policy object.

        The batched kernel's vectorised lanes require this; exotic
        length rules fall back to stepping the real controller.
        """
        return self.covers_backlog or self.const_length is not None


def kernel_traits(policy: "ControlPolicy") -> KernelTraits:
    """Derive the :class:`KernelTraits` of ``policy``."""
    from ...core.policy import FullBacklogLength

    discard_deadline = policy.discard_deadline
    covers_backlog = isinstance(policy.length, FullBacklogLength)
    const_length = policy.length.constant_length()
    steady_skippable = covers_backlog or (
        const_length is not None
        and const_length >= 1.0
        and (discard_deadline is None or discard_deadline >= 1.0)
    )
    entry_discard_ok = discard_deadline is None or discard_deadline >= 1.0
    return KernelTraits(
        covers_backlog=covers_backlog,
        const_length=const_length,
        steady_skippable=steady_skippable,
        entry_discard_ok=entry_discard_ok,
    )


class WaitStats:
    """Streaming means of the two wait definitions.

    Same Welford update (and therefore the same float arithmetic on the
    mean) as :class:`~repro.des.monitor.Tally.observe`, with the
    moments the result never reads (m2/min/max) dropped.
    """

    __slots__ = ("count", "true_mean", "paper_mean")

    def __init__(self) -> None:
        self.count = 0
        self.true_mean = 0.0
        self.paper_mean = 0.0

    def observe(self, true_value: float, paper_value: float) -> None:
        self.count += 1
        delta = true_value - self.true_mean
        self.true_mean += delta / self.count
        delta = paper_value - self.paper_mean
        self.paper_mean += delta / self.count

    @property
    def mean_true(self) -> float:
        return self.true_mean if self.count else math.nan

    @property
    def mean_paper(self) -> float:
        return self.paper_mean if self.count else math.nan


class ObsBuffers:
    """Per-run instrumentation buffers, flushed into the registry once.

    The hot loop appends plain ints/floats; :meth:`flush` reproduces the
    exact registry state the per-epoch ``inc``/``observe`` calls used to
    build (counter sums of integral amounts are order-free, histogram
    observations are replayed in recording order).
    """

    __slots__ = ("epochs", "backlog_sizes", "window_sizes", "ff_skips")

    def __init__(self) -> None:
        self.epochs = 0
        self.backlog_sizes: List[int] = []
        self.window_sizes: List[float] = []
        self.ff_skips: List[int] = []

    def flush(self, registry: "MetricsRegistry") -> None:
        registry.counter("mac.epochs").inc(self.epochs)
        registry.histogram("mac.backlog.size").observe_many(self.backlog_sizes)
        registry.histogram("mac.window.size", unit="slots").observe_many(
            self.window_sizes
        )
        registry.counter("mac.fastforward.spans").inc(len(self.ff_skips))
        registry.counter("mac.fastforward.slots", unit="slots").inc(
            sum(self.ff_skips)
        )
        registry.histogram("mac.fastforward.span", unit="slots").observe_many(
            self.ff_skips
        )


def try_fast_forward(
    controller: "ProtocolController",
    policy: "ControlPolicy",
    traits: KernelTraits,
    now: float,
    upcoming: float,
    total_time: float,
    check: bool,
    scan=None,
) -> int:
    """Attempt the idle fast-forward at an empty-backlog epoch.

    Mirrors ``begin_process``'s epoch bookkeeping (advance + discard;
    those mutations persist whether or not the jump happens, exactly as
    the subsequent reference epoch expects), then decides whether this
    epoch is a full-window idle examination.  Returns the number of
    slots jumped (≥ 1, with the controller left in the closed-form
    post-jump state) or 0 if the epoch must run for real.  The caller
    advances the clock and the idle-slot account by the return value.

    ``scan`` (the faulted kernel's hook) is called with the candidate
    slot count and returns how many of them may actually be jumped —
    idle examinations that a corrupted feedback reading would turn into
    a split descent cap the jump there, and the capped slot runs for
    real.  The closed-form post-jump state is the same either way: the
    reference state after exactly that many full-window idle epochs.
    """
    controller.advance_time(now)
    controller.apply_discard(now)
    measure = controller.unresolved.measure
    if check:
        require(
            measure >= 0.0,
            f"unresolved backlog has negative measure at slot {now}",
        )
    if measure <= 1e-12:
        return 0
    length = (
        measure
        if traits.covers_backlog
        else (
            traits.const_length
            if traits.const_length is not None
            else policy.length.length(measure)
        )
    )
    if length < measure:
        return 0
    # Every slot until the next arrival (or the horizon) resolves the
    # whole backlog and comes back idle.
    stop = min(upcoming, total_time)
    skipped = math.ceil(stop - now) if traits.steady_skippable else 1
    if scan is not None:
        skipped = scan(skipped)
        if skipped == 0:
            return 0
    controller.unresolved = IntervalSet()
    controller.frontier = now + skipped - 1.0
    return skipped


class EpochContext:
    """Run-constant state threaded through :func:`execute_epoch`.

    One instance per run (or per batched lane); the epoch helper reads
    everything through it so the sequential, batched and compiled
    kernels share the same epoch code verbatim.
    """

    __slots__ = (
        "controller",
        "m_slots",
        "discard_deadline",
        "score_deadline",
        "true_definition",
        "warmup_slots",
        "arr_t",
        "arr_s",
        "backlog_t",
        "backlog_i",
        "stuck_i",
        "fate",
        "tx_start",
        "process_start_of",
        "waits",
        "obs",
    )

    def __init__(
        self,
        controller: "ProtocolController",
        m_slots: int,
        discard_deadline: Optional[float],
        score_deadline: Optional[float],
        true_definition: bool,
        warmup_slots: float,
        arr_t: List[float],
        arr_s: List[int],
        backlog_t: List[float],
        backlog_i: List[int],
        stuck_i: List[int],
        fate: np.ndarray,
        tx_start: np.ndarray,
        process_start_of: np.ndarray,
        waits: WaitStats,
        obs: Optional[ObsBuffers],
    ) -> None:
        self.controller = controller
        self.m_slots = m_slots
        self.discard_deadline = discard_deadline
        self.score_deadline = score_deadline
        self.true_definition = true_definition
        self.warmup_slots = warmup_slots
        self.arr_t = arr_t
        self.arr_s = arr_s
        self.backlog_t = backlog_t
        self.backlog_i = backlog_i
        self.stuck_i = stuck_i
        self.fate = fate
        self.tx_start = tx_start
        self.process_start_of = process_start_of
        self.waits = waits
        self.obs = obs


def execute_epoch(ctx: EpochContext, now: float):
    """One reference decision epoch (same call sequence as the slow path).

    Returns ``(now, idle, collision, transmission, wait, on_time, late,
    discarded)``: the advanced clock plus this epoch's deltas.  All slot
    deltas are integral-valued floats and all count deltas are ints, so
    the caller's accumulation is bit-exact regardless of how epochs are
    grouped — the property the batched kernel relies on.
    """
    controller = ctx.controller
    backlog_t = ctx.backlog_t
    backlog_i = ctx.backlog_i
    arr_t = ctx.arr_t
    warmup_slots = ctx.warmup_slots
    fate = ctx.fate
    discard_deadline = ctx.discard_deadline

    idle_d = 0.0
    collision_d = 0.0
    transmission_d = 0.0
    discarded_d = 0

    process = controller.begin_process(now)
    if discard_deadline is not None:
        horizon = now - discard_deadline
        cut = bisect_left(backlog_t, horizon)
        if cut:
            for index in backlog_i[:cut]:
                fate[index] = DISCARDED
                if arr_t[index] >= warmup_slots:
                    discarded_d += 1
            del backlog_t[:cut]
            del backlog_i[:cut]

    if process is None:
        return (now + 1.0, 0.0, 0.0, 0.0, 1.0, 0, 0, discarded_d)

    process_start = now
    if ctx.obs is not None:
        ctx.obs.window_sizes.append(process.current_span.measure)
    # Per-process arrival bins: snapshot the initial window's messages
    # once; the backlog cannot change until the process completes.
    snap_t: List[float] = []
    snap_s: List[int] = []
    snap_i: List[int] = []
    arr_s = ctx.arr_s
    for lo, hi in process.current_span.pieces:
        left = bisect_left(backlog_t, lo)
        right = bisect_right(backlog_t, hi)
        for k in range(left, right):
            snap_t.append(backlog_t[k])
            index = backlog_i[k]
            snap_s.append(arr_s[index])
            snap_i.append(index)

    m_slots = ctx.m_slots
    transmitted = -1
    tx_instant = 0.0
    stranded: List[int] = []
    while not process.done:
        # Resolve one slot against the snapshot: distinct enabled
        # stations decide idle/success/collision, exactly like
        # StationRegistry.enabled_stations on the live backlog.
        first = -1
        first_station = -1
        collided = False
        for lo, hi in process.current_span.pieces:
            left = bisect_left(snap_t, lo)
            right = bisect_right(snap_t, hi)
            for k in range(left, right):
                if first < 0:
                    first = k
                    first_station = snap_s[k]
                elif snap_s[k] != first_station:
                    collided = True
                    break
            if collided:
                break
        if first < 0:
            now += 1.0
            idle_d += 1.0
            process.on_feedback(ChannelFeedback.IDLE)
        elif collided:
            now += 1.0
            collision_d += 1.0
            process.on_feedback(ChannelFeedback.COLLISION)
        else:
            # Single enabled station: it transmits its oldest message
            # inside the span — the first snapshot entry, since the
            # snapshot is arrival-ordered.
            transmitted = snap_i[first]
            tx_instant = now
            if discard_deadline is None:
                # Same-station messages sharing the success span are
                # stranded: the span is resolved but they are not
                # transmitted (see stuck_i in run_fast).
                for lo, hi in process.current_span.pieces:
                    left = bisect_left(snap_t, lo)
                    right = bisect_right(snap_t, hi)
                    for k in range(left, right):
                        if k != first:
                            stranded.append(snap_i[k])
            now += m_slots
            transmission_d += m_slots
            process.on_feedback(ChannelFeedback.SUCCESS)
    controller.complete_process(process)

    on_time_d = 0
    late_d = 0
    if transmitted >= 0:
        arrival = arr_t[transmitted]
        position = bisect_left(backlog_t, arrival)
        while backlog_i[position] != transmitted:
            position += 1
        del backlog_t[position]
        del backlog_i[position]
        stuck_i = ctx.stuck_i
        for index in stranded:
            position = bisect_left(backlog_t, arr_t[index])
            while backlog_i[position] != index:
                position += 1
            del backlog_t[position]
            del backlog_i[position]
            stuck_i.append(index)
        ctx.tx_start[transmitted] = tx_instant
        ctx.process_start_of[transmitted] = process_start
        true_value = tx_instant - arrival
        paper_value = max(0.0, process_start - arrival)
        wait = true_value if ctx.true_definition else paper_value
        late = ctx.score_deadline is not None and wait > ctx.score_deadline
        fate[transmitted] = LATE if late else ON_TIME
        if arrival >= warmup_slots:
            if late:
                late_d += 1
            else:
                on_time_d += 1
            ctx.waits.observe(true_value, paper_value)

    return (
        now,
        idle_d,
        collision_d,
        transmission_d,
        0.0,
        on_time_d,
        late_d,
        discarded_d,
    )

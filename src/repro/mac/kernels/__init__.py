"""Shared kernel primitives for the MAC simulation back ends.

Four kernels execute the window protocol:

* the **reference loop** (:meth:`repro.mac.simulator.WindowMACSimulator._run_shared`),
* the **fast kernel** (:mod:`repro.mac.fastpath`),
* the **batched lanes** (:mod:`repro.mac.batch`), and
* the **compiled backend** (:mod:`repro.mac.kernels.compiled`, selected
  with ``backend="compiled"`` / ``--backend compiled``).

They used to carry three private copies of the protocol's policy
decisions; this package is the single home for everything they share:

``primitives``
    Policy traits (:class:`~repro.mac.kernels.primitives.KernelTraits`),
    the decision-epoch executor, the idle fast-forward shortcut, wait
    statistics, instrumentation buffers, fate codes, and the split rules
    (re-exported from :mod:`repro.core.splits`, where the reference
    state machine consumes them too).
``lane``
    The lane state machine — one independent run advanced in fused
    rounds — shared by the batched kernel (R lanes in lockstep) and the
    compiled backend (one lane, flat epochs).
``engine``
    The flat struct-of-arrays engine: interval-set and span arithmetic
    on plain float pairs (bit-identical to
    :mod:`repro.core.timeline`), replacing the object stack inside
    collision-resolution epochs.
``compiled``
    Backend selection: ``numba``-compiled hot loops when numba is
    importable, the pure-NumPy/struct-of-arrays fallback otherwise,
    plus the eligibility gate and the one-time fallback notice.

Every quantity any of these produce is bound by the same bit-parity
contract the fast kernel introduced: field-for-field equality with the
reference loop, seeded RANDOM included, metrics registries equal when
enabled.
"""

from . import primitives
from .primitives import (
    DISCARDED,
    LATE,
    ON_TIME,
    PENDING,
    EpochContext,
    KernelTraits,
    ObsBuffers,
    WaitStats,
    examination_order,
    execute_epoch,
    kernel_traits,
    split_parts,
    try_fast_forward,
)

__all__ = [
    "primitives",
    "PENDING",
    "ON_TIME",
    "LATE",
    "DISCARDED",
    "EpochContext",
    "KernelTraits",
    "ObsBuffers",
    "WaitStats",
    "examination_order",
    "execute_epoch",
    "kernel_traits",
    "split_parts",
    "try_fast_forward",
]

"""Event-driven implementation of the window-MAC simulation.

A second, independent execution of the same protocol:
:class:`WindowMACSimulator` advances a slot-count loop, while this
implementation runs the protocol as *processes* on the
:mod:`repro.des` engine — arrivals stream in from a generator process
while the protocol driver yields timeouts for examinations and
transmissions.  Messages, stations, channel-feedback semantics and the
controller are shared code, so statistical agreement between the two
simulators pins down the one thing they don't share: the time-advance
machinery.  (`tests/mac/test_des_simulator.py` asserts that agreement.)

It also serves as the package's worked example of building a protocol
simulation on the DES substrate.
"""

from __future__ import annotations

from typing import Optional


from ..core.controller import ProtocolController
from ..core.policy import ControlPolicy
from ..core.window import ChannelFeedback
from ..des.engine import Simulator
from ..des.monitor import Counter, Tally
from ..des.rng import RandomStreams
from .messages import Message, MessageFate
from .simulator import MACSimResult
from .channel import ChannelStats
from .station import StationRegistry

__all__ = ["DESWindowMACSimulator"]


class DESWindowMACSimulator:
    """The window protocol as coroutine processes on the DES engine.

    Parameters mirror :class:`~repro.mac.simulator.WindowMACSimulator`.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        arrival_rate: float,
        transmission_slots: int,
        n_stations: int = 200,
        deadline: Optional[float] = None,
        loss_definition: str = "true",
        seed: int = 0,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if loss_definition not in ("true", "paper"):
            raise ValueError(f"unknown loss definition: {loss_definition!r}")
        self.policy = policy
        self.arrival_rate = arrival_rate
        self.transmission_slots = transmission_slots
        self.deadline = deadline
        self.loss_definition = loss_definition
        self.streams = RandomStreams(seed)
        self.registry = StationRegistry(n_stations)
        self.controller = ProtocolController(
            policy, rng=self.streams.get("policy")
        )

    # -- processes ---------------------------------------------------------

    def _arrival_process(self, sim: Simulator, horizon: float, sink: list):
        rng = self.streams.get("arrivals")
        station_rng = self.streams.get("stations")
        uid = 0
        while True:
            gap = rng.exponential(1.0 / self.arrival_rate)
            if sim.now + gap > horizon:
                return
            yield sim.timeout(gap)
            message = Message(
                arrival=sim.now,
                station=int(station_rng.integers(0, self.registry.n_stations)),
                uid=uid,
            )
            uid += 1
            self.registry.ingest(message)
            sink.append(message)

    def _protocol_process(
        self, sim: Simulator, horizon: float, stats: ChannelStats,
        counts: Counter, true_wait: Tally, paper_wait: Tally, warmup: float,
    ):
        registry = self.registry
        controller = self.controller
        while sim.now < horizon:
            now = sim.now
            process = controller.begin_process(now)
            if self.policy.discard_deadline is not None:
                cut = now - self.policy.discard_deadline
                for message in registry.drop_older_than(cut):
                    message.fate = MessageFate.DISCARDED_AT_SENDER
                    if message.arrival >= warmup:
                        counts.increment("discarded")
            if process is None:
                stats.wait_slots += 1.0
                yield sim.timeout(1.0)
                continue

            process_start = now
            transmitted: Optional[Message] = None
            while not process.done:
                span = process.current_span
                enabled = registry.enabled_stations(span)
                if not enabled:
                    stats.idle_slots += 1.0
                    yield sim.timeout(1.0)
                    process.on_feedback(ChannelFeedback.IDLE)
                elif len(enabled) == 1:
                    (message,) = enabled.values()
                    message.tx_start = sim.now
                    transmitted = message
                    stats.transmission_slots += self.transmission_slots
                    yield sim.timeout(self.transmission_slots)
                    process.on_feedback(ChannelFeedback.SUCCESS)
                else:
                    stats.collision_slots += 1.0
                    yield sim.timeout(1.0)
                    process.on_feedback(ChannelFeedback.COLLISION)
            controller.complete_process(process)

            if transmitted is not None:
                transmitted.process_start = process_start
                registry.remove(transmitted)
                wait = transmitted.wait(self.loss_definition)
                late = self.deadline is not None and wait > self.deadline
                transmitted.fate = (
                    MessageFate.DELIVERED_LATE if late
                    else MessageFate.DELIVERED_ON_TIME
                )
                if transmitted.arrival >= warmup:
                    counts.increment("late" if late else "on_time")
                    true_wait.observe(transmitted.true_wait)
                    paper_wait.observe(transmitted.paper_wait)

    # -- public API -----------------------------------------------------------

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> MACSimResult:
        """Run the event-driven simulation and aggregate like the slot loop."""
        if horizon_slots <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_slots}")
        total = warmup_slots + horizon_slots
        sim = Simulator()
        stats = ChannelStats()
        counts = Counter()
        true_wait = Tally()
        paper_wait = Tally()
        generated: list = []

        sim.process(
            self._arrival_process(sim, total, generated), name="arrivals"
        )
        driver = sim.process(
            self._protocol_process(
                sim, total, stats, counts, true_wait, paper_wait, warmup_slots
            ),
            name="protocol",
        )
        sim.run(until=driver)

        measured = [m for m in generated if m.arrival >= warmup_slots]
        unresolved = sum(
            1 for m in measured if m.fate is MessageFate.PENDING
        )
        return MACSimResult(
            arrivals=len(measured),
            delivered_on_time=counts["on_time"],
            delivered_late=counts["late"],
            discarded=counts["discarded"],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=stats,
            deadline=self.deadline,
        )

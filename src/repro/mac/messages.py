"""Message records and delay bookkeeping for the MAC simulator.

Every message carries its arrival instant and owning station.  Two delay
definitions coexist (§2 and §4.2):

* **paper waiting time** — arrival → beginning of the windowing process
  that results in the message's own transmission (excludes the message's
  own scheduling time; the definition used by the analysis);
* **true waiting time** — arrival → start of the message's successful
  transmission (the traditional definition; the one the paper's
  simulations — and Figure 7's simulation points — score losses by).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MessageFate", "Message"]


class MessageFate(enum.Enum):
    """Terminal outcome of a message."""

    PENDING = "pending"
    DELIVERED_ON_TIME = "delivered_on_time"
    DELIVERED_LATE = "delivered_late"  # lost at the receiver
    DISCARDED_AT_SENDER = "discarded_at_sender"  # policy element 4
    LOST_TO_FAULT = "lost_to_fault"  # station crash, or dequeued on phantom success


@dataclass
class Message:
    """One message in the network.

    Attributes
    ----------
    arrival:
        Arrival instant at the sending station (τ-slot units).
    station:
        Owning station id.
    uid:
        Unique index (generation order).
    tx_start / process_start:
        Set on successful transmission: when the transmission began and
        when the windowing process that produced it began.
    fate:
        Terminal outcome (see :class:`MessageFate`).
    """

    arrival: float
    station: int
    uid: int
    tx_start: Optional[float] = None
    process_start: Optional[float] = None
    fate: MessageFate = field(default=MessageFate.PENDING)

    @property
    def true_wait(self) -> float:
        """Arrival → transmission start (requires delivery)."""
        if self.tx_start is None:
            raise ValueError(f"message {self.uid} was never transmitted")
        return self.tx_start - self.arrival

    @property
    def paper_wait(self) -> float:
        """Arrival → start of the final windowing process (§2 definition)."""
        if self.process_start is None:
            raise ValueError(f"message {self.uid} was never transmitted")
        return max(0.0, self.process_start - self.arrival)

    def wait(self, definition: str) -> float:
        """The chosen waiting-time definition (``"true"`` or ``"paper"``)."""
        if definition == "true":
            return self.true_wait
        if definition == "paper":
            return self.paper_wait
        raise ValueError(f"unknown waiting-time definition: {definition!r}")

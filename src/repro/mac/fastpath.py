"""Fast-path kernel for the shared-controller MAC simulation.

The reference loop in :meth:`~repro.mac.simulator.WindowMACSimulator._run_shared`
walks every slot of the horizon through the full object stack — one
:class:`~repro.core.window.WindowingProcess`, one channel examination and
one registry scan per slot, even when the network is provably silent.  At
the paper's light-load operating points that is almost every slot
(ρ′ = 0.25 spends ~85% of its slots idle), so the per-slot Python
overhead — not statistics — dominates sweep wall-clock.

This kernel removes that ceiling with three techniques, none of which is
allowed to change a single bit of the result:

**Idle-period fast-forward.**  At a decision epoch where (a) no message
is pending, (b) the initial window would cover the *entire* unresolved
set, and (c) policy element 4 cannot clip a one-slot backlog (K ≥ 1),
every slot until the next arrival is a full-window idle examination that
resolves everything and enrolls exactly one new slot of time.  The
controller state after ``n`` such slots is known in closed form (empty
unresolved set, frontier one slot behind the clock), so the kernel jumps
straight to the first epoch at which the next arrival is visible.  The
jump is draw-free even for the RANDOM discipline: when the window covers
the whole backlog the placement slack is zero and
:class:`~repro.core.policy.RandomPosition` draws nothing.

**Struct-of-arrays bookkeeping.**  Arrival instants, stations, fates and
transmission timestamps live in parallel arrays indexed by generation
order; the pending backlog is a pair of parallel lists (sorted arrival
time, array index).  No :class:`~repro.mac.messages.Message` object is
touched on the hot path — they are materialised once at the end for
``scored_messages`` compatibility.

**Per-process arrival bins.**  A windowing process only ever examines
sub-spans of its initial window, and the backlog cannot change while the
process runs, so the messages of the initial window are snapshotted once
and every split decision binary-searches that snapshot instead of
rescanning the global backlog.

The decision-epoch body, the fast-forward shortcut, the policy traits
and the accumulators live in :mod:`repro.mac.kernels.primitives`, shared
with the batched lane-parallel kernel (:mod:`repro.mac.batch`) and the
compiled backend (:mod:`repro.mac.kernels.compiled`), so every kernel
executes literally the same epoch code.  Instrumentation is buffered per
run (:class:`~repro.mac.kernels.primitives.ObsBuffers`) and flushed into
the registry once at the end — the hot loop never touches a metric
object.

Bit-identity contract: for any run the fast kernel accepts (see
:func:`fast_path_available`), the returned :class:`MACSimResult` equals
the slow path's field for field — identical RNG draw order, identical
float arithmetic on every recorded quantity.  This is enforced by the
golden-seed regression tests in ``tests/mac/test_fastpath.py``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

import numpy as np

from ..resilience.invariants import invariants_enabled, require
from .channel import ChannelStats
from .kernels.primitives import (
    FATE_OF_CODE,
    EpochContext,
    KernelTraits,
    ObsBuffers,
    WaitStats,
    execute_epoch,
    kernel_traits,
    try_fast_forward,
)
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import MACSimResult, WindowMACSimulator

__all__ = [
    "KernelTraits",
    "fast_path_available",
    "kernel_traits",
    "run_fast",
]

# Backward-compatible private aliases: the canonical implementations
# moved to repro.mac.kernels.primitives when the compiled backend became
# the third consumer.
_PENDING = 0
_ON_TIME = 1
_LATE = 2
_DISCARDED = 3
_FATE_OF_CODE = FATE_OF_CODE
_ObsBuffers = ObsBuffers
_EpochContext = EpochContext
_execute_epoch = execute_epoch
_try_fast_forward = try_fast_forward


def fast_path_available(sim: "WindowMACSimulator") -> bool:
    """Whether the fast kernel reproduces this run bit-for-bit.

    The kernel disables itself (falling back to the reference loop or
    the replica loop) when:

    * a :class:`~repro.faults.FaultModel` drives the run — *per-station*
      fault injection needs the replica machinery, and
    * any station carries a §5 priority window scale below 1 — per-process
      eligibility restricts participation in ways the snapshot bins do
      not model.

    A :class:`~repro.faults.FeedbackFaultModel` does **not** disable the
    kernel: common-mode feedback errors keep one shared protocol state,
    and :func:`run_fast` routes such runs to the faulted kernel
    (:mod:`repro.mac.kernels.faults`) at full speed.
    """
    return sim.fault_model is None and not sim.registry.has_scaled_stations


def run_fast(
    sim: "WindowMACSimulator", total_time: float, warmup_slots: float
) -> "MACSimResult":
    """Run the fast kernel; same contract as ``_run_shared``."""
    if sim.feedback_faults is not None:
        from .kernels.faults import run_fast_faulted  # deferred: import cycle

        return run_fast_faulted(sim, total_time, warmup_slots)
    from .simulator import MACSimResult, flush_result_metrics  # deferred: import cycle

    policy = sim.policy
    controller = sim.controller
    rng = sim.rng
    m_slots = sim.transmission_slots
    discard_deadline = policy.discard_deadline
    score_deadline = sim.deadline
    true_definition = sim.loss_definition == "true"

    # -- arrival generation: identical draws to _generate_arrivals ----------
    arrival_rng = sim._arrival_rng
    if sim.workload is not None:
        gen_times, gen_stations = sim.workload.generate(
            total_time, sim.registry.n_stations, arrival_rng
        )
    else:
        n = arrival_rng.poisson(sim.arrival_rate * total_time)
        gen_times = np.sort(arrival_rng.uniform(0.0, total_time, size=n))
        gen_stations = arrival_rng.integers(0, sim.registry.n_stations, size=n)
    arr_t: List[float] = [float(t) for t in gen_times]
    arr_s: List[int] = [int(s) for s in gen_stations]
    n_arrivals = len(arr_t)
    fate = np.zeros(n_arrivals, dtype=np.int8)
    tx_start = np.full(n_arrivals, np.nan)
    process_start_of = np.full(n_arrivals, np.nan)

    traits = kernel_traits(policy)
    entry_discard_ok = traits.entry_discard_ok

    # -- state ---------------------------------------------------------------
    now = 0.0
    idle_slots = 0.0
    collision_slots = 0.0
    transmission_slots = 0.0
    wait_slots = 0.0

    backlog_t: List[float] = []  # sorted pending arrival instants
    backlog_i: List[int] = []  # parallel array indices
    next_arrival = 0  # generation pointer
    # Messages that can never transmit again: a SUCCESS resolves the whole
    # examined span but transmits only the station's oldest in-span
    # message, so further same-station messages inside that span stay
    # pending while their arrival instants leave the unresolved set —
    # windows are carved from the unresolved set, so no future window can
    # enable them.  Without element 4 they would otherwise pin the backlog
    # non-empty forever and keep the idle fast-forward gate shut.  They
    # are moved here (fate stays PENDING, counted as unresolved at the
    # end), which changes nothing observable.  With a discard deadline
    # they stay in the backlog instead: the reference loop discards them
    # like any other aged message, and the fast path must match.
    stuck_i: List[int] = []

    n_measured = 0
    delivered_on_time = 0
    delivered_late = 0
    discarded = 0
    waits = WaitStats()

    # REPRO_CHECK_INVARIANTS: the fast kernel re-derives controller state
    # in closed form, so its guards watch exactly the quantities the
    # shortcuts touch — the jumped clock and the emptied unresolved set.
    check = invariants_enabled()
    last_now = -math.inf
    # Per-epoch instrumentation is buffered (plain appends on the hot
    # path) and flushed into the registry once at the end.  Epoch
    # histograms cover *executed* epochs only: the idle fast-forward
    # elides full-window idle examinations, which the dedicated
    # mac.fastforward.* counters account for instead.
    obs = sim.metrics
    ob = ObsBuffers() if obs is not None else None

    ctx = EpochContext(
        controller,
        m_slots,
        discard_deadline,
        score_deadline,
        true_definition,
        warmup_slots,
        arr_t,
        arr_s,
        backlog_t,
        backlog_i,
        stuck_i,
        fate,
        tx_start,
        process_start_of,
        waits,
        ob,
    )

    while now < total_time:
        if check:
            require(now > last_now, f"fast-path clock stalled at slot {now}")
            last_now = now
        # Ingest arrivals that have occurred.
        while next_arrival < n_arrivals and arr_t[next_arrival] <= now:
            backlog_t.append(arr_t[next_arrival])
            backlog_i.append(next_arrival)
            if arr_t[next_arrival] >= warmup_slots:
                n_measured += 1
            next_arrival += 1

        # -- idle-period fast-forward ---------------------------------------
        if not backlog_t and entry_discard_ok:
            upcoming = (
                arr_t[next_arrival] if next_arrival < n_arrivals else math.inf
            )
            skipped = try_fast_forward(
                controller, policy, traits, now, upcoming, total_time, check
            )
            if skipped:
                idle_slots += skipped
                now += skipped
                if ob is not None:
                    ob.ff_skips.append(skipped)
                continue

        # -- reference epoch (same call sequence as the slow path) -----------
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(backlog_t))
        (
            now,
            idle_d,
            collision_d,
            transmission_d,
            wait_d,
            on_time_d,
            late_d,
            discarded_d,
        ) = execute_epoch(ctx, now)
        idle_slots += idle_d
        collision_slots += collision_d
        transmission_slots += transmission_d
        wait_slots += wait_d
        delivered_on_time += on_time_d
        delivered_late += late_d
        discarded += discarded_d

    unresolved_count = sum(
        1 for index in backlog_i if arr_t[index] >= warmup_slots
    ) + sum(1 for index in stuck_i if arr_t[index] >= warmup_slots)
    if check:
        accounted = (
            delivered_on_time + delivered_late + discarded + unresolved_count
        )
        require(
            accounted == n_measured,
            f"message conservation violated (fast path): {n_measured} "
            f"measured arrivals but {accounted} accounted for",
        )

    # Materialise Message records for the measured interval so callers of
    # scored_messages see the same view as the slow path.
    scored: List[Message] = []
    for index in range(n_arrivals):
        arrival = arr_t[index]
        if arrival < warmup_slots:
            continue
        message = Message(arrival=arrival, station=arr_s[index], uid=index)
        message.fate = FATE_OF_CODE[int(fate[index])]
        if not math.isnan(tx_start[index]):
            message.tx_start = float(tx_start[index])
            message.process_start = float(process_start_of[index])
        scored.append(message)
    sim.scored_messages = scored

    stats = ChannelStats(
        idle_slots=idle_slots,
        collision_slots=collision_slots,
        transmission_slots=transmission_slots,
        wait_slots=wait_slots,
    )
    sim.channel.now = now
    sim.channel.stats = stats
    result = MACSimResult(
        arrivals=n_measured,
        delivered_on_time=delivered_on_time,
        delivered_late=delivered_late,
        discarded=discarded,
        unresolved=unresolved_count,
        mean_true_wait=waits.mean_true,
        mean_paper_wait=waits.mean_paper,
        channel=stats,
        deadline=score_deadline,
    )
    if obs is not None:
        ob.flush(obs)
        flush_result_metrics(obs, result)
    return result

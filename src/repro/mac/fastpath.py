"""Fast-path kernel for the shared-controller MAC simulation.

The reference loop in :meth:`~repro.mac.simulator.WindowMACSimulator._run_shared`
walks every slot of the horizon through the full object stack — one
:class:`~repro.core.window.WindowingProcess`, one channel examination and
one registry scan per slot, even when the network is provably silent.  At
the paper's light-load operating points that is almost every slot
(ρ′ = 0.25 spends ~85% of its slots idle), so the per-slot Python
overhead — not statistics — dominates sweep wall-clock.

This kernel removes that ceiling with three techniques, none of which is
allowed to change a single bit of the result:

**Idle-period fast-forward.**  At a decision epoch where (a) no message
is pending, (b) the initial window would cover the *entire* unresolved
set, and (c) policy element 4 cannot clip a one-slot backlog (K ≥ 1),
every slot until the next arrival is a full-window idle examination that
resolves everything and enrolls exactly one new slot of time.  The
controller state after ``n`` such slots is known in closed form (empty
unresolved set, frontier one slot behind the clock), so the kernel jumps
straight to the first epoch at which the next arrival is visible.  The
jump is draw-free even for the RANDOM discipline: when the window covers
the whole backlog the placement slack is zero and
:class:`~repro.core.policy.RandomPosition` draws nothing.

**Struct-of-arrays bookkeeping.**  Arrival instants, stations, fates and
transmission timestamps live in parallel arrays indexed by generation
order; the pending backlog is a pair of parallel lists (sorted arrival
time, array index).  No :class:`~repro.mac.messages.Message` object is
touched on the hot path — they are materialised once at the end for
``scored_messages`` compatibility.

**Per-process arrival bins.**  A windowing process only ever examines
sub-spans of its initial window, and the backlog cannot change while the
process runs, so the messages of the initial window are snapshotted once
and every split decision binary-searches that snapshot instead of
rescanning the global backlog.

The decision-epoch body and the fast-forward shortcut live in
module-level helpers (:func:`_execute_epoch`, :func:`_try_fast_forward`)
shared with the batched lane-parallel kernel in :mod:`repro.mac.batch`,
so both kernels execute literally the same epoch code.  Instrumentation
is buffered per run (:class:`_ObsBuffers`) and flushed into the registry
once at the end — the hot loop never touches a metric object.

Bit-identity contract: for any run the fast kernel accepts (see
:func:`fast_path_available`), the returned :class:`MACSimResult` equals
the slow path's field for field — identical RNG draw order, identical
float arithmetic on every recorded quantity.  This is enforced by the
golden-seed regression tests in ``tests/mac/test_fastpath.py``.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..core.timeline import IntervalSet
from ..core.window import ChannelFeedback
from ..resilience.invariants import invariants_enabled, require
from .channel import ChannelStats
from .messages import Message, MessageFate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.controller import ProtocolController
    from ..core.policy import ControlPolicy
    from ..obs.metrics import MetricsRegistry
    from .simulator import MACSimResult, WindowMACSimulator

__all__ = [
    "KernelTraits",
    "fast_path_available",
    "kernel_traits",
    "run_fast",
]

# Integer fate codes of the struct-of-arrays bookkeeping.
_PENDING = 0
_ON_TIME = 1
_LATE = 2
_DISCARDED = 3

_FATE_OF_CODE = {
    _PENDING: MessageFate.PENDING,
    _ON_TIME: MessageFate.DELIVERED_ON_TIME,
    _LATE: MessageFate.DELIVERED_LATE,
    _DISCARDED: MessageFate.DISCARDED_AT_SENDER,
}


def fast_path_available(sim: "WindowMACSimulator") -> bool:
    """Whether the fast kernel reproduces this run bit-for-bit.

    The kernel disables itself (falling back to the reference loop or
    the replica loop) when:

    * a :class:`~repro.faults.FaultModel` drives the run — fault
      injection needs the per-station replica machinery, and
    * any station carries a §5 priority window scale below 1 — per-process
      eligibility restricts participation in ways the snapshot bins do
      not model.
    """
    return sim.fault_model is None and not sim.registry.has_scaled_stations


@dataclass(frozen=True)
class KernelTraits:
    """Shortcut eligibility of a control policy, derived once per run.

    These are exactly the tests the fast kernel used to perform inline;
    they are shared with the batched kernel so both agree — by
    construction — on when a closed-form step is legal.
    """

    #: Policy element 2 is :class:`~repro.core.policy.FullBacklogLength`:
    #: the initial window always spans the whole unresolved set.
    covers_backlog: bool
    #: ``policy.length.constant_length()`` — lets the kernel skip the
    #: per-epoch WindowSizer round trip when the rule is state-free.
    const_length: Optional[float]
    #: Whether epochs *after* the entry epoch (backlog measure exactly
    #: one slot) also resolve in one full-window examination.
    steady_skippable: bool
    #: Whether element 4 cannot clip a one-slot backlog (K ≥ 1), the
    #: gate on attempting the idle fast-forward at all.
    entry_discard_ok: bool

    @property
    def closed_form(self) -> bool:
        """Whether the window length is computable without the policy object.

        The batched kernel's vectorised lanes require this; exotic
        length rules fall back to stepping the real controller.
        """
        return self.covers_backlog or self.const_length is not None


def kernel_traits(policy: "ControlPolicy") -> KernelTraits:
    """Derive the :class:`KernelTraits` of ``policy``."""
    from ..core.policy import FullBacklogLength

    discard_deadline = policy.discard_deadline
    covers_backlog = isinstance(policy.length, FullBacklogLength)
    const_length = policy.length.constant_length()
    steady_skippable = covers_backlog or (
        const_length is not None
        and const_length >= 1.0
        and (discard_deadline is None or discard_deadline >= 1.0)
    )
    entry_discard_ok = discard_deadline is None or discard_deadline >= 1.0
    return KernelTraits(
        covers_backlog=covers_backlog,
        const_length=const_length,
        steady_skippable=steady_skippable,
        entry_discard_ok=entry_discard_ok,
    )


class WaitStats:
    """Streaming means of the two wait definitions.

    Same Welford update (and therefore the same float arithmetic on the
    mean) as :class:`~repro.des.monitor.Tally.observe`, with the
    moments the result never reads (m2/min/max) dropped.
    """

    __slots__ = ("count", "true_mean", "paper_mean")

    def __init__(self) -> None:
        self.count = 0
        self.true_mean = 0.0
        self.paper_mean = 0.0

    def observe(self, true_value: float, paper_value: float) -> None:
        self.count += 1
        delta = true_value - self.true_mean
        self.true_mean += delta / self.count
        delta = paper_value - self.paper_mean
        self.paper_mean += delta / self.count

    @property
    def mean_true(self) -> float:
        return self.true_mean if self.count else math.nan

    @property
    def mean_paper(self) -> float:
        return self.paper_mean if self.count else math.nan


class _ObsBuffers:
    """Per-run instrumentation buffers, flushed into the registry once.

    The hot loop appends plain ints/floats; :meth:`flush` reproduces the
    exact registry state the per-epoch ``inc``/``observe`` calls used to
    build (counter sums of integral amounts are order-free, histogram
    observations are replayed in recording order).
    """

    __slots__ = ("epochs", "backlog_sizes", "window_sizes", "ff_skips")

    def __init__(self) -> None:
        self.epochs = 0
        self.backlog_sizes: List[int] = []
        self.window_sizes: List[float] = []
        self.ff_skips: List[int] = []

    def flush(self, registry: "MetricsRegistry") -> None:
        registry.counter("mac.epochs").inc(self.epochs)
        registry.histogram("mac.backlog.size").observe_many(self.backlog_sizes)
        registry.histogram("mac.window.size", unit="slots").observe_many(
            self.window_sizes
        )
        registry.counter("mac.fastforward.spans").inc(len(self.ff_skips))
        registry.counter("mac.fastforward.slots", unit="slots").inc(
            sum(self.ff_skips)
        )
        registry.histogram("mac.fastforward.span", unit="slots").observe_many(
            self.ff_skips
        )


def _try_fast_forward(
    controller: "ProtocolController",
    policy: "ControlPolicy",
    traits: KernelTraits,
    now: float,
    upcoming: float,
    total_time: float,
    check: bool,
) -> int:
    """Attempt the idle fast-forward at an empty-backlog epoch.

    Mirrors ``begin_process``'s epoch bookkeeping (advance + discard;
    those mutations persist whether or not the jump happens, exactly as
    the subsequent reference epoch expects), then decides whether this
    epoch is a full-window idle examination.  Returns the number of
    slots jumped (≥ 1, with the controller left in the closed-form
    post-jump state) or 0 if the epoch must run for real.  The caller
    advances the clock and the idle-slot account by the return value.
    """
    controller.advance_time(now)
    controller.apply_discard(now)
    measure = controller.unresolved.measure
    if check:
        require(
            measure >= 0.0,
            f"unresolved backlog has negative measure at slot {now}",
        )
    if measure <= 1e-12:
        return 0
    length = (
        measure
        if traits.covers_backlog
        else (
            traits.const_length
            if traits.const_length is not None
            else policy.length.length(measure)
        )
    )
    if length < measure:
        return 0
    # Every slot until the next arrival (or the horizon) resolves the
    # whole backlog and comes back idle.
    stop = min(upcoming, total_time)
    skipped = math.ceil(stop - now) if traits.steady_skippable else 1
    controller.unresolved = IntervalSet()
    controller.frontier = now + skipped - 1.0
    return skipped


class _EpochContext:
    """Run-constant state threaded through :func:`_execute_epoch`.

    One instance per run (or per batched lane); the epoch helper reads
    everything through it so the sequential and batched kernels share
    the same epoch code verbatim.
    """

    __slots__ = (
        "controller",
        "m_slots",
        "discard_deadline",
        "score_deadline",
        "true_definition",
        "warmup_slots",
        "arr_t",
        "arr_s",
        "backlog_t",
        "backlog_i",
        "stuck_i",
        "fate",
        "tx_start",
        "process_start_of",
        "waits",
        "obs",
    )

    def __init__(
        self,
        controller: "ProtocolController",
        m_slots: int,
        discard_deadline: Optional[float],
        score_deadline: Optional[float],
        true_definition: bool,
        warmup_slots: float,
        arr_t: List[float],
        arr_s: List[int],
        backlog_t: List[float],
        backlog_i: List[int],
        stuck_i: List[int],
        fate: np.ndarray,
        tx_start: np.ndarray,
        process_start_of: np.ndarray,
        waits: WaitStats,
        obs: Optional[_ObsBuffers],
    ) -> None:
        self.controller = controller
        self.m_slots = m_slots
        self.discard_deadline = discard_deadline
        self.score_deadline = score_deadline
        self.true_definition = true_definition
        self.warmup_slots = warmup_slots
        self.arr_t = arr_t
        self.arr_s = arr_s
        self.backlog_t = backlog_t
        self.backlog_i = backlog_i
        self.stuck_i = stuck_i
        self.fate = fate
        self.tx_start = tx_start
        self.process_start_of = process_start_of
        self.waits = waits
        self.obs = obs


def _execute_epoch(ctx: _EpochContext, now: float):
    """One reference decision epoch (same call sequence as the slow path).

    Returns ``(now, idle, collision, transmission, wait, on_time, late,
    discarded)``: the advanced clock plus this epoch's deltas.  All slot
    deltas are integral-valued floats and all count deltas are ints, so
    the caller's accumulation is bit-exact regardless of how epochs are
    grouped — the property the batched kernel relies on.
    """
    controller = ctx.controller
    backlog_t = ctx.backlog_t
    backlog_i = ctx.backlog_i
    arr_t = ctx.arr_t
    warmup_slots = ctx.warmup_slots
    fate = ctx.fate
    discard_deadline = ctx.discard_deadline

    idle_d = 0.0
    collision_d = 0.0
    transmission_d = 0.0
    discarded_d = 0

    process = controller.begin_process(now)
    if discard_deadline is not None:
        horizon = now - discard_deadline
        cut = bisect_left(backlog_t, horizon)
        if cut:
            for index in backlog_i[:cut]:
                fate[index] = _DISCARDED
                if arr_t[index] >= warmup_slots:
                    discarded_d += 1
            del backlog_t[:cut]
            del backlog_i[:cut]

    if process is None:
        return (now + 1.0, 0.0, 0.0, 0.0, 1.0, 0, 0, discarded_d)

    process_start = now
    if ctx.obs is not None:
        ctx.obs.window_sizes.append(process.current_span.measure)
    # Per-process arrival bins: snapshot the initial window's messages
    # once; the backlog cannot change until the process completes.
    snap_t: List[float] = []
    snap_s: List[int] = []
    snap_i: List[int] = []
    arr_s = ctx.arr_s
    for lo, hi in process.current_span.pieces:
        left = bisect_left(backlog_t, lo)
        right = bisect_right(backlog_t, hi)
        for k in range(left, right):
            snap_t.append(backlog_t[k])
            index = backlog_i[k]
            snap_s.append(arr_s[index])
            snap_i.append(index)

    m_slots = ctx.m_slots
    transmitted = -1
    tx_instant = 0.0
    stranded: List[int] = []
    while not process.done:
        # Resolve one slot against the snapshot: distinct enabled
        # stations decide idle/success/collision, exactly like
        # StationRegistry.enabled_stations on the live backlog.
        first = -1
        first_station = -1
        collided = False
        for lo, hi in process.current_span.pieces:
            left = bisect_left(snap_t, lo)
            right = bisect_right(snap_t, hi)
            for k in range(left, right):
                if first < 0:
                    first = k
                    first_station = snap_s[k]
                elif snap_s[k] != first_station:
                    collided = True
                    break
            if collided:
                break
        if first < 0:
            now += 1.0
            idle_d += 1.0
            process.on_feedback(ChannelFeedback.IDLE)
        elif collided:
            now += 1.0
            collision_d += 1.0
            process.on_feedback(ChannelFeedback.COLLISION)
        else:
            # Single enabled station: it transmits its oldest message
            # inside the span — the first snapshot entry, since the
            # snapshot is arrival-ordered.
            transmitted = snap_i[first]
            tx_instant = now
            if discard_deadline is None:
                # Same-station messages sharing the success span are
                # stranded: the span is resolved but they are not
                # transmitted (see stuck_i in run_fast).
                for lo, hi in process.current_span.pieces:
                    left = bisect_left(snap_t, lo)
                    right = bisect_right(snap_t, hi)
                    for k in range(left, right):
                        if k != first:
                            stranded.append(snap_i[k])
            now += m_slots
            transmission_d += m_slots
            process.on_feedback(ChannelFeedback.SUCCESS)
    controller.complete_process(process)

    on_time_d = 0
    late_d = 0
    if transmitted >= 0:
        arrival = arr_t[transmitted]
        position = bisect_left(backlog_t, arrival)
        while backlog_i[position] != transmitted:
            position += 1
        del backlog_t[position]
        del backlog_i[position]
        stuck_i = ctx.stuck_i
        for index in stranded:
            position = bisect_left(backlog_t, arr_t[index])
            while backlog_i[position] != index:
                position += 1
            del backlog_t[position]
            del backlog_i[position]
            stuck_i.append(index)
        ctx.tx_start[transmitted] = tx_instant
        ctx.process_start_of[transmitted] = process_start
        true_value = tx_instant - arrival
        paper_value = max(0.0, process_start - arrival)
        wait = true_value if ctx.true_definition else paper_value
        late = ctx.score_deadline is not None and wait > ctx.score_deadline
        fate[transmitted] = _LATE if late else _ON_TIME
        if arrival >= warmup_slots:
            if late:
                late_d += 1
            else:
                on_time_d += 1
            ctx.waits.observe(true_value, paper_value)

    return (
        now,
        idle_d,
        collision_d,
        transmission_d,
        0.0,
        on_time_d,
        late_d,
        discarded_d,
    )


def run_fast(
    sim: "WindowMACSimulator", total_time: float, warmup_slots: float
) -> "MACSimResult":
    """Run the fast kernel; same contract as ``_run_shared``."""
    from .simulator import MACSimResult, flush_result_metrics  # deferred: import cycle

    policy = sim.policy
    controller = sim.controller
    rng = sim.rng
    m_slots = sim.transmission_slots
    discard_deadline = policy.discard_deadline
    score_deadline = sim.deadline
    true_definition = sim.loss_definition == "true"

    # -- arrival generation: identical draws to _generate_arrivals ----------
    if sim.workload is not None:
        gen_times, gen_stations = sim.workload.generate(
            total_time, sim.registry.n_stations, rng
        )
    else:
        n = rng.poisson(sim.arrival_rate * total_time)
        gen_times = np.sort(rng.uniform(0.0, total_time, size=n))
        gen_stations = rng.integers(0, sim.registry.n_stations, size=n)
    arr_t: List[float] = [float(t) for t in gen_times]
    arr_s: List[int] = [int(s) for s in gen_stations]
    n_arrivals = len(arr_t)
    fate = np.zeros(n_arrivals, dtype=np.int8)
    tx_start = np.full(n_arrivals, np.nan)
    process_start_of = np.full(n_arrivals, np.nan)

    traits = kernel_traits(policy)
    entry_discard_ok = traits.entry_discard_ok

    # -- state ---------------------------------------------------------------
    now = 0.0
    idle_slots = 0.0
    collision_slots = 0.0
    transmission_slots = 0.0
    wait_slots = 0.0

    backlog_t: List[float] = []  # sorted pending arrival instants
    backlog_i: List[int] = []  # parallel array indices
    next_arrival = 0  # generation pointer
    # Messages that can never transmit again: a SUCCESS resolves the whole
    # examined span but transmits only the station's oldest in-span
    # message, so further same-station messages inside that span stay
    # pending while their arrival instants leave the unresolved set —
    # windows are carved from the unresolved set, so no future window can
    # enable them.  Without element 4 they would otherwise pin the backlog
    # non-empty forever and keep the idle fast-forward gate shut.  They
    # are moved here (fate stays PENDING, counted as unresolved at the
    # end), which changes nothing observable.  With a discard deadline
    # they stay in the backlog instead: the reference loop discards them
    # like any other aged message, and the fast path must match.
    stuck_i: List[int] = []

    n_measured = 0
    delivered_on_time = 0
    delivered_late = 0
    discarded = 0
    waits = WaitStats()

    # REPRO_CHECK_INVARIANTS: the fast kernel re-derives controller state
    # in closed form, so its guards watch exactly the quantities the
    # shortcuts touch — the jumped clock and the emptied unresolved set.
    check = invariants_enabled()
    last_now = -math.inf
    # Per-epoch instrumentation is buffered (plain appends on the hot
    # path) and flushed into the registry once at the end.  Epoch
    # histograms cover *executed* epochs only: the idle fast-forward
    # elides full-window idle examinations, which the dedicated
    # mac.fastforward.* counters account for instead.
    obs = sim.metrics
    ob = _ObsBuffers() if obs is not None else None

    ctx = _EpochContext(
        controller,
        m_slots,
        discard_deadline,
        score_deadline,
        true_definition,
        warmup_slots,
        arr_t,
        arr_s,
        backlog_t,
        backlog_i,
        stuck_i,
        fate,
        tx_start,
        process_start_of,
        waits,
        ob,
    )

    while now < total_time:
        if check:
            require(now > last_now, f"fast-path clock stalled at slot {now}")
            last_now = now
        # Ingest arrivals that have occurred.
        while next_arrival < n_arrivals and arr_t[next_arrival] <= now:
            backlog_t.append(arr_t[next_arrival])
            backlog_i.append(next_arrival)
            if arr_t[next_arrival] >= warmup_slots:
                n_measured += 1
            next_arrival += 1

        # -- idle-period fast-forward ---------------------------------------
        if not backlog_t and entry_discard_ok:
            upcoming = (
                arr_t[next_arrival] if next_arrival < n_arrivals else math.inf
            )
            skipped = _try_fast_forward(
                controller, policy, traits, now, upcoming, total_time, check
            )
            if skipped:
                idle_slots += skipped
                now += skipped
                if ob is not None:
                    ob.ff_skips.append(skipped)
                continue

        # -- reference epoch (same call sequence as the slow path) -----------
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(backlog_t))
        (
            now,
            idle_d,
            collision_d,
            transmission_d,
            wait_d,
            on_time_d,
            late_d,
            discarded_d,
        ) = _execute_epoch(ctx, now)
        idle_slots += idle_d
        collision_slots += collision_d
        transmission_slots += transmission_d
        wait_slots += wait_d
        delivered_on_time += on_time_d
        delivered_late += late_d
        discarded += discarded_d

    unresolved_count = sum(
        1 for index in backlog_i if arr_t[index] >= warmup_slots
    ) + sum(1 for index in stuck_i if arr_t[index] >= warmup_slots)
    if check:
        accounted = (
            delivered_on_time + delivered_late + discarded + unresolved_count
        )
        require(
            accounted == n_measured,
            f"message conservation violated (fast path): {n_measured} "
            f"measured arrivals but {accounted} accounted for",
        )

    # Materialise Message records for the measured interval so callers of
    # scored_messages see the same view as the slow path.
    scored: List[Message] = []
    for index in range(n_arrivals):
        arrival = arr_t[index]
        if arrival < warmup_slots:
            continue
        message = Message(arrival=arrival, station=arr_s[index], uid=index)
        message.fate = _FATE_OF_CODE[int(fate[index])]
        if not math.isnan(tx_start[index]):
            message.tx_start = float(tx_start[index])
            message.process_start = float(process_start_of[index])
        scored.append(message)
    sim.scored_messages = scored

    stats = ChannelStats(
        idle_slots=idle_slots,
        collision_slots=collision_slots,
        transmission_slots=transmission_slots,
        wait_slots=wait_slots,
    )
    sim.channel.now = now
    sim.channel.stats = stats
    result = MACSimResult(
        arrivals=n_measured,
        delivered_on_time=delivered_on_time,
        delivered_late=delivered_late,
        discarded=discarded,
        unresolved=unresolved_count,
        mean_true_wait=waits.mean_true,
        mean_paper_wait=waits.mean_paper,
        channel=stats,
        deadline=score_deadline,
    )
    if obs is not None:
        ob.flush(obs)
        flush_result_metrics(obs, result)
    return result

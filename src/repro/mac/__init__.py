"""Multiple-access channel substrate.

Slot-level simulation of the broadcast channel: messages, stations, the
ternary-feedback slotted channel, and the full window-MAC simulator that
produces Figure 7's simulation points.  Slotted-ALOHA and TDMA baselines
(not part of the paper's evaluation) live here as extensions.
"""

from .aloha import AlohaResult, SlottedAlohaSimulator
from .channel import ChannelStats, SlottedChannel
from .des_simulator import DESWindowMACSimulator
from .messages import Message, MessageFate
from .simulator import MACSimResult, WindowMACSimulator
from .station import Station, StationRegistry
from .tdma import TDMAResult, TDMASimulator, tdma_loss_probability

__all__ = [
    "Message",
    "MessageFate",
    "Station",
    "StationRegistry",
    "SlottedChannel",
    "ChannelStats",
    "WindowMACSimulator",
    "DESWindowMACSimulator",
    "MACSimResult",
    "SlottedAlohaSimulator",
    "AlohaResult",
    "TDMASimulator",
    "TDMAResult",
    "tdma_loss_probability",
]

"""Stations of the multiple-access network.

The protocol is fully distributed: every station runs the identical
controller, so the only per-station state the simulator needs is each
station's *local* message queue — a station with one or more messages in
the enabled window transmits exactly one of them (its oldest enabled
message), and a collision occurs iff two or more *distinct* stations are
enabled simultaneously.

:class:`StationRegistry` provides that view efficiently on top of the
simulator's global arrival-ordered backlog.  Per-station state is
struct-of-arrays and *lazy*: the paper's protocol needs nothing per
station beyond its id (arrivals carry the station index), so a registry
costs O(1) to build regardless of the population — ``n_stations`` of
10⁵–10⁶, as the compiled-backend scaling arms use, allocates nothing.
Only the §5 priority extension materialises per-station data: the first
:meth:`~StationRegistry.set_window_scale` call allocates one float64
scale column for the whole population (a single linear preallocation,
never per-station Python objects).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.timeline import Span
from ..resilience.invariants import require
from .messages import Message

__all__ = ["Station", "StationRegistry"]


@dataclass
class Station:
    """One network station.

    Attributes
    ----------
    station_id:
        Identifier (0-based).
    window_scale:
        Per-station window scale factor for the §5 priority extension: a
        station only enables itself for windows whose young edge is at
        least ``(1 − window_scale)`` of the window behind the frontier…
        kept at 1.0 (always enabled) for the paper's protocol.
    """

    station_id: int
    window_scale: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.window_scale <= 1.0:
            raise ValueError(
                f"window scale must be in (0, 1], got {self.window_scale}"
            )


class _StationView(Sequence):
    """Read-only sequence view materialising :class:`Station` on demand.

    Keeps the historical ``registry.stations[i].window_scale`` access
    pattern working without the registry ever holding a list of
    ``n_stations`` Python objects.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: "StationRegistry"):
        self._registry = registry

    def __len__(self) -> int:
        return self._registry.n_stations

    def __getitem__(self, index):
        n = self._registry.n_stations
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"station {index} out of range ({n} stations)")
        return Station(index, window_scale=self._registry.window_scale(index))


class StationRegistry:
    """Global backlog indexed for window queries.

    Maintains the network-wide list of pending messages sorted by
    arrival time and answers the channel's question: *which stations are
    enabled by this span, and which message would each transmit?*
    """

    def __init__(self, n_stations: int):
        if n_stations < 1:
            raise ValueError(f"need at least one station, got {n_stations}")
        self._n_stations = int(n_stations)
        # §5 scale column, allocated on first set_window_scale only.
        # None ⇔ every station at the default scale 1.0.
        self._scales: Optional[np.ndarray] = None
        self._arrivals: List[float] = []  # sorted arrival instants
        self._messages: List[Message] = []  # parallel to _arrivals
        self._n_scaled = 0  # stations with window_scale < 1 (kept in sync)

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def n_stations(self) -> int:
        """Number of stations in the network."""
        return self._n_stations

    @property
    def stations(self) -> _StationView:
        """Sequence view of the stations (materialised on access)."""
        return _StationView(self)

    def window_scale(self, station_id: int) -> float:
        """The §5 window scale of one station (1.0 unless set)."""
        if self._scales is None:
            return 1.0
        return float(self._scales[station_id])

    def check_invariants(self) -> None:
        """Registry structural invariants (REPRO_CHECK_INVARIANTS runs).

        Guards the lazy struct-of-arrays bookkeeping: the backlog
        columns stay parallel, the scale column is either absent or
        exactly population-sized (a shape mismatch would mean the
        preallocation was not the single linear allocation it claims to
        be), and the scaled-station counter matches the column.
        """
        require(
            len(self._arrivals) == len(self._messages),
            "station backlog columns out of sync: "
            f"{len(self._arrivals)} arrivals vs {len(self._messages)} messages",
        )
        if self._scales is None:
            require(
                self._n_scaled == 0,
                f"{self._n_scaled} scaled stations recorded without a scale column",
            )
        else:
            require(
                len(self._scales) == self._n_stations,
                f"scale column has {len(self._scales)} entries "
                f"for {self._n_stations} stations",
            )
            actual = int(np.count_nonzero(self._scales < 1.0))
            require(
                self._n_scaled == actual,
                f"scaled-station counter {self._n_scaled} != column count {actual}",
            )

    # -- backlog maintenance ---------------------------------------------------

    def ingest(self, message: Message) -> None:
        """Add a pending message (arrivals must be ingested in time order)."""
        if self._arrivals and message.arrival < self._arrivals[-1]:
            raise ValueError("messages must be ingested in arrival order")
        self._arrivals.append(message.arrival)
        self._messages.append(message)

    def remove(self, message: Message) -> None:
        """Remove a message (after delivery)."""
        index = bisect.bisect_left(self._arrivals, message.arrival)
        while index < len(self._messages) and self._messages[index] is not message:
            index += 1
        if index >= len(self._messages):
            raise ValueError(f"message {message.uid} not in backlog")
        del self._arrivals[index]
        del self._messages[index]

    def drop_station(self, station_id: int) -> List[Message]:
        """Remove and return every pending message of one station.

        Used by the fault layer when a station crashes and loses its
        backlog.  Linear in the backlog size, which is fine for the rare
        crash events it models.
        """
        dropped = [m for m in self._messages if m.station == station_id]
        if dropped:
            kept = [
                (a, m)
                for a, m in zip(self._arrivals, self._messages)
                if m.station != station_id
            ]
            self._arrivals = [a for a, _ in kept]
            self._messages = [m for _, m in kept]
        return dropped

    def drop_older_than(self, horizon: float) -> List[Message]:
        """Remove and return all messages with arrival < ``horizon``."""
        cut = bisect.bisect_left(self._arrivals, horizon)
        dropped = self._messages[:cut]
        del self._arrivals[:cut]
        del self._messages[:cut]
        return dropped

    # -- window queries -----------------------------------------------------------

    def messages_in_span(self, span: Span) -> List[Message]:
        """All pending messages whose arrival lies in the span."""
        found: List[Message] = []
        for lo, hi in span.pieces:
            left = bisect.bisect_left(self._arrivals, lo)
            right = bisect.bisect_right(self._arrivals, hi)
            found.extend(self._messages[left:right])
        return found

    def enabled_stations(self, span: Span) -> Dict[int, Message]:
        """Map of enabled station id → the message it would transmit.

        A station transmits its oldest message inside the span.
        """
        enabled: Dict[int, Message] = {}
        for message in self.messages_in_span(span):
            incumbent = enabled.get(message.station)
            if incumbent is None or message.arrival < incumbent.arrival:
                enabled[message.station] = message
        return enabled

    @property
    def has_scaled_stations(self) -> bool:
        """Whether any station uses a priority window scale below 1.

        Maintained as a counter by :meth:`set_window_scale` — the
        simulator consults this once per decision epoch, so a scan of
        the station list here would dominate low-load runs.
        """
        return self._n_scaled > 0

    def eligible_for_window(self, initial_window: Span) -> Dict[int, Message]:
        """Per-process eligibility under the §5 priority extension.

        A station with ``window_scale < 1`` participates in a windowing
        process only with messages inside the *oldest* ``scale × measure``
        prefix of the initial window — it behaves as if its own initial
        window were shorter, so full-scale stations reach the channel
        first with fresh traffic.  The decision is made once per process
        (at the initial window), keeping the splitting logic's
        known-occupancy inferences consistent.
        """
        prefix_cache: Dict[float, Span] = {}
        eligible: Dict[int, Message] = {}
        for message in self.messages_in_span(initial_window):
            scale = self.window_scale(message.station)
            if scale < 1.0:
                prefix = prefix_cache.get(scale)
                if prefix is None:
                    prefix, _ = initial_window.split_at_measure(
                        scale * initial_window.measure
                    )
                    prefix_cache[scale] = prefix
                if not prefix.contains(message.arrival):
                    continue
            incumbent = eligible.get(message.station)
            if incumbent is None or message.arrival < incumbent.arrival:
                eligible[message.station] = message
        return eligible

    def set_window_scale(self, station_id: int, scale: float) -> None:
        """Set a station's priority window scale (§5 extension).

        First call allocates the scale column — one linear float64
        preallocation for the whole population.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"window scale must be in (0, 1], got {scale}")
        if not 0 <= station_id < self._n_stations:
            raise IndexError(
                f"station {station_id} out of range ({self._n_stations} stations)"
            )
        if self._scales is None:
            self._scales = np.ones(self._n_stations, dtype=np.float64)
        was_scaled = bool(self._scales[station_id] < 1.0)
        self._scales[station_id] = scale
        self._n_scaled += (scale < 1.0) - was_scaled

    def oldest_pending(self) -> Optional[Message]:
        """The oldest message still pending, if any."""
        return self._messages[0] if self._messages else None

"""Lane-parallel batched replication kernel.

Every headline experiment runs the *same arm* over many independent
seeds.  The fast kernel (:mod:`repro.mac.fastpath`) already removed the
per-slot interpreter ceiling; this module removes the per-*replication*
ceiling by advancing ``R`` independent runs in lockstep rounds — one
**lane** per replication — so per-run setup and the uncommon slow paths
are amortised across the whole cohort.  NumPy carries the *long* axes
(arrival generation, the steady-state sprint tables — thousands of
elements per lane), while the R-wide per-round hot state lives in plain
Python floats: at cohort widths of 16–64 a scalar attribute update is
~10x cheaper than a NumPy per-op dispatch, so the struct-of-arrays form
is kept exactly where vector width pays and nowhere else.

How a lane runs
---------------
A lane is in one of two modes:

**VEC** — the lane's unresolved pseudo-time set is *empty*, so its
controller state is fully described by one scalar (the frontier F).
Everything the reference kernel would do from that state has a provable
closed form that consumes **zero RNG draws**:

* the idle fast-forward jump (same arithmetic as the sequential
  kernel's, applied to every eligible VEC lane each round);
* a decision epoch whose initial window covers the whole unresolved
  span ``[max(F, now−K), now)`` — the window then admits the lane's
  in-window backlog verbatim (no placement slack, so even RANDOM draws
  nothing), and a 0- or 1-message backlog resolves in a single idle or
  success examination whose state/score updates are explicit.

**GEN** — any other situation (≥2 in-window messages, a window shorter
than the span, an exotic length rule).  The lane materialises a real
:class:`~repro.core.controller.ProtocolController` at ``(∅, F)`` —
exactly the sequential kernel's state at that point — and executes
:func:`repro.mac.fastpath._execute_epoch`, literally the same epoch
code the sequential kernel runs, with the lane's own RNG.  When the
controller's unresolved set empties again the lane snaps back to VEC.

Because the VEC closed forms replicate the sequential kernel's float
arithmetic operation for operation (clamp = ``max``, measure = one
subtraction, the same Welford mean update per event) and consume no
randomness, and GEN epochs *are* the sequential kernel's code, each
lane's :class:`~repro.mac.simulator.MACSimResult` is **bit-identical**
to running :func:`repro.experiments.sweep.run_spec` on its spec alone.
The parity suite in ``tests/mac/test_batch.py`` pins this across all
four protocol disciplines.

Eligibility and fallback
------------------------
:func:`batch_eligible` mirrors :func:`~repro.mac.fastpath.fast_path_available`:
fault models need the replica machinery, ``stream_seed`` runs draw from
a different stream family, and invariant-checking runs stay on the
reference path whose guards are calibrated for it.  Ineligible specs
are executed transparently through the ordinary per-run path, so
``run_batch`` accepts *any* spec list.

Lanes may be heterogeneous (different arms, horizons, deadlines): each
lane carries its own arm scalars, and a lane past its own horizon
simply drops out of the round's live list — ragged lifetimes cost
nothing.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from ..core.controller import ProtocolController
from ..core.timeline import IntervalSet
from ..obs.metrics import MetricsRegistry
from ..resilience.invariants import invariants_enabled
from .channel import ChannelStats
from .fastpath import (
    _DISCARDED,
    _LATE,
    _ON_TIME,
    _EpochContext,
    _ObsBuffers,
    _execute_epoch,
    _try_fast_forward,
    kernel_traits,
)
from .simulator import MACSimResult, flush_result_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.sweep import MACRunSpec

__all__ = ["batch_eligible", "run_batch", "run_batch_with_metrics"]

_EPS = 1e-12


def batch_eligible(spec: "MACRunSpec") -> bool:
    """Whether the batched kernel reproduces ``spec`` bit-for-bit.

    The gate parallels :func:`~repro.mac.fastpath.fast_path_available`
    plus the batch-specific exclusions:

    * ``fast=False`` — the caller asked for the reference loop;
    * a fault model — needs the per-station replica machinery;
    * ``stream_seed`` — RandomStreams runs draw from named substreams,
      not the single-generator construction the lanes replicate;
    * invariant mode — chaos runs keep the reference kernel whose
      guards watch the quantities its own shortcuts touch;
    * a sub-slot discard deadline — the closed-form clamp and
      ``IntervalSet.clamp_before``'s epsilon diverge below ~1e-9.
    """
    return (
        spec.fast
        and spec.fault_model is None
        and spec.stream_seed is None
        and spec.loss_definition in ("true", "paper")
        and (
            spec.policy.discard_deadline is None
            or spec.policy.discard_deadline > 1e-6
        )
        and not invariants_enabled()
    )


class _LaneWaits:
    """Per-lane adapter giving GEN epochs the lane's Welford state.

    Same arithmetic as :class:`~repro.mac.fastpath.WaitStats.observe`,
    applied to this lane's accumulators — so a lane that mixes VEC
    (closed-form update) and GEN (this adapter) epochs still produces
    one uninterrupted Welford stream.
    """

    __slots__ = ("lane",)

    def __init__(self, lane: "_Lane"):
        self.lane = lane

    def observe(self, true_value: float, paper_value: float) -> None:
        lane = self.lane
        count = lane.wcount + 1
        lane.wcount = count
        delta = true_value - lane.wtrue
        lane.wtrue += delta / count
        delta = paper_value - lane.wpaper
        lane.wpaper += delta / count


class _Lane:
    """One replication: its spec-derived scalars, backlog, RNG, and the
    per-lane hot state the round loop reads (plain Python floats/ints —
    see the module docstring for why these are not NumPy cells)."""

    __slots__ = (
        "spec_index",
        "policy",
        "traits",
        "controller",
        "m_slots",
        "m_f",
        "discard_deadline",
        "k_f",
        "score_deadline",
        "sdl_f",
        "warmup",
        "arr_t",
        "arr_s",
        "n_arrivals",
        "total_time",
        "ceil_t",
        "true_t",
        "iso",
        "backlog_t",
        "backlog_i",
        "stuck_i",
        "ob",
        "registry",
        "ctx",
        # hot per-round state (was the struct-of-arrays cells)
        "now",
        "frontier",
        "idle",
        "coll",
        "tx",
        "wait",
        "upcoming",
        "const",
        "covers",
        "steady",
        "entry_ok",
        "vec",
        "wcount",
        "wtrue",
        "wpaper",
        "on_time",
        "late",
        "disc",
        "n_meas",
        "ptr",
    )

    def __init__(self, spec_index: int, spec, instrumented: bool):
        self.spec_index = spec_index
        policy = spec.policy
        self.policy = policy
        traits = kernel_traits(policy)
        self.traits = traits
        self.m_slots = spec.transmission_slots
        self.m_f = float(spec.transmission_slots)
        self.discard_deadline = policy.discard_deadline
        self.k_f = (
            float(policy.discard_deadline)
            if policy.discard_deadline is not None
            else math.inf
        )
        self.score_deadline = spec.deadline
        self.sdl_f = float(spec.deadline) if spec.deadline is not None else math.inf
        self.warmup = float(spec.warmup)

        # Identical construction to WindowMACSimulator: one generator
        # from the plain seed (batch_eligible excludes stream_seed runs)
        # driving arrivals and the controller in the same draw order.
        rng = np.random.default_rng(spec.seed)
        self.controller = ProtocolController(policy, rng=rng)

        # run() semantics: simulate warmup + horizon slots, score the
        # horizon part (MACRunSpec.horizon is the scored extent).
        total_time = float(spec.warmup) + float(spec.horizon)
        if spec.workload is not None:
            gen_times, gen_stations = spec.workload.generate(
                total_time, spec.n_stations, rng
            )
        else:
            n = rng.poisson(spec.arrival_rate * total_time)
            gen_times = np.sort(rng.uniform(0.0, total_time, size=n))
            gen_stations = rng.integers(0, spec.n_stations, size=n)
        self.arr_t = [float(t) for t in gen_times]
        self.arr_s = [int(s) for s in gen_stations]
        self.n_arrivals = len(self.arr_t)
        self.total_time = total_time
        self.backlog_t: List[float] = []
        self.backlog_i: List[int] = []
        self.stuck_i: List[int] = []
        self._prepare_sprint(total_time, traits)

        self.registry = MetricsRegistry() if instrumented else None
        self.ob = _ObsBuffers() if instrumented else None
        fate = np.zeros(self.n_arrivals, dtype=np.int8)
        tx_start = np.full(self.n_arrivals, np.nan)
        process_start_of = np.full(self.n_arrivals, np.nan)
        self.ctx = _EpochContext(
            self.controller,
            self.m_slots,
            self.discard_deadline,
            self.score_deadline,
            spec.loss_definition == "true",
            self.warmup,
            self.arr_t,
            self.arr_s,
            self.backlog_t,
            self.backlog_i,
            self.stuck_i,
            fate,
            tx_start,
            process_start_of,
            _LaneWaits(self),
            self.ob,
        )

        # Seed the hot state.
        self.now = 0.0
        self.frontier = 0.0
        self.idle = 0.0
        self.coll = 0.0
        self.tx = 0.0
        self.wait = 0.0
        self.upcoming = self.arr_t[0] if self.arr_t else math.inf
        self.const = traits.const_length
        self.covers = traits.covers_backlog
        self.steady = traits.steady_skippable
        self.entry_ok = traits.entry_discard_ok
        # Lanes whose length rule has no closed form drive the real
        # controller from slot zero (its fresh state is already (∅, 0)).
        self.vec = traits.closed_form
        self.wcount = 0
        self.wtrue = 0.0
        self.wpaper = 0.0
        self.on_time = 0
        self.late = 0
        self.disc = 0
        self.n_meas = 0
        self.ptr = 0

    # -- steady-state sprint -------------------------------------------------

    def _prepare_sprint(self, total_time: float, traits) -> None:
        """Precompute the arrival-axis tables the sprint loop walks.

        In the happy steady state every event is *jump to the next
        arrival, deliver it on one slot*.  With an integer transmission
        length the clock only ever advances by integers, and for an
        integer-valued float ``prev`` with ``0 <= prev <= u`` the
        subtraction ``u - prev`` is exact (the difference's bits span at
        most 53 positions), so the kernel's ``prev + ceil(u - prev)``
        equals ``ceil(u)`` *bitwise* — the jump recurrence decouples and
        every landing instant, wait value, and isolation predicate can
        be precomputed on the arrival axis in one NumPy pass.  Arrival
        ``p`` is *isolated* when the lane was ready before it
        (``u_p > ceil(u_{p-1}) + m``), it is alone in its landing slot
        (``u_{p+1} > ceil(u_p)``), and the landing is inside the
        horizon.  The window checks reduce to per-lane constants: the
        pre-jump span is ``min(m, K)`` and the landing span exactly
        ``1.0`` (the clamp ``max(c-1, c-K)`` returns the representable
        bound ``c-1`` for any ``K >= 1``), so coverability folds into
        the one-time gate below.  Lanes with fractional transmission
        lengths or awkward sub-``m`` fractional deadlines simply skip
        the sprint and stay on the phased rounds.
        """
        m_f = float(self.m_slots)
        kk = self.discard_deadline
        axis = (
            traits.closed_form
            and traits.steady_skippable
            and traits.entry_discard_ok
            and self.n_arrivals > 0
            and m_f.is_integer()
            and (
                kk is None
                or kk >= m_f
                or (kk >= 1.0 and float(kk).is_integer())
            )
        )
        if axis:
            meas_jump = m_f if (kk is None or kk >= m_f) else float(kk)
            covers = traits.covers_backlog
            const = traits.const_length
            axis = (covers or (const is not None and const >= meas_jump)) and (
                covers or (const is not None and const >= 1.0)
            )
        if not axis:
            self.ceil_t = None
            self.true_t = None
            self.iso = None
            return
        arr = np.asarray(self.arr_t, dtype=np.float64)
        c = np.ceil(arr)
        self.ceil_t = c.tolist()
        self.true_t = (c - arr).tolist()
        n = self.n_arrivals
        iso = np.empty(n, dtype=bool)
        iso[0] = False  # the run's first event is validated dynamically
        if n > 1:
            iso[1:] = arr[1:] > c[:-1] + m_f  # lane ready before arrival
            iso[:-1] &= arr[1:] > c[:-1]  # alone in its landing slot
        iso &= c < total_time  # landing inside the horizon
        self.iso = iso.tolist()

    def sprint(self) -> None:
        """Drain this lane's run of isolated arrivals in pure Python.

        The caller (:meth:`advance_round`) has already established the
        jump preconditions — VEC mode, empty backlog, positive-measure
        coverable window — so this validates only the parts of the
        first jump+success pair the precomputed tables cannot know
        (any failed condition defers the lane, untouched, to the
        phased round), then walks the precomputed isolation mask:
        per event only the Welford updates are inherently sequential,
        and plain float arithmetic on ~16-wide problems beats NumPy's
        per-op dispatch by a wide margin.  Every accumulator update is
        an exact integer-valued float sum, so batching them locally and
        storing once is bit-identical to the per-event stores.
        """
        iso = self.iso
        if iso is None:
            return
        arrl = self.arr_t
        n = self.n_arrivals
        p = self.ptr
        if p >= n:
            return
        now = self.now
        u = arrl[p]
        if u <= now:
            return  # due arrival: the phased ingest must run first
        tot = self.total_time
        kf = self.k_f
        covers = self.covers
        const = self.const
        stop = u if u < tot else tot
        sk0 = math.ceil(stop - now)
        new_now = now + sk0
        if new_now >= tot:
            return  # dying jump: the phased round applies it
        nxt = arrl[p + 1] if p + 1 < n else math.inf
        if nxt <= new_now:
            return  # arrival cluster at the landing slot
        new_fr = new_now - 1.0
        lo2 = max(new_fr, new_now - kf)
        meas2 = new_now - lo2
        if not (
            meas2 > _EPS
            and (covers or (const is not None and const >= meas2))
            and u >= lo2
        ):
            return
        warmup = self.warmup
        sdl_f = self.sdl_f
        m = self.m_f
        cl = self.ceil_t
        tl = self.true_t
        ob = self.ob
        wc = self.wcount
        wt = self.wtrue
        wp = self.wpaper
        ot = 0
        lt = 0
        nm = 0
        idle_acc = 0.0
        tx_acc = 0.0
        # The entry event (dynamic state; new_now == ceil(u) by the
        # decoupling argument, keeping the iso mask's premises true).
        idle_acc += sk0
        tv = new_now - u
        # tx and process start coincide at the epoch instant and
        # tv >= 0, so both loss definitions observe the same value.
        if u >= warmup:
            wc += 1
            d = tv - wt
            wt += d / wc
            d = tv - wp
            wp += d / wc
            if tv > sdl_f:
                lt += 1
            else:
                ot += 1
            nm += 1
        tx_acc += m
        if ob is not None:
            ob.ff_skips.append(sk0)
            ob.epochs += 1
            ob.backlog_sizes.append(1)
            ob.window_sizes.append(meas2)
        last_fr = new_now
        prev_now = new_now + m
        p += 1
        if ob is None:
            # The tight loop, with the instrumentation branch hoisted
            # out entirely — this is where batched runs spend their time.
            while p < n and iso[p]:
                u = arrl[p]
                c = cl[p]
                idle_acc += c - prev_now
                tv = tl[p]
                if u >= warmup:
                    wc += 1
                    d = tv - wt
                    wt += d / wc
                    d = tv - wp
                    wp += d / wc
                    if tv > sdl_f:
                        lt += 1
                    else:
                        ot += 1
                    nm += 1
                tx_acc += m
                last_fr = c
                prev_now = c + m
                p += 1
        else:
            while p < n and iso[p]:
                u = arrl[p]
                c = cl[p]
                skf = c - prev_now
                idle_acc += skf
                tv = tl[p]
                if u >= warmup:
                    wc += 1
                    d = tv - wt
                    wt += d / wc
                    d = tv - wp
                    wp += d / wc
                    if tv > sdl_f:
                        lt += 1
                    else:
                        ot += 1
                    nm += 1
                tx_acc += m
                ob.ff_skips.append(int(skf))
                ob.epochs += 1
                ob.backlog_sizes.append(1)
                ob.window_sizes.append(1.0)
                last_fr = c
                prev_now = c + m
                p += 1
        self.now = prev_now
        self.frontier = last_fr
        self.ptr = p
        self.upcoming = arrl[p] if p < n else math.inf
        self.idle += idle_acc
        self.tx += tx_acc
        self.wcount = wc
        self.wtrue = wt
        self.wpaper = wp
        if ot:
            self.on_time += ot
        if lt:
            self.late += lt
        if nm:
            self.n_meas += nm

    # -- scalar helpers (the uncommon paths) --------------------------------

    def ingest(self, now_f: float) -> None:
        arr_t = self.arr_t
        n = self.n_arrivals
        p = self.ptr
        backlog_t = self.backlog_t
        backlog_i = self.backlog_i
        warmup = self.warmup
        measured = 0
        while p < n and arr_t[p] <= now_f:
            t = arr_t[p]
            backlog_t.append(t)
            backlog_i.append(p)
            if t >= warmup:
                measured += 1
            p += 1
        self.ptr = p
        if measured:
            self.n_meas += measured
        self.upcoming = arr_t[p] if p < n else math.inf

    def _cut(self, now_f: float) -> None:
        """Element-4 discard of over-age backlog (same as _execute_epoch)."""
        deadline = self.discard_deadline
        if deadline is None:
            return
        backlog_t = self.backlog_t
        cut = bisect_left(backlog_t, now_f - deadline)
        if cut:
            backlog_i = self.backlog_i
            arr_t = self.arr_t
            warmup = self.warmup
            fate = self.ctx.fate
            dropped = 0
            for index in backlog_i[:cut]:
                fate[index] = _DISCARDED
                if arr_t[index] >= warmup:
                    dropped += 1
            if dropped:
                self.disc += dropped
            del backlog_t[:cut]
            del backlog_i[:cut]

    def _materialize(self, frontier: float) -> None:
        """Rebuild the real controller at the lane's VEC state (∅, F)."""
        controller = self.controller
        controller.unresolved = IntervalSet()
        controller.frontier = frontier
        self.vec = False

    def _gen_epoch(self, now_f: float) -> None:
        """One reference epoch on the real controller (shared code)."""
        (
            now2,
            idle_d,
            coll_d,
            tx_d,
            wait_d,
            on_time_d,
            late_d,
            discarded_d,
        ) = _execute_epoch(self.ctx, now_f)
        self.idle += idle_d
        self.coll += coll_d
        self.tx += tx_d
        self.wait += wait_d
        self.now = now2
        if on_time_d:
            self.on_time += on_time_d
        if late_d:
            self.late += late_d
        if discarded_d:
            self.disc += discarded_d
        controller = self.controller
        if self.traits.closed_form and controller.unresolved.is_empty():
            self.vec = True
            self.frontier = controller.frontier

    def vec_epoch(self, now_f: float) -> None:
        """One decision epoch from the closed-form state (∅, F).

        Replicates the reference epoch's float arithmetic exactly:
        the clamp is ``max``, the measure one subtraction (the same op
        ``IntervalSet.measure`` performs on a single interval), and a
        whole-window selection returns the interval verbatim with no
        RNG draw for any position rule.
        """
        frontier = self.frontier
        deadline = self.discard_deadline
        if deadline is None:
            lo = frontier
        else:
            horizon = now_f - deadline
            lo = horizon if frontier < horizon else frontier
        meas = now_f - lo
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(self.backlog_t))
        if meas <= _EPS:
            # begin_process would return None (measure zero ⇔ now == F,
            # so advance_time was a no-op and the set stays empty); the
            # element-4 cut still runs before the None branch.
            self._cut(now_f)
            self.wait += 1.0
            self.now = now_f + 1.0
            return
        if not (
            self.covers or (self.const is not None and self.const >= meas)
        ):
            # Window shorter than the span: the real split machinery.
            self._materialize(frontier)
            self._gen_epoch(now_f)
            return
        # The window is the whole span [lo, now); membership is t >= lo.
        # The cut removes t < now−K ≤ lo only, so the in-window count is
        # cut-invariant and can gate the closed form before any mutation.
        backlog_t = self.backlog_t
        n_in = len(backlog_t) - bisect_left(backlog_t, lo)
        if n_in >= 2:
            self._materialize(frontier)
            self._gen_epoch(now_f)
            return
        self._cut(now_f)
        if ob is not None:
            ob.window_sizes.append(meas)
        if n_in == 0:
            # One full-window idle examination resolves everything.
            self.idle += 1.0
            self.frontier = now_f
            self.now = now_f + 1.0
            return
        # Exactly one in-window message: SUCCESS on the first slot.
        backlog_i = self.backlog_i
        pos = len(backlog_t) - 1  # in-window ⇒ newest of the sorted backlog
        index = backlog_i[pos]
        t0 = backlog_t[pos]
        del backlog_t[pos]
        del backlog_i[pos]
        m = self.m_slots
        self.tx += m
        self.frontier = now_f
        self.now = now_f + m
        ctx = self.ctx
        true_value = now_f - t0
        paper_value = max(0.0, now_f - t0)
        wait = true_value if ctx.true_definition else paper_value
        sdl = self.score_deadline
        late = sdl is not None and wait > sdl
        ctx.fate[index] = _LATE if late else _ON_TIME
        ctx.tx_start[index] = now_f
        ctx.process_start_of[index] = now_f
        if t0 >= self.warmup:
            if late:
                self.late += 1
            else:
                self.on_time += 1
            ctx.waits.observe(true_value, paper_value)

    def gen_step(self, now_f: float) -> None:
        """One post-ingest iteration on the real controller."""
        traits = self.traits
        if not self.backlog_t and traits.entry_discard_ok:
            skipped = _try_fast_forward(
                self.controller,
                self.policy,
                traits,
                now_f,
                self.upcoming,
                self.total_time,
                False,
            )
            if skipped:
                self.idle += skipped
                self.now = now_f + skipped
                self.frontier = self.controller.frontier
                self.vec = traits.closed_form
                if self.ob is not None:
                    self.ob.ff_skips.append(skipped)
                return
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(len(self.backlog_t))
        self._gen_epoch(now_f)

    def succ_epoch(self, now_f: float, meas: float) -> None:
        """Single-message SUCCESS epoch, the steady state of the rounds.

        Same arithmetic as :meth:`vec_epoch`'s one-in-window branch with
        the preconditions (VEC, backlog of exactly one in-window
        message, full-cover window, head not over-age so the element-4
        cut is a no-op) already established by the caller.  The fate /
        tx-start buffers are not written here: they are diagnostic
        arrays that no scored quantity reads back, exactly as in the
        reference kernel's own fast-forward shortcuts.
        """
        backlog_t = self.backlog_t
        t0 = backlog_t[0]
        true_value = now_f - t0
        m = self.m_f
        self.tx += m
        self.frontier = now_f
        self.now = now_f + m
        if t0 >= self.warmup:
            wc = self.wcount + 1
            self.wcount = wc
            delta = true_value - self.wtrue
            self.wtrue += delta / wc
            paper_value = max(0.0, true_value)
            delta = paper_value - self.wpaper
            self.wpaper += delta / wc
            if true_value > self.sdl_f:
                self.late += 1
            else:
                self.on_time += 1
        backlog_t.clear()
        self.backlog_i.clear()
        ob = self.ob
        if ob is not None:
            ob.epochs += 1
            ob.backlog_sizes.append(1)
            ob.window_sizes.append(meas)

    def step(self) -> None:
        now_f = self.now
        if self.vec:
            self.vec_epoch(now_f)
        else:
            self.gen_step(now_f)

    def advance_round(self) -> bool:
        """One fused round of this lane; returns whether it stays live.

        Executes, in order: ingest of due arrivals; a steady-state
        sprint when eligible (zero or more jump+success events drained,
        see :meth:`sprint`); the idle fast-forward jump; a second ingest
        if the jump landed on an arrival; then one decision epoch (the
        inlined single-success form when its preconditions hold, else
        the general dispatch).  That is one or more iterations of the
        sequential kernel's loop — batching only reschedules work
        across lanes, never reorders a lane's own event sequence.
        """
        now = self.now
        tot = self.total_time
        if self.upcoming <= now:
            self.ingest(now)

        # -- steady-state sprint + idle fast-forward jump ----------------
        if self.vec and not self.backlog_t and self.entry_ok:
            lo = max(self.frontier, now - self.k_f)
            meas = now - lo
            jump = meas > _EPS and (
                self.covers or (self.const is not None and self.const >= meas)
            )
            if jump and self.steady:
                self.sprint()
                now = self.now
                if now >= tot:
                    return False
                # Sprint exits may have landed on (or past) due arrivals.
                if self.upcoming <= now:
                    self.ingest(now)
                if self.vec and not self.backlog_t and self.entry_ok:
                    lo = max(self.frontier, now - self.k_f)
                    meas = now - lo
                    jump = meas > _EPS and (
                        self.covers
                        or (self.const is not None and self.const >= meas)
                    )
                else:
                    jump = False
            if jump:
                # Closed form of _try_fast_forward: clamp, measure,
                # full-window test, ceil to the next arrival — identical
                # arithmetic, no controller objects touched.
                stop = min(self.upcoming, tot)
                skipped = math.ceil(stop - now) if self.steady else 1.0
                new_now = now + skipped
                self.idle += skipped
                self.frontier = new_now - 1.0
                self.now = new_now
                if self.ob is not None:
                    self.ob.ff_skips.append(int(skipped))
                now = new_now
                # A jump lands at (or past) the next arrival: ingest it
                # and fall through to this round's epoch, fusing the two
                # sequential iterations into one pass.
                if now < tot and self.upcoming <= now:
                    self.ingest(now)

        # -- decision epoch ----------------------------------------------
        if now >= tot:
            return False
        # Inlined single-message SUCCESS epoch: VEC lane, backlog of
        # exactly one in-window message, full-cover window.  This is the
        # steady state at the paper's operating points.
        backlog_t = self.backlog_t
        if self.vec and len(backlog_t) == 1:
            lo = max(self.frontier, now - self.k_f)
            meas = now - lo
            if (
                meas > _EPS
                and (self.covers or (self.const is not None and self.const >= meas))
                and backlog_t[0] >= lo
            ):
                self.succ_epoch(now, meas)
                return self.now < tot
        self.step()
        return self.now < tot

    def finalize(self) -> MACSimResult:
        arr_t = self.arr_t
        warmup = self.warmup
        unresolved_count = sum(
            1 for index in self.backlog_i if arr_t[index] >= warmup
        ) + sum(1 for index in self.stuck_i if arr_t[index] >= warmup)
        stats = ChannelStats(
            idle_slots=float(self.idle),
            collision_slots=float(self.coll),
            transmission_slots=float(self.tx),
            wait_slots=float(self.wait),
        )
        wcount = self.wcount
        result = MACSimResult(
            arrivals=int(self.n_meas),
            delivered_on_time=int(self.on_time),
            delivered_late=int(self.late),
            discarded=int(self.disc),
            unresolved=unresolved_count,
            mean_true_wait=float(self.wtrue) if wcount else math.nan,
            mean_paper_wait=float(self.wpaper) if wcount else math.nan,
            channel=stats,
            deadline=self.score_deadline,
        )
        if self.registry is not None:
            self.ob.flush(self.registry)
            flush_result_metrics(self.registry, result)
        return result


def _advance(lanes: List[_Lane]) -> None:
    """Drive all lanes to their horizons, one fused round per pass.

    Each round advances every live lane once (see
    :meth:`_Lane.advance_round`); lanes that reach their horizon drop
    out of the live list.  Lanes are independent state machines, so the
    lockstep schedule affects only interpreter locality, never results.
    """
    live = [lane for lane in lanes if lane.now < lane.total_time]
    while live:
        live = [lane for lane in live if lane.advance_round()]


def _run(specs: Sequence["MACRunSpec"], instrumented: bool) -> List:
    batch_indices: List[int] = []
    fallback_indices: List[int] = []
    for index, spec in enumerate(specs):
        (batch_indices if batch_eligible(spec) else fallback_indices).append(
            index
        )

    results: List = [None] * len(specs)

    if batch_indices:
        lanes = [
            _Lane(spec_index, specs[spec_index], instrumented)
            for spec_index in batch_indices
        ]
        _advance(lanes)
        for lane in lanes:
            result = lane.finalize()
            if instrumented:
                results[lane.spec_index] = (result, lane.registry.to_dict())
            else:
                results[lane.spec_index] = result

    if fallback_indices:
        # Transparent per-run fallback: the ordinary sweep task
        # functions (deferred import; experiments imports this module).
        from ..experiments.sweep import run_spec, run_spec_with_metrics

        task = run_spec_with_metrics if instrumented else run_spec
        for index in fallback_indices:
            results[index] = task(specs[index])

    return results


def run_batch(specs: Sequence["MACRunSpec"]) -> List[MACSimResult]:
    """Run ``specs`` lane-parallel; results in spec order.

    Bit-identical to ``[run_spec(s) for s in specs]`` for every spec —
    eligible specs ride the batched lanes, the rest fall back to the
    per-run path transparently.
    """
    return _run(specs, instrumented=False)


def run_batch_with_metrics(
    specs: Sequence["MACRunSpec"],
) -> List[Tuple[MACSimResult, dict]]:
    """Instrumented variant: one fresh registry per lane.

    Returns ``(result, registry_state)`` pairs exactly like
    :func:`repro.experiments.sweep.run_spec_with_metrics` produces for a
    single spec, so batched tasks merge into sweeps without disturbing
    the worker-count-invariance of the metrics fold.
    """
    return _run(specs, instrumented=True)

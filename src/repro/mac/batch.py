"""Lane-parallel batched replication kernel.

Every headline experiment runs the *same arm* over many independent
seeds.  The fast kernel (:mod:`repro.mac.fastpath`) already removed the
per-slot interpreter ceiling; this module removes the per-*replication*
ceiling by advancing ``R`` independent runs in lockstep rounds — one
**lane** per replication — so per-run setup and the uncommon slow paths
are amortised across the whole cohort.  NumPy carries the *long* axes
(arrival generation, the steady-state sprint tables — thousands of
elements per lane), while the R-wide per-round hot state lives in plain
Python floats: at cohort widths of 16–64 a scalar attribute update is
~10x cheaper than a NumPy per-op dispatch, so the struct-of-arrays form
is kept exactly where vector width pays and nowhere else.

The lane state machine itself — VEC/GEN modes, the steady-state sprint,
the fused round — lives in :class:`repro.mac.kernels.lane.LaneState`,
shared with the compiled backend; see that module (and the original
design notes below) for the bit-parity argument.

How a lane runs
---------------
A lane is in one of two modes:

**VEC** — the lane's unresolved pseudo-time set is *empty*, so its
controller state is fully described by one scalar (the frontier F).
Everything the reference kernel would do from that state has a provable
closed form that consumes **zero RNG draws**:

* the idle fast-forward jump (same arithmetic as the sequential
  kernel's, applied to every eligible VEC lane each round);
* a decision epoch whose initial window covers the whole unresolved
  span ``[max(F, now−K), now)`` — the window then admits the lane's
  in-window backlog verbatim (no placement slack, so even RANDOM draws
  nothing), and a 0- or 1-message backlog resolves in a single idle or
  success examination whose state/score updates are explicit.

**GEN** — any other situation (≥2 in-window messages, a window shorter
than the span, an exotic length rule).  The lane materialises a real
:class:`~repro.core.controller.ProtocolController` at ``(∅, F)`` —
exactly the sequential kernel's state at that point — and executes
:func:`repro.mac.kernels.primitives.execute_epoch`, literally the same
epoch code the sequential kernel runs, with the lane's own RNG.  When
the controller's unresolved set empties again the lane snaps back to
VEC.

Because the VEC closed forms replicate the sequential kernel's float
arithmetic operation for operation (clamp = ``max``, measure = one
subtraction, the same Welford mean update per event) and consume no
randomness, and GEN epochs *are* the sequential kernel's code, each
lane's :class:`~repro.mac.simulator.MACSimResult` is **bit-identical**
to running :func:`repro.experiments.sweep.run_spec` on its spec alone.
The parity suite in ``tests/mac/test_batch.py`` pins this across all
four protocol disciplines.

Eligibility and fallback
------------------------
:func:`batch_eligible` mirrors :func:`~repro.mac.fastpath.fast_path_available`:
fault models need the replica machinery, ``stream_seed`` runs draw from
a different stream family, and invariant-checking runs stay on the
reference path whose guards are calibrated for it.  Ineligible specs
are executed transparently through the ordinary per-run path, so
``run_batch`` accepts *any* spec list.

Lanes may be heterogeneous (different arms, horizons, deadlines): each
lane carries its own arm scalars, and a lane past its own horizon
simply drops out of the round's live list — ragged lifetimes cost
nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from ..des.rng import AntitheticGenerator
from ..resilience.invariants import invariants_enabled
from .kernels.lane import LaneState, drive
from .simulator import MACSimResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.sweep import MACRunSpec

__all__ = ["batch_eligible", "run_batch", "run_batch_with_metrics"]


def batch_eligible(spec: "MACRunSpec") -> bool:
    """Whether the batched kernel reproduces ``spec`` bit-for-bit.

    The gate parallels :func:`~repro.mac.fastpath.fast_path_available`
    plus the batch-specific exclusions:

    * ``fast=False`` / ``backend="reference"`` — the caller asked for
      the reference loop;
    * a fault model — needs the per-station replica machinery;
    * a feedback fault model — faulted runs execute on the (per-run)
      faulted fast kernel, not the lane walk; the executor's transparent
      per-spec fallback keeps the rest of the batch on the lanes;
    * ``stream_seed`` — RandomStreams runs draw from named substreams,
      not the single-generator construction the lanes replicate;
    * invariant mode — chaos runs keep the reference kernel whose
      guards watch the quantities its own shortcuts touch;
    * a sub-slot discard deadline — the closed-form clamp and
      ``IntervalSet.clamp_before``'s epsilon diverge below ~1e-9.
    """
    return (
        spec.fast
        and spec.backend != "reference"
        and spec.fault_model is None
        and spec.feedback_faults is None
        and spec.stream_seed is None
        and spec.loss_definition in ("true", "paper")
        and (
            spec.policy.discard_deadline is None
            or spec.policy.discard_deadline > 1e-6
        )
        and not invariants_enabled()
    )


class _Lane(LaneState):
    """One replication: a :class:`LaneState` built from a sweep spec.

    Reproduces the historical per-run construction bit for bit: one
    generator from the plain seed (``batch_eligible`` excludes
    ``stream_seed`` runs) driving arrival generation and then the
    controller in the same draw order as
    :class:`~repro.mac.simulator.WindowMACSimulator`.
    """

    __slots__ = ("spec_index",)

    def __init__(self, spec_index: int, spec, instrumented: bool):
        self.spec_index = spec_index
        rng = np.random.default_rng(spec.seed)
        if spec.antithetic:
            # Same wrap point as the simulator constructor: mirror the
            # one shared generator before any draw, so lane draw order
            # matches the per-run path's antithetic twin exactly.
            rng = AntitheticGenerator(rng)

        # run() semantics: simulate warmup + horizon slots, score the
        # horizon part (MACRunSpec.horizon is the scored extent).
        total_time = float(spec.warmup) + float(spec.horizon)
        if spec.workload is not None:
            gen_times, gen_stations = spec.workload.generate(
                total_time, spec.n_stations, rng
            )
        else:
            n = rng.poisson(spec.arrival_rate * total_time)
            gen_times = np.sort(rng.uniform(0.0, total_time, size=n))
            gen_stations = rng.integers(0, spec.n_stations, size=n)

        super().__init__(
            spec.policy,
            rng,
            spec.transmission_slots,
            spec.deadline,
            spec.loss_definition,
            float(spec.warmup),
            total_time,
            [float(t) for t in gen_times],
            [int(s) for s in gen_stations],
            instrumented,
        )


#: Backward-compatible alias; the round driver moved to
#: :func:`repro.mac.kernels.lane.drive`.
_advance = drive


def _run(specs: Sequence["MACRunSpec"], instrumented: bool) -> List:
    batch_indices: List[int] = []
    fallback_indices: List[int] = []
    for index, spec in enumerate(specs):
        (batch_indices if batch_eligible(spec) else fallback_indices).append(
            index
        )

    results: List = [None] * len(specs)

    if batch_indices:
        lanes = [
            _Lane(spec_index, specs[spec_index], instrumented)
            for spec_index in batch_indices
        ]
        drive(lanes)
        for lane in lanes:
            result = lane.finalize()
            if instrumented:
                results[lane.spec_index] = (result, lane.registry.to_dict())
            else:
                results[lane.spec_index] = result

    if fallback_indices:
        # Transparent per-run fallback: the ordinary sweep task
        # functions (deferred import; experiments imports this module).
        from ..experiments.sweep import run_spec, run_spec_with_metrics

        task = run_spec_with_metrics if instrumented else run_spec
        for index in fallback_indices:
            results[index] = task(specs[index])

    return results


def run_batch(specs: Sequence["MACRunSpec"]) -> List[MACSimResult]:
    """Run ``specs`` lane-parallel; results in spec order.

    Bit-identical to ``[run_spec(s) for s in specs]`` for every spec —
    eligible specs ride the batched lanes, the rest fall back to the
    per-run path transparently.
    """
    return _run(specs, instrumented=False)


def run_batch_with_metrics(
    specs: Sequence["MACRunSpec"],
) -> List[Tuple[MACSimResult, dict]]:
    """Instrumented variant: one fresh registry per lane.

    Returns ``(result, registry_state)`` pairs exactly like
    :func:`repro.experiments.sweep.run_spec_with_metrics` produces for a
    single spec, so batched tasks merge into sweeps without disturbing
    the worker-count-invariance of the metrics fold.
    """
    return _run(specs, instrumented=True)

"""The slot-level multiple-access simulator.

Drives the full stack — Poisson arrivals over a station population, the
shared :class:`~repro.core.controller.ProtocolController`, the windowing
state machine and the slotted channel — and scores message losses the
way the paper's simulations do (§4.2): a message is lost when its *true*
waiting time exceeds the constraint, whether that happens at the sender
(policy element 4 discards it) or at the receiver (it was transmitted
too late).  The paper-definition waiting time is recorded alongside so
both loss definitions can be compared.

This simulator is the reproduction's ground truth for Figure 7's
simulation points and for the ablation benches (element 4 on/off, window
length, split rule, arity, priorities).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.controller import ProtocolController
from ..core.policy import ControlPolicy
from ..core.window import ChannelFeedback
from ..des.monitor import Tally
from ..des.rng import AntitheticGenerator, RandomStreams
from ..faults import (
    FaultEvent,
    FaultModel,
    FaultTelemetry,
    FeedbackFaultModel,
    FeedbackFaultState,
    ReplicatedControllerBank,
)
from ..obs.metrics import MetricsRegistry
from ..resilience.invariants import invariants_enabled, require
from . import fastpath
from .channel import ChannelStats, SlottedChannel
from .messages import Message, MessageFate
from .station import StationRegistry

__all__ = [
    "MACSimResult",
    "WindowMACSimulator",
    "flush_fault_metrics",
    "flush_result_metrics",
]

#: Sub-seed mixed into the fault stream when no RandomStreams family is
#: given, keeping fault draws independent of the traffic sample path.
_FAULT_STREAM_KEY = 0xFA17

#: Valid values of the ``backend`` selector (``None`` ≡ ``"auto"``).
_BACKENDS = ("auto", "reference", "fast", "compiled")

logger = logging.getLogger(__name__)

#: Backend downgrades already logged, keyed by (requested backend, gate,
#: arm parameters).  Module-level so a sweep re-running the same arm
#: hundreds of times produces one notice, not hundreds; the per-run
#: ``kernel.fallbacks`` metric keeps the exact count.
_FALLBACK_NOTICES: set = set()


@dataclass(frozen=True)
class MACSimResult:
    """Aggregated outcome of one MAC simulation run.

    Counts cover messages *arriving* inside the measurement interval.

    Attributes
    ----------
    arrivals:
        Messages generated in the measurement interval.
    delivered_on_time / delivered_late / discarded:
        Their terminal outcomes (late = true wait above the deadline;
        discarded = dropped by policy element 4 at the sender).
    unresolved:
        Messages still pending when the run ended (excluded from the
        loss denominator; large values signal saturation).
    lost_to_faults:
        Messages destroyed by injected faults (station crashes, phantom
        successes); zero in fault-free runs.
    loss_fraction:
        (late + discarded + lost to faults) / (arrivals − unresolved).
    mean_true_wait / mean_paper_wait:
        Mean waits over delivered messages.
    channel:
        Slot-usage breakdown.
    deadline:
        The constraint K the run was scored against (None = no scoring).
    faults:
        Fault-layer telemetry when a :class:`FaultModel` drove the run
        (None on the shared-controller path).  Excluded from equality so
        zero-fault replica runs compare bit-identical to shared runs.
    """

    arrivals: int
    delivered_on_time: int
    delivered_late: int
    discarded: int
    unresolved: int
    mean_true_wait: float
    mean_paper_wait: float
    channel: ChannelStats
    deadline: Optional[float]
    lost_to_faults: int = 0
    faults: Optional[FaultTelemetry] = field(default=None, compare=False)

    @property
    def resolved(self) -> int:
        """Messages with a terminal outcome."""
        return self.arrivals - self.unresolved

    @property
    def loss_fraction(self) -> float:
        """Fraction of resolved messages that missed the constraint."""
        if self.resolved <= 0:
            return float("nan")
        return (
            self.delivered_late + self.discarded + self.lost_to_faults
        ) / self.resolved

    @property
    def saturated(self) -> bool:
        """Warning flag: more than 10% of arrivals never resolved.

        A saturated run's loss figures describe only the messages the
        protocol managed to resolve; treat them as lower bounds (the
        CLI surfaces this as an explicit warning).
        """
        if self.arrivals <= 0:
            return False
        return self.unresolved / self.arrivals > 0.10

    @property
    def on_time_fraction(self) -> float:
        """1 − loss_fraction."""
        return 1.0 - self.loss_fraction

    def loss_stderr(self) -> float:
        """Binomial standard error of the loss estimate."""
        if self.resolved <= 0:
            return float("nan")
        p = self.loss_fraction
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.resolved)


def flush_result_metrics(metrics: MetricsRegistry, result: MACSimResult) -> None:
    """Record one run's outcome into ``metrics``.

    Slot counters are copied verbatim from :class:`ChannelStats`, so the
    metrics view of channel usage agrees *exactly* with
    :meth:`ChannelStats.breakdown` — the parity test in
    ``tests/mac/test_obs_parity.py`` holds all three accountings (the
    reference loop, the fast kernel, and these counters) to identical
    values.  Shared by every simulation path, including the fast kernel.
    """
    metrics.inc("mac.runs")
    stats = result.channel
    metrics.inc("mac.slots.idle", stats.idle_slots)
    metrics.inc("mac.slots.collision", stats.collision_slots)
    metrics.inc("mac.slots.transmission", stats.transmission_slots)
    metrics.inc("mac.slots.wait", stats.wait_slots)
    metrics.inc("mac.messages.arrivals", result.arrivals)
    metrics.inc("mac.messages.on_time", result.delivered_on_time)
    metrics.inc("mac.messages.late", result.delivered_late)
    metrics.inc("mac.messages.discarded", result.discarded)
    metrics.inc("mac.messages.unresolved", result.unresolved)
    metrics.inc("mac.messages.lost_to_faults", result.lost_to_faults)


def flush_fault_metrics(metrics: MetricsRegistry, telemetry: FaultTelemetry) -> None:
    """Record one faulted run's fault-layer activity into ``metrics``.

    Shared by every fault-driven path — the feedback-faulted reference
    loop, the faulted fast kernel and the replica bank — so the
    ``faults.*`` counters are backend-independent (part of the registry
    parity contract).  The replicated path skips it for a null model,
    keeping null-replica runs registry-identical to shared runs.
    """
    metrics.inc(
        "faults.injected",
        telemetry.corrupted_observations
        + telemetry.jam_slots
        + telemetry.missed_feedback
        + telemetry.crashes
        + telemetry.deaf_events,
    )
    metrics.inc(
        "faults.detected",
        telemetry.divergence_detections
        + telemetry.missed_feedback
        + telemetry.cohort_splits,
    )
    metrics.inc("faults.resynced", telemetry.resyncs)
    metrics.counter("faults.diverged_slots", unit="slots").inc(
        telemetry.diverged_slots
    )


class WindowMACSimulator:
    """Simulates the window protocol on a slotted broadcast channel.

    Parameters
    ----------
    policy:
        The four-element control policy (see :class:`ControlPolicy`).
    arrival_rate:
        Network-wide Poisson arrival rate λ, messages per slot.
    transmission_slots:
        Message length M in τ units.
    n_stations:
        Station population (arrivals are assigned uniformly).
    deadline:
        The constraint K used for *scoring* losses.  Independent of the
        policy's ``discard_deadline`` so uncontrolled protocols can be
        scored against any K.
    loss_definition:
        ``"true"`` (the paper's simulation convention, default) or
        ``"paper"`` (the analysis convention).
    fast:
        Use the fast kernel (:mod:`repro.mac.fastpath`) when the run is
        eligible.  The kernel is bit-identical to the reference loop —
        same RNG draw order, same float arithmetic — and disables itself
        automatically for fault-injected runs and §5 priority stations.
        ``fast=False`` forces the reference loop (the escape hatch and
        the benchmark baseline).
    backend:
        Explicit kernel selector overriding ``fast``: ``"reference"``
        forces the reference loop, ``"fast"`` the fast kernel (when
        available), ``"compiled"`` the compiled backend
        (:mod:`repro.mac.kernels.compiled` — jitted hot loops when
        ``numba`` is importable, the pure-NumPy struct-of-arrays
        fallback otherwise; bit-identical either way).  ``None`` /
        ``"auto"`` keeps the historical ``fast`` dispatch.  An
        ineligible run falls down the chain (compiled → fast →
        reference) with a one-time logged notice.
    seed / streams:
        Randomness source.  A :class:`~repro.des.rng.RandomStreams`
        family (when given) supersedes ``seed`` and draws traffic and
        fault randomness from independent named substreams.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        per-run channel/outcome counters and per-epoch backlog and
        window-size histograms (see ``docs/observability.md``).
        ``None`` or a disabled registry is normalised to ``None`` here,
        so the uninstrumented hot path is bit- and speed-identical to
        the pre-observability code.  Recording never changes a result:
        instrumented runs stay bit-identical to uninstrumented ones.
    fault_model:
        ``None`` (default) runs the classic shared-controller path.  A
        :class:`~repro.faults.FaultModel` — even ``FaultModel.none()`` —
        routes the run through per-station controller replicas
        (:mod:`repro.faults.replicas`); the null model reproduces the
        shared path bit-for-bit, non-null models inject the configured
        channel and station faults.
    feedback_faults:
        A :class:`~repro.faults.FeedbackFaultModel` — the *common-mode*
        feedback-error family (misdetection noise, missed feedback,
        adversarial jamming) in which every station still observes the
        same symbol.  Unlike ``fault_model`` this keeps one shared
        protocol state, so faulted runs execute on the fast kernel
        (:mod:`repro.mac.kernels.faults`) bit-identically to the faulted
        reference loop.  Mutually exclusive with ``fault_model``.
    antithetic:
        Mirror the uniform draws of every generator this run consumes
        (see :class:`~repro.des.rng.AntitheticGenerator`): the run at
        the same seed with ``antithetic=True`` is the variance-reduction
        twin of the plain run.  Applied identically on every backend —
        the kernels consume randomness through the same generator
        methods — so antithetic runs keep the bit-parity contract.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        arrival_rate: float,
        transmission_slots: int,
        n_stations: int = 200,
        deadline: Optional[float] = None,
        loss_definition: str = "true",
        seed: int = 0,
        workload=None,
        fault_model: Optional[FaultModel] = None,
        streams: Optional[RandomStreams] = None,
        fast: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        backend: Optional[str] = None,
        feedback_faults: Optional[FeedbackFaultModel] = None,
        antithetic: bool = False,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if fault_model is not None and feedback_faults is not None:
            raise ValueError(
                "fault_model and feedback_faults are mutually exclusive: "
                "per-station replica faults (fault_model) and common-mode "
                "feedback-channel errors (feedback_faults) model disjoint "
                "failure domains"
            )
        if loss_definition not in ("true", "paper"):
            raise ValueError(f"unknown loss definition: {loss_definition!r}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if backend is not None and backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend: {backend!r} (expected one of {_BACKENDS})"
            )
        self.backend = backend
        self.policy = policy
        self.arrival_rate = arrival_rate
        self.transmission_slots = transmission_slots
        self.deadline = deadline
        self.loss_definition = loss_definition
        if streams is not None:
            self.rng = streams.get("mac-simulator")
            fault_rng = streams.get("faults")
            # Workload arrivals draw from their own named substream so
            # swapping the traffic model never perturbs the protocol or
            # fault streams (the seed-derivation contract).
            arrival_rng = (
                streams.get("workload") if workload is not None else self.rng
            )
        else:
            self.rng = np.random.default_rng(seed)
            fault_rng = np.random.default_rng(
                np.random.SeedSequence([abs(int(seed)), _FAULT_STREAM_KEY])
            )
            # Plain-seed runs keep the historical shared generator so
            # every pinned result stands.
            arrival_rng = self.rng
        self.antithetic = bool(antithetic)
        if self.antithetic:
            # Mirror each *distinct* generator exactly once, keyed by
            # identity so the plain-seed aliasing (arrival_rng is rng)
            # survives the wrap and the draw order stays unchanged.
            wrapped: dict = {}

            def _mirror(generator):
                twin = wrapped.get(id(generator))
                if twin is None:
                    twin = AntitheticGenerator(generator)
                    wrapped[id(generator)] = twin
                return twin

            self.rng = _mirror(self.rng)
            fault_rng = _mirror(fault_rng)
            arrival_rng = _mirror(arrival_rng)
        # Retained for the feedback-fault paths (both loops draw fault
        # randomness from this one generator, in identical order).
        self._fault_rng = fault_rng
        # All arrival generation — reference loop and kernels alike —
        # must draw from this generator, never self.rng directly.
        self._arrival_rng = arrival_rng
        self.workload = workload  # None = homogeneous Poisson at arrival_rate
        self.fast = fast
        # A disabled registry is normalised away so hot loops test one
        # reference against None and nothing else.
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

        self.registry = StationRegistry(n_stations)
        if invariants_enabled():
            # Guard the lazy struct-of-arrays station bookkeeping
            # (O(1) construction at any population size).
            self.registry.check_invariants()
        self.channel = SlottedChannel(self.registry, transmission_slots)
        self.controller = ProtocolController(policy, rng=self.rng)
        self.fault_model = fault_model
        self.feedback_faults = feedback_faults
        self.bank: Optional[ReplicatedControllerBank] = None
        if fault_model is not None:
            # The root cohort drives *this* controller with *this* rng, so
            # a fault-free replicated run consumes randomness draw-for-draw
            # like the shared path.
            self.bank = ReplicatedControllerBank(
                policy,
                n_stations,
                self.controller,
                fault_model,
                fault_rng,
                transmission_slots,
            )

    # -- arrival generation ------------------------------------------------------

    def _generate_arrivals(self, horizon: float) -> list:
        """Arrival instants from the workload (default: Poisson, uniform
        station assignment)."""
        if self.workload is not None:
            times, stations = self.workload.generate(
                horizon, self.registry.n_stations, self._arrival_rng
            )
        else:
            rng = self._arrival_rng
            n = rng.poisson(self.arrival_rate * horizon)
            times = np.sort(rng.uniform(0.0, horizon, size=n))
            stations = rng.integers(0, self.registry.n_stations, size=n)
        return [
            Message(arrival=float(t), station=int(s), uid=i)
            for i, (t, s) in enumerate(zip(times, stations))
        ]

    # -- main loop -----------------------------------------------------------------

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> MACSimResult:
        """Simulate ``warmup + horizon`` slots and score the horizon part.

        Messages arriving during warm-up are simulated but not scored.
        Dispatches to the shared-controller path (no fault model) or the
        per-station replica path (fault model given).
        """
        if horizon_slots <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_slots}")
        total_time = warmup_slots + horizon_slots
        if self.bank is not None:
            return self._run_replicated(total_time, warmup_slots)
        if self.feedback_faults is not None and self.registry.has_scaled_stations:
            raise ValueError(
                "feedback_faults cannot drive a run with §5 priority "
                "(window-scaled) stations; use fault_model for per-station "
                "failure domains"
            )
        backend = self.backend
        if backend == "reference":
            return self._run_reference(total_time, warmup_slots)
        if backend == "compiled":
            from .kernels import compiled

            if compiled.compiled_eligible(self):
                return compiled.run_compiled(self, total_time, warmup_slots)
            self._note_fallback("compiled", "compiled_eligible")
        if backend in ("fast", "compiled") or (
            (backend is None or backend == "auto") and self.fast
        ):
            if fastpath.fast_path_available(self):
                return fastpath.run_fast(self, total_time, warmup_slots)
            if backend in ("fast", "compiled"):
                self._note_fallback(backend, "fast_path_available")
        return self._run_reference(total_time, warmup_slots)

    def _run_reference(self, total_time: float, warmup_slots: float) -> MACSimResult:
        """The bottom of the downgrade chain: the matching slow loop."""
        if self.feedback_faults is not None:
            return self._run_shared_faulted(total_time, warmup_slots)
        return self._run_shared(total_time, warmup_slots)

    def _note_fallback(self, requested: str, gate: str) -> None:
        """Account a kernel downgrade (requested backend unavailable).

        Every downgraded run increments the ``kernel.fallbacks`` counter
        (when instrumented); the log notice is emitted once per
        (backend, gate, arm) fingerprint so sweeps re-running one arm
        hundreds of times do not flood the log.
        """
        if self.metrics is not None:
            self.metrics.inc("kernel.fallbacks")
        key = (
            requested,
            gate,
            repr(self.policy),
            self.arrival_rate,
            self.transmission_slots,
            self.registry.n_stations,
            self.deadline,
            self.loss_definition,
            self.feedback_faults,
        )
        if key in _FALLBACK_NOTICES:
            return
        _FALLBACK_NOTICES.add(key)
        logger.info(
            "backend=%s requested but the run is ineligible (gate: %s); "
            "falling back down the compiled -> fast -> reference chain "
            "(further identical downgrades logged only in the "
            "kernel.fallbacks metric)",
            requested,
            gate,
        )

    def _run_shared(self, total_time: float, warmup_slots: float) -> MACSimResult:
        """The classic path: one controller shared by every station (§2)."""
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        controller = self.controller
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()
        # Hot-loop guards (REPRO_CHECK_INVARIANTS): monotone clock and
        # window non-negativity, checked as state evolves rather than
        # inferred from a corrupt merged table downstream.
        check = invariants_enabled()
        last_now = -math.inf
        # Per-epoch instrumentation: one `is not None` test per decision
        # epoch when disabled (never per slot inside a process).
        obs = self.metrics
        if obs is not None:
            epoch_counter = obs.counter("mac.epochs")
            backlog_hist = obs.histogram("mac.backlog.size")
            window_hist = obs.histogram("mac.window.size", unit="slots")

        while channel.now < total_time:
            now = channel.now
            if check:
                require(now > last_now, f"clock stalled at slot {now}")
                last_now = now
            # Ingest arrivals that have occurred.
            while arrival_index < len(arrivals) and arrivals[arrival_index].arrival <= now:
                message = arrivals[arrival_index]
                registry.ingest(message)
                if measured(message):
                    n_measured += 1
                arrival_index += 1

            if obs is not None:
                epoch_counter.inc()
                backlog_hist.observe(len(registry))

            # begin_process applies element 4 to the time axis; mirror it
            # on the message backlog (stations drop their stale messages).
            process = controller.begin_process(now)
            if self.policy.discard_deadline is not None:
                horizon = now - self.policy.discard_deadline
                for message in registry.drop_older_than(horizon):
                    message.fate = MessageFate.DISCARDED_AT_SENDER
                    if measured(message):
                        counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if process is None:
                channel.wait_slot()
                continue

            process_start = now
            if obs is not None:
                window_hist.observe(process.current_span.measure)
            transmitted: Optional[Message] = None
            # §5 priority extension: participation is decided once per
            # windowing process against the initial window.
            eligible = (
                registry.eligible_for_window(process.current_span)
                if registry.has_scaled_stations
                else None
            )
            while not process.done:
                if check:
                    require(
                        process.current_span.measure >= 0.0,
                        f"window span has negative measure at slot {channel.now}",
                    )
                feedback, message = channel.examine(process.current_span, eligible)
                if message is not None:
                    transmitted = message
                process.on_feedback(feedback)
            controller.complete_process(process)

            if transmitted is not None:
                transmitted.process_start = process_start
                registry.remove(transmitted)
                self._score_delivery(
                    transmitted, counts, true_wait, paper_wait, measured
                )

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        if check:
            accounted = (
                counts[MessageFate.DELIVERED_ON_TIME]
                + counts[MessageFate.DELIVERED_LATE]
                + counts[MessageFate.DISCARDED_AT_SENDER]
                + unresolved
            )
            require(
                accounted == n_measured,
                f"message conservation violated: {n_measured} measured "
                f"arrivals but {accounted} accounted for",
            )
        # Retain per-message records (measured interval only) so callers
        # can compute custom breakdowns, e.g. per-station-class loss.
        self.scored_messages = [m for m in arrivals if measured(m)]
        result = MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
        )
        if obs is not None:
            flush_result_metrics(obs, result)
        return result

    def _run_shared_faulted(
        self, total_time: float, warmup_slots: float
    ) -> MACSimResult:
        """The shared-controller loop under a feedback fault model.

        Structurally :meth:`_run_shared` with fault application at every
        examination slot: jam bursts force a physical COLLISION, the
        network-wide observation rule may corrupt the symbol every
        station (and the windowing process) sees, and the divergence
        guard aborts idle descents deeper than ``max_split_depth`` under
        the configured recovery policy.  Faults stay common-mode — one
        shared protocol state — which is what keeps this loop (unlike
        :meth:`_run_replicated`) expressible in the fast kernel:
        :func:`repro.mac.kernels.faults.run_fast_faulted` reproduces it
        bit for bit, results, telemetry and metrics registry alike.

        Two deliberate differences from the clean loop, mirrored by the
        kernel: no idle fast-forward (fault events are anchored to
        executed slots) and in-slot delivery scoring (under erasures a
        single windowing process can deliver several messages, so
        scoring cannot wait for process completion).
        """
        from .kernels.primitives import ObsBuffers

        model = self.feedback_faults
        state = FeedbackFaultState(model, self.registry.n_stations, self._fault_rng)
        telemetry = state.telemetry
        desynced = state.desynced
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        controller = self.controller
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()
        check = invariants_enabled()
        last_now = -math.inf
        obs = self.metrics
        ob = ObsBuffers() if obs is not None else None

        def lose(message: Message) -> None:
            """Fault-destroy a backlogged message."""
            registry.remove(message)
            message.tx_start = None
            message.fate = MessageFate.LOST_TO_FAULT
            if measured(message):
                counts[MessageFate.LOST_TO_FAULT] += 1

        def drop_station(station: int) -> None:
            """A dropping-out station destroys its pending backlog."""
            for message in registry.drop_station(station):
                message.fate = MessageFate.LOST_TO_FAULT
                telemetry.dropped_messages += 1
                if measured(message):
                    counts[MessageFate.LOST_TO_FAULT] += 1

        while channel.now < total_time:
            now = channel.now
            if check:
                require(now > last_now, f"clock stalled at slot {now}")
                last_now = now
            while (
                arrival_index < len(arrivals)
                and arrivals[arrival_index].arrival <= now
            ):
                message = arrivals[arrival_index]
                registry.ingest(message)
                if measured(message):
                    n_measured += 1
                arrival_index += 1

            if ob is not None:
                ob.epochs += 1
                ob.backlog_sizes.append(len(registry))

            # Fault events due by now, then rejoins (stations re-engage
            # only at a decision boundary).
            for station in state.poll(now):
                drop_station(station)
            state.rejoin(now)

            process = controller.begin_process(now)
            if self.policy.discard_deadline is not None:
                horizon = now - self.policy.discard_deadline
                for message in registry.drop_older_than(horizon):
                    message.fate = MessageFate.DISCARDED_AT_SENDER
                    if measured(message):
                        counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if process is None:
                channel.wait_slot()
                continue

            process_start = now
            initial_span = process.current_span
            if ob is not None:
                ob.window_sizes.append(initial_span.measure)
            while not process.done:
                now = channel.now
                # Mid-process fault events (jam starts, misses, drop-outs).
                for station in state.poll(now):
                    drop_station(station)
                span = process.current_span
                enabled = registry.enabled_stations(span)
                if desynced:
                    enabled = {
                        s: m for s, m in enabled.items() if s not in desynced
                    }
                if now < state.jam_until:
                    # Adversarial burst: the channel reads COLLISION
                    # whatever happened; a frame sent into it is
                    # destroyed (the sender aborts after one slot, as on
                    # a real collision) so nothing is delivered.
                    true_symbol = ChannelFeedback.COLLISION
                    transmitted = None
                    channel.now += 1.0
                    channel.stats.collision_slots += 1.0
                    telemetry.jam_slots += 1
                else:
                    true_symbol, transmitted = channel.resolve_slot(enabled)
                observed = state.observe(true_symbol)

                # Physical truth decides delivery; the observed symbol
                # decides what the senders and the protocol state do.
                if true_symbol is ChannelFeedback.SUCCESS:
                    if observed is ChannelFeedback.SUCCESS:
                        transmitted.process_start = process_start
                        registry.remove(transmitted)
                        self._score_delivery(
                            transmitted, counts, true_wait, paper_wait, measured
                        )
                    elif observed is ChannelFeedback.IDLE:
                        # Faded frame: transmitted but decoded nowhere,
                        # and the span resolves idle — unrecoverable.
                        lose(transmitted)
                        telemetry.faded_frames += 1
                    else:
                        # Erasure: the sender reads COLLISION and keeps
                        # the message pending; the split descent will
                        # isolate and retransmit it.
                        transmitted.tx_start = None
                elif (
                    true_symbol is ChannelFeedback.COLLISION
                    and observed is ChannelFeedback.SUCCESS
                ):
                    # Capture: every participating station believes its
                    # frame got through and dequeues it.
                    for message in list(enabled.values()):
                        lose(message)
                        telemetry.phantom_deliveries += 1

                process.on_feedback(observed)
                if not process.done and process.depth > model.max_split_depth:
                    # Divergence abort: a descent this deep cannot occur
                    # under fault-free feedback (FeedbackFaultModel
                    # notes); stop it before the split machinery's own
                    # depth ceiling turns it into a crash.
                    telemetry.divergence_detections += 1
                    telemetry.diverged_slots += process.slots_spent
                    telemetry.resyncs += 1
                    if model.recovery == "drop-out":
                        for message in registry.messages_in_span(initial_span):
                            lose(message)
                            telemetry.dropped_messages += 1
                    elif model.recovery == "gated-rejoin":
                        channel.now += model.rejoin_listen_slots
                        channel.stats.wait_slots += model.rejoin_listen_slots
                    # complete_process refuses unfinished processes;
                    # fold back what did resolve, abandon the rest.
                    for resolved in process.resolved_spans:
                        controller.unresolved.subtract_span(resolved)
                    break
            else:
                controller.complete_process(process)

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        if check:
            accounted = (
                counts[MessageFate.DELIVERED_ON_TIME]
                + counts[MessageFate.DELIVERED_LATE]
                + counts[MessageFate.DISCARDED_AT_SENDER]
                + counts[MessageFate.LOST_TO_FAULT]
                + unresolved
            )
            require(
                accounted == n_measured,
                f"message conservation violated (faulted path): "
                f"{n_measured} measured arrivals but {accounted} accounted for",
            )
        self.scored_messages = [m for m in arrivals if measured(m)]
        result = MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
            lost_to_faults=counts[MessageFate.LOST_TO_FAULT],
            faults=telemetry,
        )
        if obs is not None:
            ob.flush(obs)
            flush_result_metrics(obs, result)
            flush_fault_metrics(obs, telemetry)
        return result

    def _run_replicated(self, total_time: float, warmup_slots: float) -> MACSimResult:
        """The fault-injected path: per-station controller replicas.

        Structurally mirrors :meth:`_run_shared` — same arrival stream,
        same decision instants, same slot accounting — but every station
        belongs to a replica *cohort* (:mod:`repro.faults.replicas`)
        whose view of the protocol state may diverge under injected
        faults.  Truth (who actually transmitted, what the slot outcome
        physically was, which message was delivered) is resolved against
        the union of all cohorts' enabled stations; each replica then
        observes a possibly corrupted symbol and evolves on its own.

        With ``FaultModel.none()`` exactly one cohort ever exists and
        this loop replays the shared path decision-for-decision,
        producing a bit-identical :class:`MACSimResult` — the regression
        test of the refactor.
        """
        fault_model = self.fault_model
        bank = self.bank
        injector = bank.injector
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()
        check = invariants_enabled()
        last_now = -math.inf

        def lose_to_fault(message: Message, in_registry: bool = True) -> None:
            if in_registry:
                registry.remove(message)
            message.fate = MessageFate.LOST_TO_FAULT
            if measured(message):
                counts[MessageFate.LOST_TO_FAULT] += 1

        if fault_model.recovery == "drop-out":
            # Resyncing stations abandon their backlog; the bank calls
            # back here so the message bookkeeping stays in this loop.
            def _drop_backlog(station: int) -> int:
                dropped = registry.drop_station(station)
                for message in dropped:
                    lose_to_fault(message, in_registry=False)
                return len(dropped)

            bank.on_drop_out = _drop_backlog

        while channel.now < total_time:
            now = channel.now
            if check:
                require(now > last_now, f"clock stalled at slot {now}")
                last_now = now

            # Station-level fault transitions due by now.
            if fault_model.has_station_faults:
                for event, station in injector.poll(now):
                    if event is FaultEvent.CRASH:
                        bank.telemetry.crashes += 1
                        bank.remove_station(station)
                        for message in registry.drop_station(station):
                            lose_to_fault(message, in_registry=False)
                    elif event is FaultEvent.RESTART:
                        bank.telemetry.restarts += 1
                        bank.restore_station(station, now)
                    elif event is FaultEvent.DEAF:
                        bank.telemetry.deaf_events += 1
                        bank.remove_station(station)
                    else:  # HEAR
                        bank.telemetry.deaf_recoveries += 1
                        bank.restore_station(station, now)

            # Decision boundary: some cohort picks its next action at this
            # instant — mirror the shared path's outer-iteration bookkeeping
            # (arrival ingest, begin_process, element-4 backlog drop).
            if bank.any_boundary(now):
                while (
                    arrival_index < len(arrivals)
                    and arrivals[arrival_index].arrival <= now
                ):
                    message = arrivals[arrival_index]
                    if injector.is_crashed(message.station):
                        # Arrivals at a down station are lost with it.
                        lose_to_fault(message, in_registry=False)
                    else:
                        registry.ingest(message)
                    if measured(message):
                        n_measured += 1
                    arrival_index += 1
                bank.begin_processes(now, registry)
                if self.policy.discard_deadline is not None:
                    horizon = now - self.policy.discard_deadline
                    for message in registry.drop_older_than(horizon):
                        message.fate = MessageFate.DISCARDED_AT_SENDER
                        if measured(message):
                            counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if not bank.any_process():
                # Every replica believes there is nothing to do (or is in a
                # listen-only resync epoch): the channel idles one slot.
                channel.wait_slot()
                if fault_model.has_channel_noise:
                    bank.apply_feedback(ChannelFeedback.IDLE, now, lose_to_fault)
                continue

            transmitters = bank.collect_transmitters(now, registry)
            feedback, transmitted = channel.resolve_slot(transmitters)
            if transmitted is not None:
                # Physical delivery is truth, whatever any replica believes.
                transmitted.process_start = bank.cohort_of(
                    transmitted.station
                ).process_start
                registry.remove(transmitted)
                self._score_delivery(
                    transmitted, counts, true_wait, paper_wait, measured
                )
            bank.apply_feedback(feedback, now, lose_to_fault)

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        if check:
            accounted = (
                counts[MessageFate.DELIVERED_ON_TIME]
                + counts[MessageFate.DELIVERED_LATE]
                + counts[MessageFate.DISCARDED_AT_SENDER]
                + counts[MessageFate.LOST_TO_FAULT]
                + unresolved
            )
            require(
                accounted == n_measured,
                f"message conservation violated (replicated path): "
                f"{n_measured} measured arrivals but {accounted} accounted for",
            )
        self.scored_messages = [m for m in arrivals if measured(m)]
        result = MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
            lost_to_faults=counts[MessageFate.LOST_TO_FAULT],
            faults=bank.telemetry,
        )
        # Replica runs flush the end-of-run accounting only: epoch-level
        # histograms describe the shared-controller decision structure,
        # which diverged cohorts do not share.  Fault counters flush only
        # for non-null models so null-replica registries stay identical
        # to shared-path registries.
        if self.metrics is not None:
            flush_result_metrics(self.metrics, result)
            if not fault_model.is_null:
                flush_fault_metrics(self.metrics, bank.telemetry)
        return result

    def _score_delivery(self, message, counts, true_wait, paper_wait, measured) -> None:
        wait = message.wait(self.loss_definition)
        if self.deadline is not None and wait > self.deadline:
            message.fate = MessageFate.DELIVERED_LATE
        else:
            message.fate = MessageFate.DELIVERED_ON_TIME
        if measured(message):
            counts[message.fate] += 1
            true_wait.observe(message.true_wait)
            paper_wait.observe(message.paper_wait)


def _everything():
    """A span covering all representable time (for backlog enumeration)."""
    from ..core.timeline import Span

    return Span(((-math.inf, math.inf),))

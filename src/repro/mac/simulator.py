"""The slot-level multiple-access simulator.

Drives the full stack — Poisson arrivals over a station population, the
shared :class:`~repro.core.controller.ProtocolController`, the windowing
state machine and the slotted channel — and scores message losses the
way the paper's simulations do (§4.2): a message is lost when its *true*
waiting time exceeds the constraint, whether that happens at the sender
(policy element 4 discards it) or at the receiver (it was transmitted
too late).  The paper-definition waiting time is recorded alongside so
both loss definitions can be compared.

This simulator is the reproduction's ground truth for Figure 7's
simulation points and for the ablation benches (element 4 on/off, window
length, split rule, arity, priorities).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.controller import ProtocolController
from ..core.policy import ControlPolicy
from ..des.monitor import Tally
from .channel import ChannelStats, SlottedChannel
from .messages import Message, MessageFate
from .station import StationRegistry

__all__ = ["MACSimResult", "WindowMACSimulator"]


@dataclass(frozen=True)
class MACSimResult:
    """Aggregated outcome of one MAC simulation run.

    Counts cover messages *arriving* inside the measurement interval.

    Attributes
    ----------
    arrivals:
        Messages generated in the measurement interval.
    delivered_on_time / delivered_late / discarded:
        Their terminal outcomes (late = true wait above the deadline;
        discarded = dropped by policy element 4 at the sender).
    unresolved:
        Messages still pending when the run ended (excluded from the
        loss denominator; large values signal saturation).
    loss_fraction:
        (late + discarded) / (arrivals − unresolved).
    mean_true_wait / mean_paper_wait:
        Mean waits over delivered messages.
    channel:
        Slot-usage breakdown.
    deadline:
        The constraint K the run was scored against (None = no scoring).
    """

    arrivals: int
    delivered_on_time: int
    delivered_late: int
    discarded: int
    unresolved: int
    mean_true_wait: float
    mean_paper_wait: float
    channel: ChannelStats
    deadline: Optional[float]

    @property
    def resolved(self) -> int:
        """Messages with a terminal outcome."""
        return self.arrivals - self.unresolved

    @property
    def loss_fraction(self) -> float:
        """Fraction of resolved messages that missed the constraint."""
        if self.resolved <= 0:
            return float("nan")
        return (self.delivered_late + self.discarded) / self.resolved

    @property
    def on_time_fraction(self) -> float:
        """1 − loss_fraction."""
        return 1.0 - self.loss_fraction

    def loss_stderr(self) -> float:
        """Binomial standard error of the loss estimate."""
        if self.resolved <= 0:
            return float("nan")
        p = self.loss_fraction
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.resolved)


class WindowMACSimulator:
    """Simulates the window protocol on a slotted broadcast channel.

    Parameters
    ----------
    policy:
        The four-element control policy (see :class:`ControlPolicy`).
    arrival_rate:
        Network-wide Poisson arrival rate λ, messages per slot.
    transmission_slots:
        Message length M in τ units.
    n_stations:
        Station population (arrivals are assigned uniformly).
    deadline:
        The constraint K used for *scoring* losses.  Independent of the
        policy's ``discard_deadline`` so uncontrolled protocols can be
        scored against any K.
    loss_definition:
        ``"true"`` (the paper's simulation convention, default) or
        ``"paper"`` (the analysis convention).
    """

    def __init__(
        self,
        policy: ControlPolicy,
        arrival_rate: float,
        transmission_slots: int,
        n_stations: int = 200,
        deadline: Optional[float] = None,
        loss_definition: str = "true",
        seed: int = 0,
        workload=None,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if loss_definition not in ("true", "paper"):
            raise ValueError(f"unknown loss definition: {loss_definition!r}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.policy = policy
        self.arrival_rate = arrival_rate
        self.transmission_slots = transmission_slots
        self.deadline = deadline
        self.loss_definition = loss_definition
        self.rng = np.random.default_rng(seed)
        self.workload = workload  # None = homogeneous Poisson at arrival_rate

        self.registry = StationRegistry(n_stations)
        self.channel = SlottedChannel(self.registry, transmission_slots)
        self.controller = ProtocolController(policy, rng=self.rng)

    # -- arrival generation ------------------------------------------------------

    def _generate_arrivals(self, horizon: float) -> list:
        """Arrival instants from the workload (default: Poisson, uniform
        station assignment)."""
        if self.workload is not None:
            times, stations = self.workload.generate(
                horizon, self.registry.n_stations, self.rng
            )
        else:
            n = self.rng.poisson(self.arrival_rate * horizon)
            times = np.sort(self.rng.uniform(0.0, horizon, size=n))
            stations = self.rng.integers(0, self.registry.n_stations, size=n)
        return [
            Message(arrival=float(t), station=int(s), uid=i)
            for i, (t, s) in enumerate(zip(times, stations))
        ]

    # -- main loop -----------------------------------------------------------------

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> MACSimResult:
        """Simulate ``warmup + horizon`` slots and score the horizon part.

        Messages arriving during warm-up are simulated but not scored.
        """
        if horizon_slots <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_slots}")
        total_time = warmup_slots + horizon_slots
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        controller = self.controller
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()

        while channel.now < total_time:
            now = channel.now
            # Ingest arrivals that have occurred.
            while arrival_index < len(arrivals) and arrivals[arrival_index].arrival <= now:
                message = arrivals[arrival_index]
                registry.ingest(message)
                if measured(message):
                    n_measured += 1
                arrival_index += 1

            # begin_process applies element 4 to the time axis; mirror it
            # on the message backlog (stations drop their stale messages).
            process = controller.begin_process(now)
            if self.policy.discard_deadline is not None:
                horizon = now - self.policy.discard_deadline
                for message in registry.drop_older_than(horizon):
                    message.fate = MessageFate.DISCARDED_AT_SENDER
                    if measured(message):
                        counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if process is None:
                channel.wait_slot()
                continue

            process_start = now
            transmitted: Optional[Message] = None
            # §5 priority extension: participation is decided once per
            # windowing process against the initial window.
            eligible = (
                registry.eligible_for_window(process.current_span)
                if registry.has_scaled_stations
                else None
            )
            while not process.done:
                feedback, message = channel.examine(process.current_span, eligible)
                if message is not None:
                    transmitted = message
                process.on_feedback(feedback)
            controller.complete_process(process)

            if transmitted is not None:
                transmitted.process_start = process_start
                registry.remove(transmitted)
                self._score_delivery(
                    transmitted, counts, true_wait, paper_wait, measured
                )

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        # Retain per-message records (measured interval only) so callers
        # can compute custom breakdowns, e.g. per-station-class loss.
        self.scored_messages = [m for m in arrivals if measured(m)]
        return MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
        )

    def _score_delivery(self, message, counts, true_wait, paper_wait, measured) -> None:
        wait = message.wait(self.loss_definition)
        if self.deadline is not None and wait > self.deadline:
            message.fate = MessageFate.DELIVERED_LATE
        else:
            message.fate = MessageFate.DELIVERED_ON_TIME
        if measured(message):
            counts[message.fate] += 1
            true_wait.observe(message.true_wait)
            paper_wait.observe(message.paper_wait)


def _everything():
    """A span covering all representable time (for backlog enumeration)."""
    from ..core.timeline import Span

    return Span(((-math.inf, math.inf),))

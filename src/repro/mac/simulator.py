"""The slot-level multiple-access simulator.

Drives the full stack — Poisson arrivals over a station population, the
shared :class:`~repro.core.controller.ProtocolController`, the windowing
state machine and the slotted channel — and scores message losses the
way the paper's simulations do (§4.2): a message is lost when its *true*
waiting time exceeds the constraint, whether that happens at the sender
(policy element 4 discards it) or at the receiver (it was transmitted
too late).  The paper-definition waiting time is recorded alongside so
both loss definitions can be compared.

This simulator is the reproduction's ground truth for Figure 7's
simulation points and for the ablation benches (element 4 on/off, window
length, split rule, arity, priorities).
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.controller import ProtocolController
from ..core.policy import ControlPolicy
from ..core.window import ChannelFeedback
from ..des.monitor import Tally
from ..des.rng import RandomStreams
from ..faults import FaultEvent, FaultModel, FaultTelemetry, ReplicatedControllerBank
from ..obs.metrics import MetricsRegistry
from ..resilience.invariants import invariants_enabled, require
from . import fastpath
from .channel import ChannelStats, SlottedChannel
from .messages import Message, MessageFate
from .station import StationRegistry

__all__ = ["MACSimResult", "WindowMACSimulator", "flush_result_metrics"]

#: Sub-seed mixed into the fault stream when no RandomStreams family is
#: given, keeping fault draws independent of the traffic sample path.
_FAULT_STREAM_KEY = 0xFA17

#: Valid values of the ``backend`` selector (``None`` ≡ ``"auto"``).
_BACKENDS = ("auto", "reference", "fast", "compiled")

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MACSimResult:
    """Aggregated outcome of one MAC simulation run.

    Counts cover messages *arriving* inside the measurement interval.

    Attributes
    ----------
    arrivals:
        Messages generated in the measurement interval.
    delivered_on_time / delivered_late / discarded:
        Their terminal outcomes (late = true wait above the deadline;
        discarded = dropped by policy element 4 at the sender).
    unresolved:
        Messages still pending when the run ended (excluded from the
        loss denominator; large values signal saturation).
    lost_to_faults:
        Messages destroyed by injected faults (station crashes, phantom
        successes); zero in fault-free runs.
    loss_fraction:
        (late + discarded + lost to faults) / (arrivals − unresolved).
    mean_true_wait / mean_paper_wait:
        Mean waits over delivered messages.
    channel:
        Slot-usage breakdown.
    deadline:
        The constraint K the run was scored against (None = no scoring).
    faults:
        Fault-layer telemetry when a :class:`FaultModel` drove the run
        (None on the shared-controller path).  Excluded from equality so
        zero-fault replica runs compare bit-identical to shared runs.
    """

    arrivals: int
    delivered_on_time: int
    delivered_late: int
    discarded: int
    unresolved: int
    mean_true_wait: float
    mean_paper_wait: float
    channel: ChannelStats
    deadline: Optional[float]
    lost_to_faults: int = 0
    faults: Optional[FaultTelemetry] = field(default=None, compare=False)

    @property
    def resolved(self) -> int:
        """Messages with a terminal outcome."""
        return self.arrivals - self.unresolved

    @property
    def loss_fraction(self) -> float:
        """Fraction of resolved messages that missed the constraint."""
        if self.resolved <= 0:
            return float("nan")
        return (
            self.delivered_late + self.discarded + self.lost_to_faults
        ) / self.resolved

    @property
    def saturated(self) -> bool:
        """Warning flag: more than 10% of arrivals never resolved.

        A saturated run's loss figures describe only the messages the
        protocol managed to resolve; treat them as lower bounds (the
        CLI surfaces this as an explicit warning).
        """
        if self.arrivals <= 0:
            return False
        return self.unresolved / self.arrivals > 0.10

    @property
    def on_time_fraction(self) -> float:
        """1 − loss_fraction."""
        return 1.0 - self.loss_fraction

    def loss_stderr(self) -> float:
        """Binomial standard error of the loss estimate."""
        if self.resolved <= 0:
            return float("nan")
        p = self.loss_fraction
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.resolved)


def flush_result_metrics(metrics: MetricsRegistry, result: MACSimResult) -> None:
    """Record one run's outcome into ``metrics``.

    Slot counters are copied verbatim from :class:`ChannelStats`, so the
    metrics view of channel usage agrees *exactly* with
    :meth:`ChannelStats.breakdown` — the parity test in
    ``tests/mac/test_obs_parity.py`` holds all three accountings (the
    reference loop, the fast kernel, and these counters) to identical
    values.  Shared by every simulation path, including the fast kernel.
    """
    metrics.inc("mac.runs")
    stats = result.channel
    metrics.inc("mac.slots.idle", stats.idle_slots)
    metrics.inc("mac.slots.collision", stats.collision_slots)
    metrics.inc("mac.slots.transmission", stats.transmission_slots)
    metrics.inc("mac.slots.wait", stats.wait_slots)
    metrics.inc("mac.messages.arrivals", result.arrivals)
    metrics.inc("mac.messages.on_time", result.delivered_on_time)
    metrics.inc("mac.messages.late", result.delivered_late)
    metrics.inc("mac.messages.discarded", result.discarded)
    metrics.inc("mac.messages.unresolved", result.unresolved)
    metrics.inc("mac.messages.lost_to_faults", result.lost_to_faults)


class WindowMACSimulator:
    """Simulates the window protocol on a slotted broadcast channel.

    Parameters
    ----------
    policy:
        The four-element control policy (see :class:`ControlPolicy`).
    arrival_rate:
        Network-wide Poisson arrival rate λ, messages per slot.
    transmission_slots:
        Message length M in τ units.
    n_stations:
        Station population (arrivals are assigned uniformly).
    deadline:
        The constraint K used for *scoring* losses.  Independent of the
        policy's ``discard_deadline`` so uncontrolled protocols can be
        scored against any K.
    loss_definition:
        ``"true"`` (the paper's simulation convention, default) or
        ``"paper"`` (the analysis convention).
    fast:
        Use the fast kernel (:mod:`repro.mac.fastpath`) when the run is
        eligible.  The kernel is bit-identical to the reference loop —
        same RNG draw order, same float arithmetic — and disables itself
        automatically for fault-injected runs and §5 priority stations.
        ``fast=False`` forces the reference loop (the escape hatch and
        the benchmark baseline).
    backend:
        Explicit kernel selector overriding ``fast``: ``"reference"``
        forces the reference loop, ``"fast"`` the fast kernel (when
        available), ``"compiled"`` the compiled backend
        (:mod:`repro.mac.kernels.compiled` — jitted hot loops when
        ``numba`` is importable, the pure-NumPy struct-of-arrays
        fallback otherwise; bit-identical either way).  ``None`` /
        ``"auto"`` keeps the historical ``fast`` dispatch.  An
        ineligible run falls down the chain (compiled → fast →
        reference) with a one-time logged notice.
    seed / streams:
        Randomness source.  A :class:`~repro.des.rng.RandomStreams`
        family (when given) supersedes ``seed`` and draws traffic and
        fault randomness from independent named substreams.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        per-run channel/outcome counters and per-epoch backlog and
        window-size histograms (see ``docs/observability.md``).
        ``None`` or a disabled registry is normalised to ``None`` here,
        so the uninstrumented hot path is bit- and speed-identical to
        the pre-observability code.  Recording never changes a result:
        instrumented runs stay bit-identical to uninstrumented ones.
    fault_model:
        ``None`` (default) runs the classic shared-controller path.  A
        :class:`~repro.faults.FaultModel` — even ``FaultModel.none()`` —
        routes the run through per-station controller replicas
        (:mod:`repro.faults.replicas`); the null model reproduces the
        shared path bit-for-bit, non-null models inject the configured
        channel and station faults.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        arrival_rate: float,
        transmission_slots: int,
        n_stations: int = 200,
        deadline: Optional[float] = None,
        loss_definition: str = "true",
        seed: int = 0,
        workload=None,
        fault_model: Optional[FaultModel] = None,
        streams: Optional[RandomStreams] = None,
        fast: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        backend: Optional[str] = None,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if loss_definition not in ("true", "paper"):
            raise ValueError(f"unknown loss definition: {loss_definition!r}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if backend is not None and backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend: {backend!r} (expected one of {_BACKENDS})"
            )
        self.backend = backend
        self.policy = policy
        self.arrival_rate = arrival_rate
        self.transmission_slots = transmission_slots
        self.deadline = deadline
        self.loss_definition = loss_definition
        if streams is not None:
            self.rng = streams.get("mac-simulator")
            fault_rng = streams.get("faults")
        else:
            self.rng = np.random.default_rng(seed)
            fault_rng = np.random.default_rng(
                np.random.SeedSequence([abs(int(seed)), _FAULT_STREAM_KEY])
            )
        self.workload = workload  # None = homogeneous Poisson at arrival_rate
        self.fast = fast
        # A disabled registry is normalised away so hot loops test one
        # reference against None and nothing else.
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

        self.registry = StationRegistry(n_stations)
        if invariants_enabled():
            # Guard the lazy struct-of-arrays station bookkeeping
            # (O(1) construction at any population size).
            self.registry.check_invariants()
        self.channel = SlottedChannel(self.registry, transmission_slots)
        self.controller = ProtocolController(policy, rng=self.rng)
        self.fault_model = fault_model
        self.bank: Optional[ReplicatedControllerBank] = None
        if fault_model is not None:
            # The root cohort drives *this* controller with *this* rng, so
            # a fault-free replicated run consumes randomness draw-for-draw
            # like the shared path.
            self.bank = ReplicatedControllerBank(
                policy,
                n_stations,
                self.controller,
                fault_model,
                fault_rng,
                transmission_slots,
            )

    # -- arrival generation ------------------------------------------------------

    def _generate_arrivals(self, horizon: float) -> list:
        """Arrival instants from the workload (default: Poisson, uniform
        station assignment)."""
        if self.workload is not None:
            times, stations = self.workload.generate(
                horizon, self.registry.n_stations, self.rng
            )
        else:
            n = self.rng.poisson(self.arrival_rate * horizon)
            times = np.sort(self.rng.uniform(0.0, horizon, size=n))
            stations = self.rng.integers(0, self.registry.n_stations, size=n)
        return [
            Message(arrival=float(t), station=int(s), uid=i)
            for i, (t, s) in enumerate(zip(times, stations))
        ]

    # -- main loop -----------------------------------------------------------------

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> MACSimResult:
        """Simulate ``warmup + horizon`` slots and score the horizon part.

        Messages arriving during warm-up are simulated but not scored.
        Dispatches to the shared-controller path (no fault model) or the
        per-station replica path (fault model given).
        """
        if horizon_slots <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_slots}")
        total_time = warmup_slots + horizon_slots
        if self.bank is not None:
            return self._run_replicated(total_time, warmup_slots)
        backend = self.backend
        if backend == "reference":
            return self._run_shared(total_time, warmup_slots)
        if backend == "compiled":
            from .kernels import compiled

            if compiled.compiled_eligible(self):
                return compiled.run_compiled(self, total_time, warmup_slots)
            logger.info(
                "backend=compiled requested but the run is ineligible "
                "(see compiled_eligible); falling back to the fast-kernel "
                "chain"
            )
        if backend == "fast" or (
            (backend is None or backend == "auto") and self.fast
        ):
            if fastpath.fast_path_available(self):
                return fastpath.run_fast(self, total_time, warmup_slots)
        return self._run_shared(total_time, warmup_slots)

    def _run_shared(self, total_time: float, warmup_slots: float) -> MACSimResult:
        """The classic path: one controller shared by every station (§2)."""
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        controller = self.controller
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()
        # Hot-loop guards (REPRO_CHECK_INVARIANTS): monotone clock and
        # window non-negativity, checked as state evolves rather than
        # inferred from a corrupt merged table downstream.
        check = invariants_enabled()
        last_now = -math.inf
        # Per-epoch instrumentation: one `is not None` test per decision
        # epoch when disabled (never per slot inside a process).
        obs = self.metrics
        if obs is not None:
            epoch_counter = obs.counter("mac.epochs")
            backlog_hist = obs.histogram("mac.backlog.size")
            window_hist = obs.histogram("mac.window.size", unit="slots")

        while channel.now < total_time:
            now = channel.now
            if check:
                require(now > last_now, f"clock stalled at slot {now}")
                last_now = now
            # Ingest arrivals that have occurred.
            while arrival_index < len(arrivals) and arrivals[arrival_index].arrival <= now:
                message = arrivals[arrival_index]
                registry.ingest(message)
                if measured(message):
                    n_measured += 1
                arrival_index += 1

            if obs is not None:
                epoch_counter.inc()
                backlog_hist.observe(len(registry))

            # begin_process applies element 4 to the time axis; mirror it
            # on the message backlog (stations drop their stale messages).
            process = controller.begin_process(now)
            if self.policy.discard_deadline is not None:
                horizon = now - self.policy.discard_deadline
                for message in registry.drop_older_than(horizon):
                    message.fate = MessageFate.DISCARDED_AT_SENDER
                    if measured(message):
                        counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if process is None:
                channel.wait_slot()
                continue

            process_start = now
            if obs is not None:
                window_hist.observe(process.current_span.measure)
            transmitted: Optional[Message] = None
            # §5 priority extension: participation is decided once per
            # windowing process against the initial window.
            eligible = (
                registry.eligible_for_window(process.current_span)
                if registry.has_scaled_stations
                else None
            )
            while not process.done:
                if check:
                    require(
                        process.current_span.measure >= 0.0,
                        f"window span has negative measure at slot {channel.now}",
                    )
                feedback, message = channel.examine(process.current_span, eligible)
                if message is not None:
                    transmitted = message
                process.on_feedback(feedback)
            controller.complete_process(process)

            if transmitted is not None:
                transmitted.process_start = process_start
                registry.remove(transmitted)
                self._score_delivery(
                    transmitted, counts, true_wait, paper_wait, measured
                )

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        if check:
            accounted = (
                counts[MessageFate.DELIVERED_ON_TIME]
                + counts[MessageFate.DELIVERED_LATE]
                + counts[MessageFate.DISCARDED_AT_SENDER]
                + unresolved
            )
            require(
                accounted == n_measured,
                f"message conservation violated: {n_measured} measured "
                f"arrivals but {accounted} accounted for",
            )
        # Retain per-message records (measured interval only) so callers
        # can compute custom breakdowns, e.g. per-station-class loss.
        self.scored_messages = [m for m in arrivals if measured(m)]
        result = MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
        )
        if obs is not None:
            flush_result_metrics(obs, result)
        return result

    def _run_replicated(self, total_time: float, warmup_slots: float) -> MACSimResult:
        """The fault-injected path: per-station controller replicas.

        Structurally mirrors :meth:`_run_shared` — same arrival stream,
        same decision instants, same slot accounting — but every station
        belongs to a replica *cohort* (:mod:`repro.faults.replicas`)
        whose view of the protocol state may diverge under injected
        faults.  Truth (who actually transmitted, what the slot outcome
        physically was, which message was delivered) is resolved against
        the union of all cohorts' enabled stations; each replica then
        observes a possibly corrupted symbol and evolves on its own.

        With ``FaultModel.none()`` exactly one cohort ever exists and
        this loop replays the shared path decision-for-decision,
        producing a bit-identical :class:`MACSimResult` — the regression
        test of the refactor.
        """
        fault_model = self.fault_model
        bank = self.bank
        injector = bank.injector
        arrivals = self._generate_arrivals(total_time)
        arrival_index = 0

        channel = self.channel
        registry = self.registry

        measured = lambda msg: msg.arrival >= warmup_slots  # noqa: E731
        counts = {fate: 0 for fate in MessageFate}
        n_measured = 0
        true_wait = Tally()
        paper_wait = Tally()
        check = invariants_enabled()
        last_now = -math.inf

        def lose_to_fault(message: Message, in_registry: bool = True) -> None:
            if in_registry:
                registry.remove(message)
            message.fate = MessageFate.LOST_TO_FAULT
            if measured(message):
                counts[MessageFate.LOST_TO_FAULT] += 1

        while channel.now < total_time:
            now = channel.now
            if check:
                require(now > last_now, f"clock stalled at slot {now}")
                last_now = now

            # Station-level fault transitions due by now.
            if fault_model.has_station_faults:
                for event, station in injector.poll(now):
                    if event is FaultEvent.CRASH:
                        bank.telemetry.crashes += 1
                        bank.remove_station(station)
                        for message in registry.drop_station(station):
                            lose_to_fault(message, in_registry=False)
                    elif event is FaultEvent.RESTART:
                        bank.telemetry.restarts += 1
                        bank.restore_station(station, now)
                    elif event is FaultEvent.DEAF:
                        bank.telemetry.deaf_events += 1
                        bank.remove_station(station)
                    else:  # HEAR
                        bank.telemetry.deaf_recoveries += 1
                        bank.restore_station(station, now)

            # Decision boundary: some cohort picks its next action at this
            # instant — mirror the shared path's outer-iteration bookkeeping
            # (arrival ingest, begin_process, element-4 backlog drop).
            if bank.any_boundary(now):
                while (
                    arrival_index < len(arrivals)
                    and arrivals[arrival_index].arrival <= now
                ):
                    message = arrivals[arrival_index]
                    if injector.is_crashed(message.station):
                        # Arrivals at a down station are lost with it.
                        lose_to_fault(message, in_registry=False)
                    else:
                        registry.ingest(message)
                    if measured(message):
                        n_measured += 1
                    arrival_index += 1
                bank.begin_processes(now, registry)
                if self.policy.discard_deadline is not None:
                    horizon = now - self.policy.discard_deadline
                    for message in registry.drop_older_than(horizon):
                        message.fate = MessageFate.DISCARDED_AT_SENDER
                        if measured(message):
                            counts[MessageFate.DISCARDED_AT_SENDER] += 1

            if not bank.any_process():
                # Every replica believes there is nothing to do (or is in a
                # listen-only resync epoch): the channel idles one slot.
                channel.wait_slot()
                if fault_model.has_channel_noise:
                    bank.apply_feedback(ChannelFeedback.IDLE, now, lose_to_fault)
                continue

            transmitters = bank.collect_transmitters(now, registry)
            feedback, transmitted = channel.resolve_slot(transmitters)
            if transmitted is not None:
                # Physical delivery is truth, whatever any replica believes.
                transmitted.process_start = bank.cohort_of(
                    transmitted.station
                ).process_start
                registry.remove(transmitted)
                self._score_delivery(
                    transmitted, counts, true_wait, paper_wait, measured
                )
            bank.apply_feedback(feedback, now, lose_to_fault)

        unresolved = sum(
            1 for message in registry.messages_in_span(_everything())
            if measured(message)
        )
        if check:
            accounted = (
                counts[MessageFate.DELIVERED_ON_TIME]
                + counts[MessageFate.DELIVERED_LATE]
                + counts[MessageFate.DISCARDED_AT_SENDER]
                + counts[MessageFate.LOST_TO_FAULT]
                + unresolved
            )
            require(
                accounted == n_measured,
                f"message conservation violated (replicated path): "
                f"{n_measured} measured arrivals but {accounted} accounted for",
            )
        self.scored_messages = [m for m in arrivals if measured(m)]
        result = MACSimResult(
            arrivals=n_measured,
            delivered_on_time=counts[MessageFate.DELIVERED_ON_TIME],
            delivered_late=counts[MessageFate.DELIVERED_LATE],
            discarded=counts[MessageFate.DISCARDED_AT_SENDER],
            unresolved=unresolved,
            mean_true_wait=true_wait.mean,
            mean_paper_wait=paper_wait.mean,
            channel=channel.stats,
            deadline=self.deadline,
            lost_to_faults=counts[MessageFate.LOST_TO_FAULT],
            faults=bank.telemetry,
        )
        # Replica runs flush the end-of-run accounting only: epoch-level
        # histograms describe the shared-controller decision structure,
        # which diverged cohorts do not share.
        if self.metrics is not None:
            flush_result_metrics(self.metrics, result)
        return result

    def _score_delivery(self, message, counts, true_wait, paper_wait, measured) -> None:
        wait = message.wait(self.loss_definition)
        if self.deadline is not None and wait > self.deadline:
            message.fate = MessageFate.DELIVERED_LATE
        else:
            message.fate = MessageFate.DELIVERED_ON_TIME
        if measured(message):
            counts[message.fate] += 1
            true_wait.observe(message.true_wait)
            paper_wait.observe(message.paper_wait)


def _everything():
    """A span covering all representable time (for backlog enumeration)."""
    from ..core.timeline import Span

    return Span(((-math.inf, math.inf),))

"""TDMA baseline (extension — not part of the paper's Figure 7).

Fixed assignment: the frame cycles through all N stations, giving each
one transmission slot of M τ-units per cycle.  TDMA wastes no slots on
collisions but pays the full cycle latency even at light load — the
classic contrast with random access that makes the window protocol
interesting in between.

Besides the simulator, :func:`tdma_loss_probability` gives the exact
analytic loss for Poisson arrivals: each station is an M/D/1 queue with
vacations (service = N·M slots of cycle time), evaluated through the
impatient-queue machinery on the per-station deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queueing.distributions import deterministic_pmf
from ..queueing.mg1 import MG1

__all__ = ["TDMAResult", "TDMASimulator", "tdma_loss_probability"]


@dataclass(frozen=True)
class TDMAResult:
    """Outcome of a TDMA run."""

    arrivals: int
    delivered_on_time: int
    delivered_late: int
    unresolved: int

    @property
    def resolved(self) -> int:
        """Messages with a terminal outcome."""
        return self.arrivals - self.unresolved

    @property
    def loss_fraction(self) -> float:
        """Fraction of resolved messages delivered after the deadline."""
        if self.resolved <= 0:
            return float("nan")
        return self.delivered_late / self.resolved


def tdma_loss_probability(
    arrival_rate: float, transmission_slots: int, n_stations: int, deadline: float
) -> float:
    """Approximate analytic TDMA deadline-miss probability.

    Per-station arrivals are Poisson at λ/N; a station's effective
    service time is one full cycle N·M (it owns one slot per cycle), so
    the wait is that of an M/D/1 queue with service N·M plus a uniform
    initial cycle offset.  The approximation folds the offset into the
    deadline by subtracting the mean N·M/2.
    """
    if n_stations < 1:
        raise ValueError("need at least one station")
    cycle = n_stations * transmission_slots
    per_station_rate = arrival_rate / n_stations
    service = deterministic_pmf(cycle)
    queue = MG1(per_station_rate, service)
    if queue.rho >= 1:
        return 1.0
    effective_deadline = max(0.0, deadline - 0.5 * cycle)
    return queue.wait_survival_at(effective_deadline)


class TDMASimulator:
    """Slot-accurate TDMA with per-station FIFO queues.

    Parameters
    ----------
    arrival_rate:
        Network-wide Poisson rate (messages per slot), spread uniformly
        over stations.
    transmission_slots:
        Message length M; each station owns one M-slot position per
        cycle.
    n_stations:
        Number of stations (cycle length = N·M slots).
    deadline:
        Scoring constraint K.
    """

    def __init__(
        self,
        arrival_rate: float,
        transmission_slots: int,
        n_stations: int,
        deadline: float,
        seed: int = 0,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
        if n_stations < 1:
            raise ValueError("need at least one station")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.arrival_rate = arrival_rate
        self.frame = transmission_slots
        self.n_stations = n_stations
        self.deadline = deadline
        self.rng = np.random.default_rng(seed)

    def run(self, horizon_slots: float, warmup_slots: float = 0.0) -> TDMAResult:
        """Simulate and score messages arriving after the warm-up."""
        total = warmup_slots + horizon_slots
        n = self.rng.poisson(self.arrival_rate * total)
        times = np.sort(self.rng.uniform(0.0, total, size=n))
        stations = self.rng.integers(0, self.n_stations, size=n)

        queues = [[] for _ in range(self.n_stations)]
        next_arrival = 0
        delivered_on_time = delivered_late = 0
        now = 0.0
        turn = 0
        while now < total:
            while next_arrival < n and times[next_arrival] <= now:
                queues[stations[next_arrival]].append(times[next_arrival])
                next_arrival += 1
            queue = queues[turn]
            if queue:
                arrival = queue.pop(0)
                if arrival >= warmup_slots:
                    if now - arrival > self.deadline:
                        delivered_late += 1
                    else:
                        delivered_on_time += 1
            now += self.frame
            turn = (turn + 1) % self.n_stations

        measured = int(np.sum(times >= warmup_slots))
        unresolved = sum(
            1 for queue in queues for arrival in queue if arrival >= warmup_slots
        )
        return TDMAResult(
            arrivals=measured,
            delivered_on_time=delivered_on_time,
            delivered_late=delivered_late,
            unresolved=unresolved,
        )

"""The slotted broadcast channel.

Time is measured in units of the end-to-end propagation delay τ (one
*slot*).  Examining a window costs one slot when the outcome is idle or
collision — the time all stations need to observe the channel state
(§2).  A successful transmission occupies ``transmission_slots`` = M
slots; the success becomes known τ into the transmission, which the slot
accounting absorbs into M (DESIGN.md §7).

The channel also tallies how every slot was spent, giving the
utilization breakdown the paper's §4.2 discussion appeals to (the
controlled protocol never spends transmission slots on messages that are
already late).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.timeline import Span
from ..core.window import ChannelFeedback
from .messages import Message
from .station import StationRegistry

__all__ = ["ChannelStats", "SlottedChannel"]


@dataclass
class ChannelStats:
    """How the channel's slots were spent."""

    idle_slots: float = 0.0
    collision_slots: float = 0.0
    transmission_slots: float = 0.0
    wait_slots: float = 0.0

    @property
    def total_slots(self) -> float:
        """All accounted slots."""
        return (
            self.idle_slots
            + self.collision_slots
            + self.transmission_slots
            + self.wait_slots
        )

    def utilization(self) -> float:
        """Fraction of time spent transmitting."""
        total = self.total_slots
        return self.transmission_slots / total if total else 0.0

    def breakdown(self) -> "Dict[str, float]":
        """Normalized share of slots per category (all zero when empty).

        Unlike reading the per-category counters and dividing by
        :attr:`total_slots` at the call site, this guards the zero-slot
        case uniformly, so callers can render fractions without
        re-implementing the check.
        """
        total = self.total_slots
        if total <= 0:
            return {"idle": 0.0, "collision": 0.0, "transmission": 0.0, "wait": 0.0}
        return {
            "idle": self.idle_slots / total,
            "collision": self.collision_slots / total,
            "transmission": self.transmission_slots / total,
            "wait": self.wait_slots / total,
        }


class SlottedChannel:
    """Drives slot-level time and resolves window examinations.

    Parameters
    ----------
    registry:
        The station registry holding the global backlog.
    transmission_slots:
        Message length M in τ units.
    """

    def __init__(self, registry: StationRegistry, transmission_slots: int):
        if transmission_slots < 1:
            raise ValueError(
                f"transmission must be at least one slot, got {transmission_slots}"
            )
        self.registry = registry
        self.transmission_slots = transmission_slots
        self.now = 0.0
        self.stats = ChannelStats()

    def wait_slot(self) -> None:
        """Let one slot pass with no protocol activity."""
        self.now += 1.0
        self.stats.wait_slots += 1.0

    def examine(
        self,
        span: Span,
        eligible: "Optional[dict]" = None,
    ) -> Tuple[ChannelFeedback, Optional[Message]]:
        """Enable the stations with arrivals in ``span`` and observe.

        Returns the ternary feedback and, on success, the transmitted
        message.  Advances the clock: one slot for idle/collision, M
        slots for a transmission.

        ``eligible`` restricts participation to a fixed station → message
        map established at the start of the windowing process (the §5
        priority extension); ``None`` means every backlogged station
        participates.
        """
        if span.end > self.now + 1e-9:
            raise ValueError(
                f"window end {span.end} lies in the future (now = {self.now})"
            )
        if eligible is None:
            enabled = self.registry.enabled_stations(span)
        else:
            enabled = {
                station: message
                for station, message in eligible.items()
                if span.contains(message.arrival)
            }
        return self.resolve_slot(enabled)

    def resolve_slot(
        self, enabled: "dict"
    ) -> Tuple[ChannelFeedback, Optional[Message]]:
        """Resolve one slot given the already-computed enabled map.

        This is the physical-layer half of :meth:`examine`, split out so
        drivers that compute participation themselves (the fault-injected
        simulator, whose diverged station replicas may each examine a
        *different* span in the same slot) can share the outcome rules
        and the slot accounting.
        """
        if not enabled:
            self.now += 1.0
            self.stats.idle_slots += 1.0
            return ChannelFeedback.IDLE, None
        if len(enabled) == 1:
            (message,) = enabled.values()
            message.tx_start = self.now
            self.now += self.transmission_slots
            self.stats.transmission_slots += self.transmission_slots
            return ChannelFeedback.SUCCESS, message
        self.now += 1.0
        self.stats.collision_slots += 1.0
        return ChannelFeedback.COLLISION, None

"""Grid specs the service accepts, and their expansion to run specs.

A submitted job is one JSON object, ``{"kind": <kind>, ...params}``.
:func:`expand_grid` turns it into the same flat
:class:`~repro.experiments.sweep.MACRunSpec` list the corresponding
experiment driver would run directly — same policies, same seeds, same
ordering — which is the whole durability story: the service's results
are **bit-identical** to a local :class:`SweepExecutor` run of the same
grid, and every cell's journal fingerprint matches across the two.

Expansion is deterministic (a pure function of the payload), so a
restarted server re-expands a recovered job into an identical grid and
resumes it from its journal.

Kinds
-----
``figure7``
    The simulation arms of one Figure-7 panel (controlled/FCFS/LCFS ×
    deadline grid), mirroring
    :func:`repro.experiments.figure7.generate_panel`.
``replicate``
    One protocol arm × N replication seeds, mirroring
    ``repro simulate --replications``.
``feedback``
    The robustness feedback-error sweep (error rate × replication),
    sharing :func:`repro.experiments.robustness.point_spec`.
``stations``
    The station-count sensitivity grid of
    :func:`repro.experiments.sensitivity.station_count_sensitivity`.
``element4``
    The sender-discard ablation of
    :func:`repro.experiments.ablations.element4_ablation`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

from ..core.policy import ControlPolicy
from ..experiments.figure7 import PanelConfig, default_deadlines
from ..experiments.robustness import (
    DEFAULT_ERROR_RATES,
    RobustnessConfig,
    point_spec,
)
from ..experiments.sweep import MACRunSpec, derive_seeds
from ..faults import FaultModel
from ..mac.simulator import MACSimResult

__all__ = ["GRID_KINDS", "expand_grid", "summarize_cell"]

GRID_KINDS = ("figure7", "replicate", "feedback", "stations", "element4")

_PROTOCOLS = {
    "controlled": lambda lam, deadline: ControlPolicy.optimal(deadline, lam),
    "fcfs": lambda lam, deadline: ControlPolicy.uncontrolled_fcfs(lam),
    "lcfs": lambda lam, deadline: ControlPolicy.uncontrolled_lcfs(lam),
    "random": lambda lam, deadline: ControlPolicy.uncontrolled_random(lam),
}


def _require(payload: Dict[str, Any], kind: str, allowed: tuple) -> None:
    unknown = set(payload) - set(allowed) - {"kind", "schema"}
    if unknown:
        raise ValueError(
            f"grid kind {kind!r} does not take parameter(s) "
            f"{', '.join(sorted(unknown))}; allowed: {', '.join(allowed)}"
        )


def _figure7_specs(p: Dict[str, Any]) -> List[MACRunSpec]:
    _require(p, "figure7", ("rho", "m", "deadlines", "horizon", "warmup",
                            "seed", "stations"))
    config = PanelConfig(
        rho_prime=float(p.get("rho", 0.5)),
        message_length=int(p.get("m", 25)),
    )
    deadlines = sorted(
        float(d) for d in p.get("deadlines", default_deadlines(config))
    )
    if not deadlines:
        raise ValueError("figure7 grid needs at least one deadline")
    horizon = float(p.get("horizon", 80_000.0))
    warmup = float(p.get("warmup", horizon * 0.125))
    seed = int(p.get("seed", 1))
    lam = config.arrival_rate
    # Same arm order and flat (arm × deadline) layout as generate_panel.
    arms = [
        lambda K: ControlPolicy.optimal(K, lam),
        lambda K: ControlPolicy.uncontrolled_fcfs(lam),
        lambda K: ControlPolicy.uncontrolled_lcfs(lam),
    ]
    return [
        MACRunSpec(
            policy=factory(deadline),
            arrival_rate=lam,
            transmission_slots=config.message_length,
            horizon=horizon,
            warmup=warmup,
            n_stations=int(p.get("stations", 200)),
            deadline=deadline,
            seed=seed,
        )
        for factory in arms
        for deadline in deadlines
    ]


def _replicate_specs(p: Dict[str, Any]) -> List[MACRunSpec]:
    _require(p, "replicate", ("protocol", "rho", "m", "deadline", "stations",
                              "horizon", "warmup", "seeds", "seed"))
    protocol = str(p.get("protocol", "controlled"))
    if protocol not in _PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; "
            f"expected one of {', '.join(_PROTOCOLS)}"
        )
    m = int(p.get("m", 25))
    lam = float(p.get("rho", 0.5)) / m
    deadline = float(p.get("deadline", 100.0))
    horizon = float(p.get("horizon", 100_000.0))
    warmup = float(p.get("warmup", horizon * 0.125))
    n = int(p.get("seeds", 4))
    policy = _PROTOCOLS[protocol](lam, deadline)
    return [
        MACRunSpec(
            policy=policy,
            arrival_rate=lam,
            transmission_slots=m,
            horizon=horizon,
            warmup=warmup,
            n_stations=int(p.get("stations", 200)),
            deadline=deadline,
            seed=seed,
        )
        for seed in derive_seeds(int(p.get("seed", 1)), n)
    ]


def _robustness_config(p: Dict[str, Any]) -> RobustnessConfig:
    return RobustnessConfig(
        rho_prime=float(p.get("rho", 0.5)),
        message_length=int(p.get("m", 25)),
        deadline_factor=float(p.get("deadline_factor", 3.0)),
        n_stations=int(p.get("stations", 25)),
        horizon=float(p.get("horizon", 60_000.0)),
        n_seeds=int(p.get("seeds", 3)),
        base_seed=int(p.get("seed", 1)),
    )


def _feedback_specs(p: Dict[str, Any]) -> List[MACRunSpec]:
    _require(p, "feedback", ("rho", "m", "deadline_factor", "stations",
                             "horizon", "seeds", "seed", "errors"))
    config = _robustness_config(p)
    error_rates = [float(e) for e in p.get("errors", DEFAULT_ERROR_RATES)]
    for error_rate in error_rates:
        if error_rate < 0:
            raise ValueError(f"error rate must be non-negative, got {error_rate}")
    # Flat (error rate × replication) grid, exactly feedback_error_sweep's.
    return [
        point_spec(
            config,
            (
                FaultModel.feedback_noise(error_rate)
                if error_rate > 0
                else FaultModel.none()
            ),
            config.base_seed + i,
        )
        for error_rate in error_rates
        for i in range(config.n_seeds)
    ]


def _stations_specs(p: Dict[str, Any]) -> List[MACRunSpec]:
    _require(p, "stations", ("station_counts", "rho", "m", "deadline",
                             "horizon", "warmup", "seed"))
    m = int(p.get("m", 25))
    lam = float(p.get("rho", 0.75)) / m
    deadline = float(p.get("deadline", 75.0))
    horizon = float(p.get("horizon", 100_000.0))
    warmup = float(p.get("warmup", 12_000.0))
    seed = int(p.get("seed", 41))
    counts = [int(n) for n in p.get("station_counts", (4, 16, 64, 256))]
    return [
        MACRunSpec(
            policy=ControlPolicy.optimal(deadline, lam),
            arrival_rate=lam,
            transmission_slots=m,
            horizon=horizon,
            warmup=warmup,
            n_stations=n_stations,
            deadline=deadline,
            seed=seed,
        )
        for n_stations in counts
    ]


def _element4_specs(p: Dict[str, Any]) -> List[MACRunSpec]:
    _require(p, "element4", ("rho", "m", "deadline", "horizon", "warmup",
                             "seed"))
    m = int(p.get("m", 25))
    lam = float(p.get("rho", 0.75)) / m
    deadline = float(p.get("deadline", 75.0))
    horizon = float(p.get("horizon", 150_000.0))
    warmup = float(p.get("warmup", 20_000.0))
    seed = int(p.get("seed", 5))
    with_discard = ControlPolicy.optimal(deadline, lam)
    without_discard = replace(
        with_discard, discard_deadline=None, name="no_discard"
    )
    return [
        MACRunSpec(
            policy=policy,
            arrival_rate=lam,
            transmission_slots=m,
            horizon=horizon,
            warmup=warmup,
            deadline=deadline,
            seed=seed,
        )
        for policy in (with_discard, without_discard)
    ]


_EXPANDERS = {
    "figure7": _figure7_specs,
    "replicate": _replicate_specs,
    "feedback": _feedback_specs,
    "stations": _stations_specs,
    "element4": _element4_specs,
}


def expand_grid(grid: Dict[str, Any]) -> List[MACRunSpec]:
    """Expand a JSON grid payload into its flat spec list.

    Raises :class:`ValueError` for an unknown kind, an unknown
    parameter, or a parameter the spec's own validation rejects — all
    *before* any work is dispatched, so a bad submission is refused at
    admission with a message naming the problem.
    """
    if not isinstance(grid, dict):
        raise ValueError("grid must be a JSON object")
    kind = grid.get("kind")
    if kind not in _EXPANDERS:
        raise ValueError(
            f"unknown grid kind {kind!r}; expected one of {', '.join(GRID_KINDS)}"
        )
    try:
        specs = _EXPANDERS[kind](grid)
    except (TypeError,) as error:
        raise ValueError(f"bad {kind} grid: {error}") from error
    if not specs:
        raise ValueError(f"grid kind {kind!r} expanded to zero cells")
    return specs


def summarize_cell(spec: MACRunSpec, result: MACSimResult) -> Dict[str, Any]:
    """JSON-safe per-cell summary of one completed run.

    Floats round-trip through JSON at full shortest-repr precision, so
    two summaries are equal **iff** the underlying loss figures are
    bit-identical — which is how the acceptance tests compare a service
    job against a direct sweep without shipping pickles over the wire.
    """
    return {
        "arm": spec.policy.name,
        "seed": spec.stream_seed if spec.stream_seed is not None else spec.seed,
        "deadline": spec.deadline,
        "n_stations": spec.n_stations,
        "loss_fraction": result.loss_fraction,
        "loss_stderr": result.loss_stderr(),
        "arrivals": result.arrivals,
        "delivered_on_time": result.delivered_on_time,
        "delivered_late": result.delivered_late,
        "discarded": result.discarded,
        "unresolved": result.unresolved,
        "mean_true_wait": result.mean_true_wait,
        "saturated": bool(result.saturated),
    }

"""The job table: every submitted grid, its shards, and their states.

The table is the server's only mutable state that matters across a
crash, so it is tiny, all-JSON, and checkpointed atomically (temp file +
``os.replace``, the journal discipline) on every transition.  Results
never live here — cells are journaled by content-addressed fingerprint
as they complete (:mod:`repro.resilience.journal`), and a finished job's
summaries are rebuilt *from the journal*, which is what makes the table
safe to reload after a SIGKILL: the worst a crash can lose is bookkeeping
that one shard finished, and re-running that shard replays every
completed cell from its journal instead of recomputing it.

States
------
Jobs: ``queued → running → completed`` with terminal ``failed`` and
``cancelled`` branches.  Shards: ``pending → leased → done``; recovery
(and lease expiry) moves ``leased`` back to ``pending``, never loses
``done``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..resilience import fingerprint

__all__ = [
    "JOBS_SCHEMA",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "TERMINAL_STATES",
    "SHARD_PENDING",
    "SHARD_LEASED",
    "SHARD_DONE",
    "ShardRecord",
    "JobRecord",
    "JobTable",
]

#: Job-table layout version; a table written under another version is
#: refused, never silently reinterpreted.
JOBS_SCHEMA = "repro-service-jobs-v1"

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
TERMINAL_STATES = (JOB_COMPLETED, JOB_FAILED, JOB_CANCELLED)

SHARD_PENDING = "pending"
SHARD_LEASED = "leased"
SHARD_DONE = "done"


class JobTableSchemaError(RuntimeError):
    """The state directory holds a job table from a different layout."""


@dataclass
class ShardRecord:
    """One dispatch unit: a slice of a job's grid.

    ``attempts`` counts lease grants and doubles as the fencing token
    source; ``redispatches`` counts grants beyond the first — the
    "how often did robustness machinery actually fire" figure surfaced
    in the metrics report.
    """

    shard_id: int
    spec_indices: List[int]
    state: str = SHARD_PENDING
    attempts: int = 0
    redispatches: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "spec_indices": list(self.spec_indices),
            "state": self.state,
            "attempts": self.attempts,
            "redispatches": self.redispatches,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "ShardRecord":
        return cls(
            shard_id=int(state["shard_id"]),
            spec_indices=[int(i) for i in state["spec_indices"]],
            state=str(state["state"]),
            attempts=int(state.get("attempts", 0)),
            redispatches=int(state.get("redispatches", 0)),
        )


@dataclass
class JobRecord:
    """One submitted grid and the progress of its shards."""

    job_id: str
    grid: Dict[str, Any]
    cells: int
    shards: List[ShardRecord]
    state: str = JOB_QUEUED
    seq: int = 0
    error: Optional[str] = None
    #: Quarantined cells: ``{"index", "reason", "attempts"}`` per hole,
    #: indices into the expanded grid.  A job with holes still completes
    #: — degraded, explicit, never silently truncated.
    holes: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cells_done(self) -> int:
        done = sum(
            len(shard.spec_indices)
            for shard in self.shards
            if shard.state == SHARD_DONE
        )
        return done

    @property
    def all_shards_done(self) -> bool:
        return all(shard.state == SHARD_DONE for shard in self.shards)

    def hole_indices(self) -> List[int]:
        return sorted(hole["index"] for hole in self.holes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "grid": self.grid,
            "cells": self.cells,
            "shards": [shard.to_dict() for shard in self.shards],
            "state": self.state,
            "seq": self.seq,
            "error": self.error,
            "holes": list(self.holes),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(state["job_id"]),
            grid=dict(state["grid"]),
            cells=int(state["cells"]),
            shards=[ShardRecord.from_dict(s) for s in state["shards"]],
            state=str(state["state"]),
            seq=int(state.get("seq", 0)),
            error=state.get("error"),
            holes=list(state.get("holes", [])),
        )

    def snapshot(self) -> Dict[str, Any]:
        """Wire-safe progress view (no results — see the server's
        ``status`` op for those)."""
        return {
            "job_id": self.job_id,
            "kind": self.grid.get("kind"),
            "state": self.state,
            "cells": self.cells,
            "cells_done": self.cells_done,
            "shards": len(self.shards),
            "shards_done": sum(
                1 for shard in self.shards if shard.state == SHARD_DONE
            ),
            "redispatches": sum(shard.redispatches for shard in self.shards),
            "holes": len(self.holes),
            "error": self.error,
        }


class JobTable:
    """All jobs the server knows, checkpointed to one JSON file."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.jobs: Dict[str, JobRecord] = {}
        self._seq = 0

    # -- persistence --------------------------------------------------------------

    @classmethod
    def load(cls, path) -> "JobTable":
        """Read the table at ``path``, or start an empty one."""
        table = cls(path)
        if not table.path.exists():
            return table
        try:
            with open(table.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise JobTableSchemaError(
                f"unreadable job table at {table.path}: {error}"
            ) from error
        schema = state.get("schema")
        if schema != JOBS_SCHEMA:
            raise JobTableSchemaError(
                f"job table at {table.path} has schema {schema!r}, this "
                f"package writes {JOBS_SCHEMA!r}; delete the state "
                "directory or point --state elsewhere"
            )
        for entry in state.get("jobs", []):
            job = JobRecord.from_dict(entry)
            table.jobs[job.job_id] = job
        table._seq = int(state.get("seq", len(table.jobs)))
        return table

    def save(self) -> None:
        """Atomic checkpoint: the table on disk is always a valid whole."""
        payload = json.dumps(
            {
                "schema": JOBS_SCHEMA,
                "seq": self._seq,
                "jobs": [
                    job.to_dict()
                    for job in sorted(self.jobs.values(), key=lambda j: j.seq)
                ],
            },
            indent=2,
        ).encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- mutation -----------------------------------------------------------------

    def submit(
        self, grid: Dict[str, Any], shard_plan: List[List[int]], cells: int
    ) -> JobRecord:
        """Admit one grid; the job id is sequence + content so resubmitting
        the same grid yields distinct, recognisably-related jobs."""
        self._seq += 1
        job_id = f"j{self._seq:04d}-{fingerprint(grid)[:8]}"
        job = JobRecord(
            job_id=job_id,
            grid=grid,
            cells=cells,
            shards=[
                ShardRecord(shard_id=i, spec_indices=list(indices))
                for i, indices in enumerate(shard_plan)
            ],
            seq=self._seq,
        )
        self.jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def recover(self) -> Tuple[int, int]:
        """Post-restart repair: leased shards lost their server, so they
        go back to pending (their journals keep everything completed).

        Returns ``(jobs touched, shards reset)``.
        """
        jobs_touched = 0
        shards_reset = 0
        for job in self.jobs.values():
            if job.state in TERMINAL_STATES:
                continue
            touched = False
            for shard in job.shards:
                if shard.state == SHARD_LEASED:
                    shard.state = SHARD_PENDING
                    shards_reset += 1
                    touched = True
            if touched:
                jobs_touched += 1
        return jobs_touched, shards_reset

    # -- scheduling queries -------------------------------------------------------

    def active_jobs(self) -> List[JobRecord]:
        """Queued or running jobs, in submission order."""
        return sorted(
            (
                job
                for job in self.jobs.values()
                if job.state not in TERMINAL_STATES
            ),
            key=lambda job: job.seq,
        )

    def next_pending(self) -> Optional[Tuple[JobRecord, ShardRecord]]:
        """The next shard to dispatch: FIFO over jobs, index order within."""
        for job in self.active_jobs():
            for shard in job.shards:
                if shard.state == SHARD_PENDING:
                    return job, shard
        return None

    def pending_shards(self) -> int:
        """Current dispatch backlog (the queue-depth signal)."""
        return sum(
            1
            for job in self.active_jobs()
            for shard in job.shards
            if shard.state == SHARD_PENDING
        )

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

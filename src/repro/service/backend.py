"""Shard execution backends: where a leased shard actually runs.

The scheduler hands a backend a :class:`ShardWork` (the specs, their
journal directory, and the lease token) plus a heartbeat callable, and
gets back an awaitable :class:`ShardResult`.  The interface is sized for
a multi-host future — a remote backend would ship the work unit over the
wire and relay heartbeats — but today there is one implementation,
:class:`InProcessBackend`, which runs each shard through a
:class:`~repro.experiments.sweep.SweepExecutor` (and therefore the full
resilience stack: journal resume, retries, pool supervision,
quarantine) on a daemon thread.

Daemon threads rather than a ``ThreadPoolExecutor`` are deliberate: a
truly hung shard (the failure leases exist for) must not block process
exit, and the pool's atexit join would.  The hung thread's lease
expires, the shard is re-dispatched, and the zombie's eventual writes
are fenced out by its stale token.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..experiments.sweep import MACRunSpec, ResilienceOptions, SweepExecutor

__all__ = ["ShardWork", "ShardResult", "Backend", "InProcessBackend"]


@dataclass(frozen=True)
class ShardWork:
    """One dispatch unit: everything a backend needs to run a shard."""

    job_id: str
    shard_id: int
    #: Fencing token (the shard's attempt number at grant time).
    token: int
    specs: Sequence[MACRunSpec]
    #: Per-spec journal fingerprints, aligned with ``specs``.
    fingerprints: Sequence[str]
    #: The job's journal directory — the durability layer the shard
    #: checkpoints into and resumes from.
    journal_dir: str


@dataclass
class ShardResult:
    """What one shard attempt produced (quarantine holes included)."""

    #: Index-aligned with ``work.specs``; ``None`` marks a quarantined cell.
    results: List[Optional[object]] = field(default_factory=list)
    #: ``(position in shard, reason, attempts)`` per quarantined cell.
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    replayed: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0


class Backend:
    """Abstract shard executor.

    Implementations own their concurrency (``slots`` bounds how many
    shards the scheduler dispatches at once) and must call ``heartbeat``
    from any thread as the shard makes progress — the server marshals it
    onto the event loop and renews the lease.
    """

    slots: int = 1

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind to the server's event loop before any dispatch."""
        raise NotImplementedError

    async def run_shard(
        self, work: ShardWork, heartbeat: Callable[[int], None]
    ) -> ShardResult:
        """Execute one shard to completion (or raise)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; running shards may be abandoned."""

    def describe(self) -> str:
        return f"{type(self).__name__}(slots={self.slots})"


class InProcessBackend(Backend):
    """Runs shards in this process, one daemon thread per in-flight shard.

    Each shard gets a fresh :class:`SweepExecutor` pointed at the job's
    journal, so the per-shard semantics — resume, retry on fresh
    workers, quarantine — are exactly the direct-CLI semantics, and a
    re-dispatched shard replays its completed cells instead of
    recomputing them.
    """

    def __init__(
        self,
        slots: int = 2,
        sweep_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.1,
        batch: bool = True,
    ):
        if slots < 1:
            raise ValueError(f"backend slots must be >= 1, got {slots}")
        self.slots = slots
        self.sweep_workers = sweep_workers
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.batch = batch
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._busy = 0

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def free_slots(self) -> int:
        return max(0, self.slots - self._busy)

    def _options(self, journal_dir: str) -> ResilienceOptions:
        return ResilienceOptions(
            checkpoint=journal_dir,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
        )

    def _execute(
        self, work: ShardWork, heartbeat: Callable[[int], None]
    ) -> ShardResult:
        """Thread body: one supervised sweep over the shard's specs."""
        executor = SweepExecutor(
            workers=self.sweep_workers,
            resilience=self._options(work.journal_dir),
            batch=self.batch,
            progress=heartbeat,
        )
        results = executor.run_specs(list(work.specs))
        outcome = executor.last_outcome
        if outcome is None:  # pragma: no cover - run_specs always sets it
            return ShardResult(results=results)
        return ShardResult(
            results=results,
            quarantined=[
                {
                    "position": record.index,
                    "reason": record.reason,
                    "attempts": record.attempts,
                }
                for record in outcome.quarantined
            ],
            replayed=outcome.replayed,
            executed=outcome.executed,
            retries=outcome.retries,
            timeouts=outcome.timeouts,
            pool_restarts=outcome.pool_restarts,
        )

    async def run_shard(
        self, work: ShardWork, heartbeat: Callable[[int], None]
    ) -> ShardResult:
        if self._loop is None:
            raise RuntimeError("backend not started")
        loop = self._loop
        future: asyncio.Future = loop.create_future()

        def safe_heartbeat(cells: int) -> None:
            # Called from the shard thread (or its pool's callback
            # threads); marshal onto the loop where the lease lives.
            loop.call_soon_threadsafe(heartbeat, cells)

        def body() -> None:
            try:
                result = self._execute(work, safe_heartbeat)
            except BaseException as error:  # noqa: BLE001 - relayed, not dropped
                loop.call_soon_threadsafe(_reject, future, error)
            else:
                loop.call_soon_threadsafe(_resolve, future, result)

        self._busy += 1
        thread = threading.Thread(
            target=body,
            name=f"shard-{work.job_id}-{work.shard_id}-t{work.token}",
            daemon=True,
        )
        thread.start()
        try:
            return await future
        finally:
            self._busy -= 1


def _resolve(future: asyncio.Future, result: ShardResult) -> None:
    if not future.done():
        future.set_result(result)


def _reject(future: asyncio.Future, error: BaseException) -> None:
    if not future.done():
        future.set_exception(error)

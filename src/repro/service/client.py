"""Synchronous client for the sweep daemon.

One request is one short-lived TCP connection: resolve the endpoint
file, send a JSON line, read a JSON line, close.  The endpoint is
re-read on **every** request — a restarted server (new ephemeral port,
new pid) is picked up transparently, which is what lets a client
``wait()`` straight through a server crash-and-restart.

Failures are loud and typed: a refused request raises
:class:`~repro.service.wire.ServiceError` with the server's code, and
an unreachable server raises one with code
:data:`~repro.service.wire.UNREACHABLE` — callers distinguish "the
server said no" from "there is no server" without string matching.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional

from .jobs import TERMINAL_STATES
from .wire import (
    MAX_LINE_BYTES,
    UNREACHABLE,
    ServiceError,
    decode,
    encode,
    raise_for,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to one daemon via its state directory's endpoint file."""

    def __init__(self, state_dir, timeout: float = 30.0):
        self.state_dir = Path(state_dir)
        self.timeout = timeout

    @property
    def endpoint_path(self) -> Path:
        return self.state_dir / "endpoint.json"

    def _endpoint(self) -> Dict[str, Any]:
        try:
            with open(self.endpoint_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError as error:
            raise ServiceError(
                UNREACHABLE,
                f"no endpoint at {self.endpoint_path} — is the server "
                "running? (repro serve --state ...)",
            ) from error
        except (OSError, json.JSONDecodeError) as error:
            raise ServiceError(
                UNREACHABLE, f"unreadable endpoint {self.endpoint_path}: {error}"
            ) from error

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One round-trip; returns the ok-response or raises its refusal."""
        endpoint = self._endpoint()
        payload = encode({"op": op, **fields})
        try:
            with socket.create_connection(
                (endpoint["host"], int(endpoint["port"])), timeout=self.timeout
            ) as sock:
                sock.sendall(payload)
                sock.shutdown(socket.SHUT_WR)
                line = _read_line(sock, self.timeout)
        except (ConnectionError, socket.timeout, OSError) as error:
            raise ServiceError(
                UNREACHABLE,
                f"server at {endpoint['host']}:{endpoint['port']} "
                f"unreachable: {error}",
            ) from error
        return raise_for(decode(line))

    # -- operations ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(self, grid: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("submit", grid=grid)

    def status(self, job_id: str, results: bool = False) -> Dict[str, Any]:
        return self.request("status", job_id=job_id, results=results)

    def jobs(self) -> Dict[str, Any]:
        return self.request("jobs")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job_id=job_id)

    def drain(self) -> Dict[str, Any]:
        return self.request("drain")

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.2,
        results: bool = False,
        tolerate_unreachable: bool = True,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        With ``tolerate_unreachable`` (the default) a dead server is
        treated as transient — the job's journals and table survive a
        crash, so waiting through a restart is the normal recovery
        story, not an error.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                response = self.status(job_id, results=results)
            except ServiceError as error:
                if not (tolerate_unreachable and error.code == UNREACHABLE):
                    raise
            else:
                if response["job"]["state"] in TERMINAL_STATES:
                    return response
            if time.monotonic() >= deadline:
                raise ServiceError(
                    UNREACHABLE,
                    f"job {job_id!r} not terminal after {timeout}s",
                )
            time.sleep(poll)


def _read_line(sock: socket.socket, timeout: float) -> bytes:
    """Read one newline-terminated response (bounded size and time)."""
    sock.settimeout(timeout)
    chunks = []
    total = 0
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
        total += len(chunk)
        if chunk.endswith(b"\n"):
            break
        if total > MAX_LINE_BYTES:
            raise ServiceError(
                UNREACHABLE, f"response exceeds {MAX_LINE_BYTES} bytes"
            )
    if not chunks:
        raise ServiceError(UNREACHABLE, "server closed connection mid-request")
    return b"".join(chunks)

"""Wire schema of the sweep service: newline-delimited JSON messages.

One connection carries one request and one response, each a single JSON
object on a single line.  The shape is deliberately tiny — the service
is a *job* daemon, not a streaming API — and versioned: every message
carries ``schema``, and a client or server refuses to talk across a
schema change rather than mis-parse it.

Requests are ``{"schema": ..., "op": <op>, ...}`` with ``op`` one of
:data:`OPS`.  Responses are either ``{"ok": true, ...}`` or a refusal
``{"ok": false, "code": <int>, "error": <str>}`` with HTTP-flavoured
codes (:data:`BAD_REQUEST`, :data:`NOT_FOUND`, :data:`BUSY` for
admission-control shedding, :data:`DRAINING`, :data:`INTERNAL`) — an
explicit rejection the client can surface, never unbounded queueing or
a dropped connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

__all__ = [
    "WIRE_SCHEMA",
    "MAX_LINE_BYTES",
    "OPS",
    "BAD_REQUEST",
    "NOT_FOUND",
    "BUSY",
    "DRAINING",
    "INTERNAL",
    "UNREACHABLE",
    "ServiceError",
    "encode",
    "decode",
    "ok",
    "refusal",
    "parse_request",
    "raise_for",
]

#: Wire layout version; bump on any message-shape change.
WIRE_SCHEMA = "repro-service-v1"

#: Upper bound on one message line (a submit carries a grid spec, not
#: results; anything bigger than this is a malformed or hostile client).
MAX_LINE_BYTES = 1 << 20

#: Operations the server understands.
OPS = ("ping", "submit", "status", "jobs", "cancel", "drain", "metrics")

BAD_REQUEST = 400
NOT_FOUND = 404
BUSY = 429  # admission control: job table full — retry later
DRAINING = 503  # graceful drain in progress: not admitting new work
INTERNAL = 500
UNREACHABLE = 0  # client-side: no server behind the endpoint


class ServiceError(RuntimeError):
    """A refused request (or an unreachable server), with its code."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:  # e.g. "[429] job table full ..."
        return f"[{self.code}] {super().__str__()}"


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a JSON line (schema stamped, newline terminated)."""
    message.setdefault("schema", WIRE_SCHEMA)
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one received line; malformed input is a loud 400, and a
    schema mismatch is refused rather than guessed at."""
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(BAD_REQUEST, f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(BAD_REQUEST, f"malformed message: {error}") from error
    if not isinstance(message, dict):
        raise ServiceError(BAD_REQUEST, "message must be a JSON object")
    schema = message.get("schema")
    if schema != WIRE_SCHEMA:
        raise ServiceError(
            BAD_REQUEST,
            f"message schema {schema!r} does not match {WIRE_SCHEMA!r}",
        )
    return message


def ok(**fields: Any) -> Dict[str, Any]:
    """A success response."""
    return {"schema": WIRE_SCHEMA, "ok": True, **fields}


def refusal(code: int, message: str) -> Dict[str, Any]:
    """An explicit rejection response."""
    return {"schema": WIRE_SCHEMA, "ok": False, "code": code, "error": message}


def parse_request(message: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Validate a decoded request; returns ``(op, message)``."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ServiceError(
            BAD_REQUEST, f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    return op, message


def raise_for(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return a success response, or raise its refusal as an error."""
    if response.get("ok"):
        return response
    raise ServiceError(
        int(response.get("code", INTERNAL)),
        str(response.get("error", "unspecified service error")),
    )

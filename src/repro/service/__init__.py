"""Sweep-as-a-service: a fault-tolerant job daemon over the sweep stack.

``repro serve`` turns the package's sweep machinery into a long-running
daemon: clients submit experiment grids (``repro submit``), the server
shards them by arm fingerprint, dispatches shards to a backend under
TTL **leases** with completion heartbeats, and journals every completed
cell.  The failure story is uniform — a dead worker, a hung shard, or a
SIGKILL'd server all reduce to "some lease expired / some bookkeeping
was lost, and the journal has everything that completed":

* a silent shard's lease expires and it is re-dispatched, resuming
  **bit-identically** from its journal;
* a restarted server reloads its atomically-checkpointed job table,
  returns leased shards to pending, and carries on;
* ``SIGTERM`` drains gracefully — admission stops (503), admitted jobs
  finish, then the server checkpoints and exits 0;
* an overloaded server sheds new jobs with an explicit 429;
* a poison cell is retried then quarantined as an explicit hole, never
  a silent truncation.

Results of a service job are bit-identical to a direct
:class:`~repro.experiments.sweep.SweepExecutor` run of the same grid —
the chaos suite (``tests/service/test_chaos.py``) holds the daemon to
that through worker kills and server restarts.  See ``docs/service.md``.
"""

from .backend import Backend, InProcessBackend, ShardResult, ShardWork
from .client import ServiceClient
from .grids import GRID_KINDS, expand_grid, summarize_cell
from .jobs import JobRecord, JobTable, ShardRecord
from .leases import Lease, LeaseTable
from .server import ServiceConfig, ServiceThread, SweepService, serve
from .wire import ServiceError

__all__ = [
    "Backend",
    "InProcessBackend",
    "ShardWork",
    "ShardResult",
    "ServiceClient",
    "GRID_KINDS",
    "expand_grid",
    "summarize_cell",
    "JobRecord",
    "JobTable",
    "ShardRecord",
    "Lease",
    "LeaseTable",
    "ServiceConfig",
    "SweepService",
    "ServiceThread",
    "serve",
    "ServiceError",
]

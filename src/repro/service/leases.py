"""TTL leases over dispatched shards: the liveness contract.

Dispatch in the service is never fire-and-forget: a shard handed to the
backend is *claimed* under a :class:`Lease` with a wall-clock TTL, and
the executing attempt must keep the lease alive with heartbeats (the
backend renews on every completed cell).  A worker that dies or hangs
stops heartbeating, its lease expires, and the scheduler re-dispatches
the shard — which resumes from the shard's journal bit-identically, so
the crash costs wall-clock but never correctness.

Fencing
-------
Every grant carries a monotonically increasing **token** (the shard's
attempt number).  An abandoned attempt — a hung thread that eventually
wakes up after its lease expired — can no longer renew or complete,
because its token no longer matches: the stale result is discarded at
the door.  Its journal writes are harmless by construction (atomic,
content-addressed, deterministic payloads), so a zombie attempt can
race a live one without corrupting anything.

The table is pure bookkeeping over an injected clock — no asyncio, no
threads — so the expiry/fencing rules are unit-testable with a fake
clock, and the server owns all actual timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One shard claim: who may report results, and until when."""

    job_id: str
    shard_id: int
    token: int
    granted_at: float
    expires_at: float
    ttl: float
    renewals: int = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.job_id, self.shard_id)


class LeaseTable:
    """Live leases, keyed by ``(job_id, shard_id)``.

    At most one lease per shard: granting over an existing claim fences
    out the previous attempt (its token dies with its lease).
    """

    def __init__(self):
        self._leases: Dict[Tuple[str, int], Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def get(self, job_id: str, shard_id: int) -> Optional[Lease]:
        return self._leases.get((job_id, shard_id))

    def grant(
        self, job_id: str, shard_id: int, token: int, ttl: float, now: float
    ) -> Lease:
        """Claim a shard for one attempt; replaces any previous claim."""
        if ttl <= 0:
            raise ValueError(f"lease TTL must be positive, got {ttl}")
        lease = Lease(
            job_id=job_id,
            shard_id=shard_id,
            token=token,
            granted_at=now,
            expires_at=now + ttl,
            ttl=ttl,
        )
        self._leases[lease.key] = lease
        return lease

    def renew(self, job_id: str, shard_id: int, token: int, now: float) -> bool:
        """Heartbeat: push the expiry out by one TTL.

        Returns ``False`` (and changes nothing) for a stale token or a
        shard with no live lease — the fencing rule that locks zombie
        attempts out.
        """
        lease = self._leases.get((job_id, shard_id))
        if lease is None or lease.token != token:
            return False
        lease.expires_at = now + lease.ttl
        lease.renewals += 1
        return True

    def release(self, job_id: str, shard_id: int, token: int) -> bool:
        """Drop a claim on completion; ``False`` if the token is stale
        (the attempt was fenced out and its result must be discarded)."""
        lease = self._leases.get((job_id, shard_id))
        if lease is None or lease.token != token:
            return False
        del self._leases[(job_id, shard_id)]
        return True

    def release_job(self, job_id: str) -> int:
        """Drop every claim of one job (cancellation); returns the count."""
        keys = [key for key in self._leases if key[0] == job_id]
        for key in keys:
            del self._leases[key]
        return len(keys)

    def expire(self, now: float) -> List[Lease]:
        """Pop and return every lease past its expiry."""
        expired = [
            lease for lease in self._leases.values() if lease.expires_at <= now
        ]
        for lease in expired:
            del self._leases[lease.key]
        return expired

"""The sweep daemon: lease-based dispatch, checkpointed jobs, drain.

:class:`SweepService` is a single-threaded asyncio server (all state
mutates on the event loop; backend threads marshal in with
``call_soon_threadsafe``) wrapped around three pieces of bookkeeping:

* the :class:`~repro.service.jobs.JobTable`, checkpointed atomically on
  every transition so a SIGKILL'd server restarts into a consistent
  job table;
* the :class:`~repro.service.leases.LeaseTable` — every dispatched
  shard is claimed under a TTL lease renewed by completion heartbeats,
  so a dead or hung attempt is detected by silence and the shard is
  re-dispatched (resuming from its journal bit-identically);
* a pluggable :class:`~repro.service.backend.Backend` that actually
  runs shards.

Lifecycle
---------
``submit`` is admission-controlled: a full job table is refused with
``429`` and a draining server with ``503`` — explicit shedding, never
unbounded queueing.  ``SIGTERM`` (or the ``drain`` op) starts a
graceful drain: admission stops, admitted jobs run to completion (their
cells journaled as they finish), then the server checkpoints, removes
its endpoint, and exits cleanly.  A crash mid-grid loses only
bookkeeping: on restart, leased shards return to pending, and their
journals replay every completed cell.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..experiments.sweep import (
    DEFAULT_BATCH_CHUNK,
    MACRunSpec,
    plan_shards,
    spec_fingerprint,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NullTracer
from ..resilience import RunJournal
from . import wire
from .backend import Backend, InProcessBackend, ShardWork
from .grids import expand_grid, summarize_cell
from .jobs import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    SHARD_DONE,
    SHARD_LEASED,
    SHARD_PENDING,
    TERMINAL_STATES,
    JobRecord,
    JobTable,
    ShardRecord,
)
from .leases import LeaseTable

__all__ = ["ServiceConfig", "SweepService", "ServiceThread", "serve"]

#: Name of the results layout written under ``<state>/results/``.
RESULTS_SCHEMA = "repro-service-results-v1"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the daemon needs, as primitives (CLI-mappable)."""

    #: Durable state root: job table, endpoint file, journals, results.
    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in endpoint.json
    #: Admission bound: active (non-terminal) jobs beyond this are 429'd.
    max_jobs: int = 8
    #: Lease TTL in seconds.  Renewed on every completed cell, so it
    #: bounds *silence*, not shard runtime: a shard making progress can
    #: run forever; one that stops heartbeating this long is declared
    #: dead and re-dispatched.
    lease_ttl: float = 30.0
    #: Cells per dispatch shard (arm-grouped; see ``plan_shards``).
    shard_size: int = DEFAULT_BATCH_CHUNK
    #: Concurrent in-flight shards.
    backend_slots: int = 2
    #: Worker processes per shard sweep (None = inline).
    sweep_workers: Optional[int] = None
    #: Per-cell wall-clock budget inside a shard (None = unbounded).
    task_timeout: Optional[float] = None
    #: Per-cell retry budget inside a shard (then quarantine).
    max_retries: int = 2
    batch: bool = True
    #: Scheduler tick in seconds (lease expiry + dispatch cadence).
    poll_interval: float = 0.05

    def __post_init__(self):
        if self.max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )

    @property
    def state_path(self) -> Path:
        return Path(self.state_dir)

    @property
    def table_path(self) -> Path:
        return self.state_path / "jobs.json"

    @property
    def endpoint_path(self) -> Path:
        return self.state_path / "endpoint.json"

    def journal_dir(self, job_id: str) -> Path:
        return self.state_path / "journals" / job_id

    def results_path(self, job_id: str) -> Path:
        return self.state_path / "results" / f"{job_id}.json"


class SweepService:
    """One daemon instance.  Create, ``await start()``, ``await
    run_until_stopped()`` — or drive it from :class:`ServiceThread`."""

    def __init__(
        self,
        config: ServiceConfig,
        backend: Optional[Backend] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.config = config
        self.backend = backend or InProcessBackend(
            slots=config.backend_slots,
            sweep_workers=config.sweep_workers,
            task_timeout=config.task_timeout,
            max_retries=config.max_retries,
            batch=config.batch,
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry(False)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.table: Optional[JobTable] = None
        self.leases = LeaseTable()
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        self._started_at = 0.0
        self._drain_started: Optional[float] = None
        self._specs_cache: Dict[str, List[MACRunSpec]] = {}

    # -- lifecycle ----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    #: Counters registered up front, so a metrics report always shows
    #: the whole robustness set — "0 leases expired" is evidence, a
    #: missing counter is ambiguity.
    _COUNTERS = (
        "service.jobs.submitted",
        "service.jobs.completed",
        "service.jobs.failed",
        "service.jobs.cancelled",
        "service.jobs.rejected",
        "service.jobs.recovered",
        "service.shards.dispatched",
        "service.shards.redispatched",
        "service.shards.completed",
        "service.shards.recovered",
        "service.shards.stale_results",
        "service.leases.granted",
        "service.leases.renewed",
        "service.leases.expired",
        "service.cells.executed",
        "service.cells.replayed",
        "service.cells.heartbeats",
    )

    async def start(self) -> None:
        """Recover state, bind the socket, publish the endpoint."""
        self._started_at = time.monotonic()
        for name in self._COUNTERS:
            self.metrics.counter(name)
        self.config.state_path.mkdir(parents=True, exist_ok=True)
        self.table = JobTable.load(self.config.table_path)
        jobs_touched, shards_reset = self.table.recover()
        if shards_reset:
            self.metrics.counter("service.jobs.recovered").inc(jobs_touched)
            self.metrics.counter("service.shards.recovered").inc(shards_reset)
            self.tracer.instant(
                "service.recover", jobs=jobs_touched, shards=shards_reset
            )
        self.table.save()
        loop = asyncio.get_running_loop()
        self.backend.start(loop)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._write_endpoint()
        self._scheduler = loop.create_task(self._schedule_loop())
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or platform without signal support

    def _write_endpoint(self) -> None:
        payload = json.dumps(
            {
                "schema": wire.WIRE_SCHEMA,
                "host": self.config.host,
                "port": self.port,
                "pid": os.getpid(),
            },
            indent=2,
        ).encode()
        tmp = self.config.endpoint_path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, self.config.endpoint_path)

    def initiate_drain(self) -> None:
        """Stop admitting; finish admitted jobs; then stop cleanly."""
        if not self.draining:
            self.draining = True
            self._drain_started = time.monotonic()
            self.tracer.instant("service.drain.start")

    async def run_until_stopped(self) -> None:
        """Block until drain (signal or op) completes."""
        await self._stopped.wait()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.backend.close()
        if self.table is not None:
            self.table.save()
        try:
            self.config.endpoint_path.unlink()
        except OSError:
            pass
        if self._drain_started is not None:
            self.metrics.gauge("service.drain.wall_s", unit="s").set(
                time.monotonic() - self._drain_started
            )
        self.tracer.instant("service.drain.done")
        self._stopped.set()

    # -- scheduler ----------------------------------------------------------------

    async def _schedule_loop(self) -> None:
        try:
            while True:
                dirty = self._expire_leases()
                dirty = self._dispatch() or dirty
                dirty = self._sweep_finalizable() or dirty
                if dirty:
                    self.table.save()
                self.metrics.gauge("service.queue.depth").set(
                    self.table.pending_shards()
                )
                if self.draining and self._drained():
                    await self._shutdown()
                    return
                await asyncio.sleep(self.config.poll_interval)
        except asyncio.CancelledError:  # pragma: no cover - teardown path
            raise

    def _drained(self) -> bool:
        return not self.table.active_jobs() and len(self.leases) == 0

    def _expire_leases(self) -> bool:
        """Declare silent attempts dead; their shards go back to pending."""
        expired = self.leases.expire(time.monotonic())
        for lease in expired:
            self.metrics.counter("service.leases.expired").inc()
            self.tracer.instant(
                "service.lease.expired",
                job=lease.job_id,
                shard=lease.shard_id,
                token=lease.token,
            )
            job = self.table.get(lease.job_id)
            if job is None or job.state in TERMINAL_STATES:
                continue
            shard = job.shards[lease.shard_id]
            if shard.state == SHARD_LEASED and shard.attempts == lease.token:
                shard.state = SHARD_PENDING
        return bool(expired)

    def _dispatch(self) -> bool:
        """Hand pending shards to the backend while it has slots."""
        dirty = False
        free = getattr(self.backend, "free_slots", self.backend.slots)
        while free > 0:
            nxt = self.table.next_pending()
            if nxt is None:
                break
            job, shard = nxt
            self._dispatch_shard(job, shard)
            dirty = True
            free -= 1
        return dirty

    def _dispatch_shard(self, job: JobRecord, shard: ShardRecord) -> None:
        shard.attempts += 1
        shard.state = SHARD_LEASED
        if shard.attempts > 1:
            shard.redispatches += 1
            self.metrics.counter("service.shards.redispatched").inc()
        if job.state == JOB_QUEUED:
            job.state = JOB_RUNNING
        lease = self.leases.grant(
            job.job_id,
            shard.shard_id,
            token=shard.attempts,
            ttl=self.config.lease_ttl,
            now=time.monotonic(),
        )
        self.metrics.counter("service.leases.granted").inc()
        self.metrics.counter("service.shards.dispatched").inc()
        specs = self._job_specs(job)
        shard_specs = [specs[i] for i in shard.spec_indices]
        work = ShardWork(
            job_id=job.job_id,
            shard_id=shard.shard_id,
            token=lease.token,
            specs=shard_specs,
            fingerprints=[spec_fingerprint(s) for s in shard_specs],
            journal_dir=str(self.config.journal_dir(job.job_id)),
        )
        asyncio.get_running_loop().create_task(self._run_shard(work))

    def _job_specs(self, job: JobRecord) -> List[MACRunSpec]:
        """Expansion is deterministic, so recovered jobs re-expand to
        the exact grid (and journal keys) they were submitted as."""
        if job.job_id not in self._specs_cache:
            self._specs_cache[job.job_id] = expand_grid(job.grid)
        return self._specs_cache[job.job_id]

    async def _run_shard(self, work: ShardWork) -> None:
        def heartbeat(cells: int) -> None:
            if self.leases.renew(
                work.job_id, work.shard_id, work.token, time.monotonic()
            ):
                self.metrics.counter("service.leases.renewed").inc()
                self.metrics.counter("service.cells.heartbeats").inc()

        with self.tracer.span(
            "service.shard",
            job=work.job_id,
            shard=work.shard_id,
            token=work.token,
            cells=len(work.specs),
        ):
            try:
                result = await self.backend.run_shard(work, heartbeat)
            except Exception as error:  # noqa: BLE001 - infra failure -> job fails
                self._shard_infra_failure(work, error)
                return
        self._shard_finished(work, result)

    def _shard_infra_failure(self, work: ShardWork, error: Exception) -> None:
        """An exception *around* the sweep (schema error, backend bug) —
        distinct from cell failures, which the sweep retries and
        quarantines internally.  Fail the job loudly."""
        if not self.leases.release(work.job_id, work.shard_id, work.token):
            return  # a newer attempt owns this shard now
        job = self.table.get(work.job_id)
        if job is None or job.state in TERMINAL_STATES:
            return
        job.state = JOB_FAILED
        job.error = f"shard {work.shard_id}: {type(error).__name__}: {error}"
        self.leases.release_job(job.job_id)
        self.metrics.counter("service.jobs.failed").inc()
        self.table.save()

    def _shard_finished(self, work: ShardWork, result) -> None:
        if not self.leases.release(work.job_id, work.shard_id, work.token):
            # Fenced out: the lease expired (or was re-granted) while we
            # ran.  The attempt's journal writes are still valid — only
            # its bookkeeping is discarded.
            self.metrics.counter("service.shards.stale_results").inc()
            return
        job = self.table.get(work.job_id)
        if job is None or job.state in TERMINAL_STATES:
            return
        shard = job.shards[work.shard_id]
        shard.state = SHARD_DONE
        self.metrics.counter("service.shards.completed").inc()
        self.metrics.counter("service.cells.executed").inc(result.executed)
        self.metrics.counter("service.cells.replayed").inc(result.replayed)
        if result.retries:
            self.metrics.counter("service.sweep.retries").inc(result.retries)
        if result.timeouts:
            self.metrics.counter("service.sweep.timeouts").inc(result.timeouts)
        if result.pool_restarts:
            self.metrics.counter("service.sweep.pool_restarts").inc(
                result.pool_restarts
            )
        known = {hole["index"] for hole in job.holes}
        for record in result.quarantined:
            index = shard.spec_indices[int(record["position"])]
            if index not in known:
                job.holes.append(
                    {
                        "index": index,
                        "reason": str(record["reason"]),
                        "attempts": int(record["attempts"]),
                    }
                )
        if job.all_shards_done:
            self._finalize(job)
        self.table.save()

    def _finalize(self, job: JobRecord) -> None:
        """Rebuild the job's summaries *from its journal* and write the
        results file.  Journal-sourced (not accumulated in memory), so
        finalization works identically for a job finished across a
        server restart."""
        specs = self._job_specs(job)
        journal = RunJournal(self.config.journal_dir(job.job_id))
        known = {hole["index"] for hole in job.holes}
        summaries: List[Optional[Dict[str, Any]]] = []
        for index, spec in enumerate(specs):
            hit, value = journal.get(spec_fingerprint(spec))
            if hit:
                summaries.append(summarize_cell(spec, value))
            else:
                summaries.append(None)
                if index not in known:
                    job.holes.append(
                        {
                            "index": index,
                            "reason": "missing from journal at finalize",
                            "attempts": 0,
                        }
                    )
                    known.add(index)
        payload = {
            "schema": RESULTS_SCHEMA,
            "job_id": job.job_id,
            "grid": job.grid,
            "cells": job.cells,
            "holes": job.holes,
            "summaries": summaries,
        }
        path = self.config.results_path(job.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        os.replace(tmp, path)
        job.state = JOB_COMPLETED
        self.metrics.counter("service.jobs.completed").inc()
        self.tracer.instant(
            "service.job.completed", job=job.job_id, holes=len(job.holes)
        )
        self._specs_cache.pop(job.job_id, None)

    def _sweep_finalizable(self) -> bool:
        """Catch jobs whose last shard finished just before a crash:
        all shards done, not yet finalized."""
        dirty = False
        for job in self.table.active_jobs():
            if job.shards and job.all_shards_done:
                self._finalize(job)
                dirty = True
        return dirty

    # -- wire ops -----------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                line = await reader.readline()
                if not line:
                    return
                op, message = wire.parse_request(wire.decode(line))
                response = self._handle_op(op, message)
            except wire.ServiceError as error:
                response = wire.refusal(error.code, str(error.args[0]))
            except Exception as error:  # noqa: BLE001 - never drop a connection
                response = wire.refusal(
                    wire.INTERNAL, f"{type(error).__name__}: {error}"
                )
            writer.write(wire.encode(response))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _handle_op(self, op: str, message: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return wire.ok(
                pid=os.getpid(),
                draining=self.draining,
                uptime_s=time.monotonic() - self._started_at,
                jobs=self.table.counts(),
                leases=len(self.leases),
                backend=self.backend.describe(),
            )
        if op == "submit":
            return self._op_submit(message)
        if op == "status":
            return self._op_status(message)
        if op == "jobs":
            return wire.ok(
                jobs=[
                    job.snapshot()
                    for job in sorted(
                        self.table.jobs.values(), key=lambda j: j.seq
                    )
                ]
            )
        if op == "cancel":
            return self._op_cancel(message)
        if op == "drain":
            self.initiate_drain()
            return wire.ok(draining=True, active=len(self.table.active_jobs()))
        if op == "metrics":
            snapshot = self.metrics.to_dict() if self.metrics.enabled else None
            return wire.ok(metrics=snapshot)
        raise wire.ServiceError(wire.BAD_REQUEST, f"unhandled op {op!r}")

    def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self.draining:
            raise wire.ServiceError(
                wire.DRAINING, "server is draining; not admitting new jobs"
            )
        active = len(self.table.active_jobs())
        if active >= self.config.max_jobs:
            self.metrics.counter("service.jobs.rejected").inc()
            raise wire.ServiceError(
                wire.BUSY,
                f"job table full ({active}/{self.config.max_jobs} active); "
                "retry after a job completes",
            )
        grid = message.get("grid")
        try:
            specs = expand_grid(grid)
        except ValueError as error:
            raise wire.ServiceError(wire.BAD_REQUEST, str(error)) from error
        shard_plan = plan_shards(specs, self.config.shard_size)
        job = self.table.submit(dict(grid), shard_plan, cells=len(specs))
        self._specs_cache[job.job_id] = specs
        self.table.save()
        self.metrics.counter("service.jobs.submitted").inc()
        self.tracer.instant(
            "service.job.submitted",
            job=job.job_id,
            cells=len(specs),
            shards=len(shard_plan),
        )
        return wire.ok(
            job_id=job.job_id, cells=len(specs), shards=len(shard_plan)
        )

    def _require_job(self, message: Dict[str, Any]) -> JobRecord:
        job_id = message.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise wire.ServiceError(wire.BAD_REQUEST, "job_id is required")
        job = self.table.get(job_id)
        if job is None:
            raise wire.ServiceError(wire.NOT_FOUND, f"no such job {job_id!r}")
        return job

    def _op_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self._require_job(message)
        response = wire.ok(job=job.snapshot())
        results_path = self.config.results_path(job.job_id)
        if job.state == JOB_COMPLETED and results_path.exists():
            response["results_path"] = str(results_path)
            if message.get("results"):
                with open(results_path, "r", encoding="utf-8") as handle:
                    response["results"] = json.load(handle)
        return response

    def _op_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job = self._require_job(message)
        if job.state in TERMINAL_STATES:
            return wire.ok(job_id=job.job_id, state=job.state, already=True)
        job.state = JOB_CANCELLED
        released = self.leases.release_job(job.job_id)
        self.table.save()
        self.metrics.counter("service.jobs.cancelled").inc()
        self._specs_cache.pop(job.job_id, None)
        return wire.ok(job_id=job.job_id, state=job.state, leases_released=released)


async def serve(
    config: ServiceConfig,
    backend: Optional[Backend] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> None:
    """Run one daemon to drain completion (the ``repro serve`` body)."""
    service = SweepService(config, backend=backend, metrics=metrics, tracer=tracer)
    await service.start()
    await service.run_until_stopped()


class ServiceThread:
    """A daemon on a background thread with its own event loop.

    Test and embedding helper: ``start()`` returns once the endpoint is
    published; ``drain()`` asks for graceful shutdown and joins.  The
    service object itself must only be touched via its wire interface
    (or ``call_soon_threadsafe``) — its state lives on the loop thread.
    """

    def __init__(
        self,
        config: ServiceConfig,
        backend: Optional[Backend] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        import threading

        self.config = config
        self.service = SweepService(
            config, backend=backend, metrics=metrics, tracer=tracer
        )
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="sweep-service", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self._main())
        except RuntimeError:
            pass  # kill(): loop stopped mid-run — the simulated crash
        finally:
            self.loop.close()

    async def _main(self) -> None:
        try:
            await self.service.start()
        except BaseException as error:  # noqa: BLE001 - surfaced in start()
            self._startup_error = error
            self._ready.set()
            raise
        self._ready.set()
        await self.service.run_until_stopped()

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def drain(self, timeout: float = 60.0) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.service.initiate_drain)
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("service did not drain in time")

    def kill(self, timeout: float = 10.0) -> None:
        """Simulated crash: stop the loop with no drain, no checkpoint
        flush, no endpoint cleanup — what SIGKILL leaves behind.  The
        chaos tests restart a fresh service on the same state dir and
        require full recovery."""
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("service loop did not stop in time")

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain()

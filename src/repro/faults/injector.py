"""Slot- and station-level fault injection.

:class:`FaultInjector` turns a :class:`~repro.faults.model.FaultModel`
into concrete events against a station population:

* **station health** — crashes, restarts, deaf periods and recoveries
  are scheduled *event-driven* (exponential inter-event times kept in a
  heap) rather than by per-slot Bernoulli draws, so a 100k-slot run with
  rare faults costs a handful of draws instead of millions;
* **feedback observation** — per-slot corruption of the true ternary
  symbol, vectorized over the observing stations (one uniform vector per
  slot when a confusion probability is positive, zero draws otherwise).

The injector owns its own random generator, independent of the
simulation's arrival/policy stream, so enabling faults never perturbs
the underlying traffic sample path (common-random-numbers across fault
configurations — and bit-identical zero-fault runs).
"""

from __future__ import annotations

import enum
import heapq
from typing import Iterable, List, Tuple

import numpy as np

from ..core.window import ChannelFeedback
from .model import FaultModel

__all__ = ["StationHealth", "FaultEvent", "FaultInjector"]


class StationHealth(enum.Enum):
    """Health state of one station."""

    UP = "up"
    CRASHED = "crashed"
    DEAF = "deaf"


class FaultEvent(enum.Enum):
    """Station-level fault transitions reported by :meth:`FaultInjector.poll`."""

    CRASH = "crash"
    RESTART = "restart"
    DEAF = "deaf"
    HEAR = "hear"


class FaultInjector:
    """Stateful fault source for one simulation run.

    Parameters
    ----------
    model:
        The fault configuration.
    n_stations:
        Station population size.
    rng:
        Dedicated generator (keep it separate from the traffic stream).
    """

    def __init__(self, model: FaultModel, n_stations: int, rng: np.random.Generator):
        self.model = model
        self.n_stations = n_stations
        self.rng = rng
        self.health: List[StationHealth] = [StationHealth.UP] * n_stations
        self._events: List[Tuple[float, int, int, FaultEvent]] = []
        self._seq = 0
        self._down = 0
        if model.crash_rate > 0:
            for station in range(n_stations):
                self._schedule(0.0, model.crash_rate, station, FaultEvent.CRASH)
        if model.deaf_rate > 0:
            for station in range(n_stations):
                self._schedule(0.0, model.deaf_rate, station, FaultEvent.DEAF)

    # -- station health -------------------------------------------------------

    def _schedule(self, now: float, rate: float, station: int, event: FaultEvent):
        delay = self.rng.exponential(1.0 / rate)
        self._push(now + delay, station, event)

    def _push(self, when: float, station: int, event: FaultEvent) -> None:
        heapq.heappush(self._events, (when, self._seq, station, event))
        self._seq += 1

    def poll(self, now: float) -> List[Tuple[FaultEvent, int]]:
        """Pop and apply every station transition due by ``now``.

        Returns the applied ``(event, station)`` pairs in time order so
        the simulator can mirror them (drop a crashed backlog, reset a
        recovered replica).  Impossible transitions — e.g. a deaf onset
        scheduled for a station that crashed in the meantime — are
        silently rescheduled.
        """
        model = self.model
        applied: List[Tuple[FaultEvent, int]] = []
        while self._events and self._events[0][0] <= now:
            _, _, station, event = heapq.heappop(self._events)
            state = self.health[station]
            if event is FaultEvent.CRASH:
                if state is not StationHealth.UP:
                    self._schedule(now, model.crash_rate, station, FaultEvent.CRASH)
                    continue
                self.health[station] = StationHealth.CRASHED
                self._down += 1
                downtime = 1.0 + self.rng.exponential(max(model.mean_downtime, 1.0))
                self._push(now + downtime, station, FaultEvent.RESTART)
            elif event is FaultEvent.RESTART:
                self.health[station] = StationHealth.UP
                self._down -= 1
                self._schedule(now, model.crash_rate, station, FaultEvent.CRASH)
            elif event is FaultEvent.DEAF:
                if state is not StationHealth.UP:
                    self._schedule(now, model.deaf_rate, station, FaultEvent.DEAF)
                    continue
                self.health[station] = StationHealth.DEAF
                self._down += 1
                span = 1.0 + self.rng.exponential(max(model.mean_deaf_slots, 1.0))
                self._push(now + span, station, FaultEvent.HEAR)
            else:  # HEAR
                if self.health[station] is not StationHealth.DEAF:
                    continue  # crashed while deaf; the restart path re-arms
                self.health[station] = StationHealth.UP
                self._down -= 1
                self._schedule(now, model.deaf_rate, station, FaultEvent.DEAF)
            applied.append((event, station))
        return applied

    @property
    def any_down(self) -> bool:
        """Whether any station is currently crashed or deaf."""
        return self._down > 0

    def is_up(self, station: int) -> bool:
        """Whether the station is fully operational."""
        return self.health[station] is StationHealth.UP

    def is_crashed(self, station: int) -> bool:
        """Whether the station is down (loses arrivals and backlog)."""
        return self.health[station] is StationHealth.CRASHED

    # -- feedback observation --------------------------------------------------

    def observe(
        self, feedback: ChannelFeedback, n_observers: int
    ) -> List[ChannelFeedback]:
        """Per-station observations of one slot's true feedback symbol.

        Vectorized: a single uniform draw of size ``n_observers`` when a
        confusion applies, no draws when the true symbol cannot be
        confused under the model.
        """
        pairs = self.model.confusion_for(feedback)
        if all(p == 0.0 for p, _ in pairs):
            return [feedback] * n_observers
        u = self.rng.random(n_observers)
        observed: List[ChannelFeedback] = []
        for ui in u:
            symbol = feedback
            threshold = 0.0
            for p, corrupted in pairs:
                threshold += p
                if ui < threshold:
                    symbol = corrupted
                    break
            observed.append(symbol)
        return observed

    def observe_broadcast(self, feedback: ChannelFeedback) -> ChannelFeedback:
        """One shared (possibly corrupted) observation for all stations."""
        return self.model.corrupt(feedback, self.rng)

    def hearing(self, stations: Iterable[int]) -> List[int]:
        """The subset of ``stations`` currently able to hear feedback."""
        return [s for s in stations if self.health[s] is StationHealth.UP]

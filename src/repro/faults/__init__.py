"""Fault injection and graceful protocol degradation.

The paper's protocol assumes error-free ternary feedback and therefore
perfectly replicated protocol state.  This package quantifies and
hardens the reproduction against that assumption breaking:

- :mod:`~repro.faults.model` — the fault taxonomy
  (:class:`FaultModel`): slot-feedback confusion, station crashes,
  deaf periods, plus the re-synchronization parameters;
- :mod:`~repro.faults.injector` — :class:`FaultInjector`, the
  event-driven fault source;
- :mod:`~repro.faults.replicas` — :class:`ReplicatedControllerBank`,
  per-station protocol replicas grouped into agreement cohorts, with
  divergence detection and bounded re-synchronization.

Pass a :class:`FaultModel` to
:class:`~repro.mac.simulator.WindowMACSimulator` to route a simulation
through the replica machinery; ``FaultModel.none()`` reproduces the
shared-controller results bit-for-bit.  See ``docs/robustness.md``.
"""

from .feedback import RECOVERY_POLICIES, FeedbackFaultModel, FeedbackFaultState
from .injector import FaultEvent, FaultInjector, StationHealth
from .model import FaultModel, FaultTelemetry
from .replicas import ReplicaCohort, ReplicatedControllerBank

__all__ = [
    "FaultModel",
    "FaultTelemetry",
    "FeedbackFaultModel",
    "FeedbackFaultState",
    "RECOVERY_POLICIES",
    "FaultInjector",
    "FaultEvent",
    "StationHealth",
    "ReplicaCohort",
    "ReplicatedControllerBank",
]

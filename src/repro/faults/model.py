"""Fault taxonomy for the multiple-access channel (see docs/robustness.md).

The paper's protocol (§2) rests on one strong assumption: every station
observes an *error-free* ternary feedback signal and therefore maintains
an identical replica of the shared protocol state.  :class:`FaultModel`
describes the ways that assumption breaks in a real deployment:

**Slot-level channel impairments** — each examination slot's feedback
symbol may be mis-observed, independently per station (the default) or
identically by everyone (``observation="broadcast"``):

* ``p_idle_as_collision`` — noise on an empty slot is read as energy;
* ``p_collision_as_idle`` — colliding signals cancel below the carrier
  threshold;
* ``p_success_as_collision`` — a successful transmission fails to decode
  at an observer (receiver noise);
* ``p_collision_as_success`` — one colliding signal dominates and is
  captured as if it were alone (the capture effect).

**Station-level faults**:

* crashes — a station dies with its backlog (per-slot hazard
  ``crash_rate``) and restarts after an exponential downtime with a
  cold protocol state;
* deafness — a station temporarily misses feedback slots (per-slot
  hazard ``deaf_rate``); unlike corruption it *knows* it lost symbols
  and must re-synchronize when it recovers.

**Resilience parameters** — the bounded re-synchronization mechanism of
:mod:`repro.faults.replicas`: a replica that detects divergence resets
its unresolved set to ``[now − K, now]`` (policy element 4 discards
anything older anyway, so the reset is safe) and listens without
transmitting for ``resync_listen_slots`` before rejoining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.window import ChannelFeedback

__all__ = ["FaultModel", "FaultTelemetry"]

_PROB_FIELDS = (
    "p_idle_as_collision",
    "p_collision_as_idle",
    "p_success_as_collision",
    "p_collision_as_success",
)


@dataclass(frozen=True)
class FaultModel:
    """Slot- and station-level fault configuration (see module docstring).

    ``FaultModel.none()`` — the all-zero configuration — still routes the
    simulation through the per-station replica machinery, which is how
    the test suite proves that machinery behavior-preserving.
    """

    p_idle_as_collision: float = 0.0
    p_collision_as_idle: float = 0.0
    p_success_as_collision: float = 0.0
    p_collision_as_success: float = 0.0
    observation: str = "per-station"  # or "broadcast"
    crash_rate: float = 0.0
    mean_downtime: float = 200.0
    deaf_rate: float = 0.0
    mean_deaf_slots: float = 50.0
    resync_horizon: Optional[float] = None
    resync_listen_slots: float = 4.0
    resync_timeout_slots: Optional[float] = None
    #: Divergence-recovery policy applied when a replica resyncs:
    #: ``"gated-rejoin"`` (the historical behavior — listen without
    #: transmitting for ``resync_listen_slots`` before rejoining),
    #: ``"reset-to-epoch"`` (rejoin immediately with the conservatively
    #: reset state), or ``"drop-out"`` (additionally destroy the
    #: station's pending backlog before rejoining).
    recovery: str = "gated-rejoin"
    #: Split depth beyond which a replica declares itself diverged.  A
    #: fault-free split needs >= 2 arrivals in the span, so depth d means
    #: two arrivals within (window / 2^d) of each other — at 40 that is
    #: astronomically unlikely, while a corrupted idle-descent marches
    #: past it quickly (and must be stopped before float resolution
    #: degenerates the span, around depth ~48 for realistic horizons).
    max_split_depth: int = 40

    def __post_init__(self):
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.p_collision_as_idle + self.p_collision_as_success > 1.0:
            raise ValueError(
                "collision confusion probabilities must sum to at most 1"
            )
        if self.observation not in ("per-station", "broadcast"):
            raise ValueError(f"unknown observation mode: {self.observation!r}")
        for name in ("crash_rate", "deaf_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("mean_downtime", "mean_deaf_slots", "resync_listen_slots"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.resync_horizon is not None and self.resync_horizon <= 0:
            raise ValueError(
                f"resync horizon must be positive, got {self.resync_horizon}"
            )
        if self.resync_timeout_slots is not None and self.resync_timeout_slots <= 0:
            raise ValueError(
                f"resync timeout must be positive, got {self.resync_timeout_slots}"
            )
        if self.max_split_depth < 1:
            raise ValueError(
                f"max split depth must be at least 1, got {self.max_split_depth}"
            )
        if self.recovery not in ("reset-to-epoch", "gated-rejoin", "drop-out"):
            raise ValueError(
                "recovery must be one of ('reset-to-epoch', 'gated-rejoin', "
                f"'drop-out'), got {self.recovery!r}"
            )

    # -- factories -----------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultModel":
        """The fault-free configuration (exercises the replica path)."""
        return cls()

    @classmethod
    def feedback_noise(
        cls, error_rate: float, observation: str = "per-station"
    ) -> "FaultModel":
        """Symmetric feedback noise: every confusion occurs at ``error_rate``.

        The single knob used by the degradation sweep
        (:mod:`repro.experiments.robustness`).  Collision feedback has two
        confusion targets, so ``error_rate`` must be at most 0.5.
        """
        if not 0.0 <= error_rate <= 0.5:
            raise ValueError(
                f"symmetric error rate must be in [0, 0.5], got {error_rate}"
            )
        return cls(
            p_idle_as_collision=error_rate,
            p_collision_as_idle=error_rate,
            p_success_as_collision=error_rate,
            p_collision_as_success=error_rate,
            observation=observation,
        )

    # -- queries -------------------------------------------------------------

    @property
    def has_channel_noise(self) -> bool:
        """Whether any feedback confusion probability is positive."""
        return any(getattr(self, name) > 0 for name in _PROB_FIELDS)

    @property
    def has_station_faults(self) -> bool:
        """Whether stations can crash or go deaf."""
        return self.crash_rate > 0 or self.deaf_rate > 0

    @property
    def is_null(self) -> bool:
        """Whether the model injects no faults at all."""
        return not (self.has_channel_noise or self.has_station_faults)

    def confusion_for(
        self, feedback: ChannelFeedback
    ) -> "tuple[tuple[float, ChannelFeedback], ...]":
        """(probability, corrupted symbol) pairs applicable to a true symbol."""
        if feedback is ChannelFeedback.IDLE:
            return ((self.p_idle_as_collision, ChannelFeedback.COLLISION),)
        if feedback is ChannelFeedback.SUCCESS:
            return ((self.p_success_as_collision, ChannelFeedback.COLLISION),)
        return (
            (self.p_collision_as_idle, ChannelFeedback.IDLE),
            (self.p_collision_as_success, ChannelFeedback.SUCCESS),
        )

    def corrupt(
        self, feedback: ChannelFeedback, rng: np.random.Generator
    ) -> ChannelFeedback:
        """One observer's (possibly corrupted) reading of a true symbol.

        Draws from ``rng`` only when a confusion applicable to
        ``feedback`` has positive probability, so a null model consumes
        no randomness.
        """
        pairs = self.confusion_for(feedback)
        if all(p == 0.0 for p, _ in pairs):
            return feedback
        u = rng.random()
        threshold = 0.0
        for p, symbol in pairs:
            threshold += p
            if u < threshold:
                return symbol
        return feedback


@dataclass
class FaultTelemetry:
    """Counters describing what the fault layer did during one run.

    Attached to :class:`repro.mac.MACSimResult` (excluded from equality
    comparisons) so experiments can report resilience behavior alongside
    loss figures.
    """

    crashes: int = 0
    restarts: int = 0
    deaf_events: int = 0
    deaf_recoveries: int = 0
    corrupted_observations: int = 0
    cohort_splits: int = 0
    cohort_merges: int = 0
    resyncs: int = 0
    phantom_deliveries: int = 0
    peak_cohorts: int = 1
    # Feedback-channel error families (repro.faults.feedback) and the
    # divergence-recovery policies share this record.
    jam_bursts: int = 0
    jam_slots: int = 0
    missed_feedback: int = 0
    divergence_detections: int = 0
    diverged_slots: float = 0.0
    faded_frames: int = 0
    dropped_messages: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"corrupted={self.corrupted_observations} splits={self.cohort_splits} "
            f"merges={self.cohort_merges} resyncs={self.resyncs} "
            f"crashes={self.crashes} deaf={self.deaf_events} "
            f"phantom={self.phantom_deliveries} peak_cohorts={self.peak_cohorts} "
            f"missed={self.missed_feedback} jams={self.jam_bursts} "
            f"faded={self.faded_frames} dropped={self.dropped_messages} "
            f"diverged_slots={self.diverged_slots:g}"
        )

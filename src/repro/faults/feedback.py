"""Feedback-channel error families for the unified kernel stack.

The legacy :class:`~repro.faults.model.FaultModel` routes a run through
per-station controller replicas (:mod:`repro.faults.replicas`) — the
right machinery when stations can *disagree* about what they heard, but
ineligible for every accelerated backend.  This module models the
complementary regime: **common-mode** feedback errors, where every
station observes the *same* (possibly wrong) symbol, so the network
keeps a single shared protocol state and the fast kernel can execute
the run directly.

Three fault families, all driven by one :class:`FeedbackFaultModel`:

**Per-slot feedback misdetection** — each examination slot's true
ternary outcome may be mis-observed by the whole network at once:

* ``p_collision_as_success`` — one colliding signal dominates and is
  captured as if it were alone (the capture effect); every transmitter
  believes its frame got through and silently dequeues it;
* ``p_success_as_idle`` — a successful frame fades below the carrier
  threshold; the frame is lost and the examined span is (wrongly)
  resolved idle;
* ``p_erasure`` — the feedback symbol is destroyed and read as
  COLLISION whatever truly happened, sending the windowing process into
  a spurious split descent.

**Per-station missed feedback** — a per-slot hazard (``miss_rate``)
under which one station loses a feedback symbol.  Its local window
state has then diverged from the network's, so it must stop
transmitting until a :ref:`recovery policy <recovery>` re-admits it.

**Adversarial continuous injection** — a jammer (``jam_rate`` bursts of
mean length ``mean_jam_slots``) forces the channel to read COLLISION
for the duration of each burst, destroying any frame transmitted into
it (Hradovich et al., arXiv 1808.02216 motivate this arm).

.. _recovery:

**Divergence-recovery policies** (``recovery``) decide what a diverged
party does:

* ``"reset-to-epoch"`` — re-adopt the shared state at the next decision
  epoch (cheapest; risks re-colliding with in-flight resolution);
* ``"gated-rejoin"`` — listen without transmitting for
  ``rejoin_listen_slots`` first, then rejoin at an epoch boundary;
* ``"drop-out"`` — give up the diverged backlog entirely (messages are
  lost to the fault) and rejoin with a clean queue.

The same three policies drive the shared-state divergence abort: an
erasure on a truly idle span marches the windowing process down an
idle descent that fault-free feedback cannot produce, so the process is
declared diverged past ``max_split_depth`` and aborted under the
selected policy.

Randomness is drawn from the run's dedicated fault stream (the
``"faults"`` substream of :class:`~repro.des.rng.RandomStreams`, or the
``0xFA17``-keyed derived generator for plain seeds), so every fault
setting replays the same traffic sample path.  Event scheduling and
per-slot draws are consumed in a fixed order shared by the reference
loop and the fast kernel — the bit-parity contract of
``tests/mac/test_faulted_parity.py``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.window import ChannelFeedback
from .model import FaultTelemetry

__all__ = ["FeedbackFaultModel", "FeedbackFaultState", "RECOVERY_POLICIES"]

#: The divergence-recovery policies selectable per run.
RECOVERY_POLICIES = ("reset-to-epoch", "gated-rejoin", "drop-out")

_PROB_FIELDS = ("p_collision_as_success", "p_success_as_idle", "p_erasure")

# Event kinds of the injection heap.
_JAM = 0
_MISS = 1


@dataclass(frozen=True)
class FeedbackFaultModel:
    """Common-mode feedback fault configuration (see module docstring).

    Every field is validated at construction with a ``ValueError``
    naming the offending field, mirroring
    :class:`~repro.experiments.sweep.MACRunSpec` — bad grid parameters
    must fail at spec construction, not deep inside a kernel.
    """

    p_collision_as_success: float = 0.0
    p_success_as_idle: float = 0.0
    p_erasure: float = 0.0
    miss_rate: float = 0.0
    jam_rate: float = 0.0
    mean_jam_slots: float = 8.0
    recovery: str = "reset-to-epoch"
    rejoin_listen_slots: float = 16.0
    #: Split depth beyond which the shared process is declared diverged
    #: and aborted under ``recovery``.  Must stay at most 59: depth can
    #: grow by one per feedback symbol, and the abort fires strictly
    #: before :class:`~repro.core.window.WindowingProcess` would hit its
    #: hard depth-60 indistinguishability error.
    max_split_depth: int = 40

    def __post_init__(self):
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {p}")
        if self.p_erasure + self.p_collision_as_success > 1.0:
            raise ValueError(
                "p_erasure + p_collision_as_success must sum to at most 1, "
                f"got {self.p_erasure} + {self.p_collision_as_success}"
            )
        if self.p_erasure + self.p_success_as_idle > 1.0:
            raise ValueError(
                "p_erasure + p_success_as_idle must sum to at most 1, "
                f"got {self.p_erasure} + {self.p_success_as_idle}"
            )
        for name in ("miss_rate", "jam_rate"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.mean_jam_slots <= 0:
            raise ValueError(
                f"mean_jam_slots must be positive, got {self.mean_jam_slots}"
            )
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {self.recovery!r}"
            )
        if self.rejoin_listen_slots < 0:
            raise ValueError(
                "rejoin_listen_slots must be non-negative, "
                f"got {self.rejoin_listen_slots}"
            )
        if self.rejoin_listen_slots != math.floor(self.rejoin_listen_slots):
            # Slot accounting adds this value directly to float clocks;
            # whole-slot values keep that addition exact.
            raise ValueError(
                "rejoin_listen_slots must be a whole number of slots, "
                f"got {self.rejoin_listen_slots}"
            )
        if not 1 <= self.max_split_depth <= 59:
            raise ValueError(
                f"max_split_depth must be in [1, 59], got {self.max_split_depth}"
            )

    # -- factories -----------------------------------------------------------

    @classmethod
    def none(cls) -> "FeedbackFaultModel":
        """The fault-free configuration (exercises the faulted kernels)."""
        return cls()

    @classmethod
    def noise(
        cls, error_rate: float, recovery: str = "reset-to-epoch"
    ) -> "FeedbackFaultModel":
        """Symmetric misdetection: every confusion occurs at ``error_rate``.

        The single knob of the degradation sweeps.  Erasure and capture
        share the collision symbol's probability budget, so the rate
        must be at most 0.5.
        """
        if not 0.0 <= error_rate <= 0.5:
            raise ValueError(
                f"symmetric error rate must be in [0, 0.5], got {error_rate}"
            )
        return cls(
            p_collision_as_success=error_rate,
            p_success_as_idle=error_rate,
            p_erasure=error_rate,
            recovery=recovery,
        )

    # -- queries -------------------------------------------------------------

    @property
    def has_noise(self) -> bool:
        """Whether any per-slot misdetection probability is positive."""
        return any(getattr(self, name) > 0 for name in _PROB_FIELDS)

    @property
    def has_events(self) -> bool:
        """Whether missed-feedback or jamming events can fire."""
        return self.miss_rate > 0 or self.jam_rate > 0

    @property
    def is_null(self) -> bool:
        """Whether the model injects no faults at all."""
        return not (self.has_noise or self.has_events)


class FeedbackFaultState:
    """Per-run runtime of one :class:`FeedbackFaultModel`.

    Owns the event heap (jam bursts, per-station misses), the set of
    currently desynchronized stations, and the per-slot observation
    rule.  Both the reference loop and the fast kernel drive one
    instance through the identical call sequence — ``poll`` at every
    decision epoch and examination slot, ``rejoin`` at epoch tops only,
    ``observe`` once per examination slot — so the fault stream's draw
    order (and therefore the whole run) is bit-identical across
    kernels.
    """

    __slots__ = (
        "model",
        "rng",
        "telemetry",
        "desynced",
        "jam_until",
        "_events",
        "_seq",
        "_noise",
        "_p_erasure",
        "_p_capture",
        "_p_fade",
        "_stash",
        "_stash_pos",
    )

    def __init__(
        self,
        model: FeedbackFaultModel,
        n_stations: int,
        rng: np.random.Generator,
        telemetry: Optional[FaultTelemetry] = None,
    ):
        self.model = model
        self.rng = rng
        self.telemetry = telemetry if telemetry is not None else FaultTelemetry()
        #: station id -> (rejoin instant, miss instant) while desynced.
        self.desynced: Dict[int, Tuple[float, float]] = {}
        self.jam_until = -math.inf
        self._events: List[Tuple[float, int, int, int]] = []
        self._seq = 0
        # Seed the heap in a fixed order: the jam process first, then
        # one miss clock per station — part of the draw-order contract.
        if model.jam_rate > 0:
            self._push(rng.exponential(1.0 / model.jam_rate), -1, _JAM)
        if model.miss_rate > 0:
            for station in range(n_stations):
                self._push(rng.exponential(1.0 / model.miss_rate), station, _MISS)
        self._noise = model.has_noise
        self._p_erasure = model.p_erasure
        self._p_capture = model.p_erasure + model.p_collision_as_success
        self._p_fade = model.p_erasure + model.p_success_as_idle
        # Pre-drawn uniforms (see scan_idle) served to observe() in order.
        self._stash: Optional[np.ndarray] = None
        self._stash_pos = 0

    def _push(self, when: float, station: int, kind: int) -> None:
        heapq.heappush(self._events, (when, self._seq, station, kind))
        self._seq += 1

    # -- event machinery -----------------------------------------------------

    def poll(self, now: float) -> List[int]:
        """Apply every fault event due by ``now``.

        Returns the stations that drop out this instant (``recovery ==
        "drop-out"`` only); the caller destroys their pending backlogs.
        Called at every decision epoch and at every examination slot —
        a second call at the same instant pops nothing and draws
        nothing, so the two loops' slightly different call sites stay
        draw-identical.
        """
        dropped: List[int] = []
        events = self._events
        model = self.model
        while events and events[0][0] <= now:
            when, _, station, kind = heapq.heappop(events)
            if kind == _JAM:
                burst = 1.0 + self.rng.exponential(model.mean_jam_slots)
                if when + burst > self.jam_until:
                    self.jam_until = when + burst
                self.telemetry.jam_bursts += 1
                self._push(
                    self.jam_until + self.rng.exponential(1.0 / model.jam_rate),
                    -1,
                    _JAM,
                )
                continue
            # Missed feedback: reschedule the station's clock first so the
            # draw happens whether or not the station was already down.
            self._push(
                when + self.rng.exponential(1.0 / model.miss_rate), station, _MISS
            )
            if station in self.desynced:
                continue
            self.telemetry.missed_feedback += 1
            if model.recovery == "gated-rejoin":
                self.desynced[station] = (when + model.rejoin_listen_slots, when)
            else:
                # reset-to-epoch and drop-out both rejoin at the first
                # epoch boundary after the miss.
                self.desynced[station] = (when, when)
                if model.recovery == "drop-out":
                    dropped.append(station)
        return dropped

    def rejoin(self, now: float) -> None:
        """Re-admit desynced stations whose rejoin instant has passed.

        Called at decision-epoch tops only — a station never rejoins in
        the middle of a windowing process, which keeps the process's
        window-occupancy inferences coherent.
        """
        if not self.desynced:
            return
        ready = sorted(
            station
            for station, (rejoin_at, _) in self.desynced.items()
            if rejoin_at <= now
        )
        for station in ready:
            _, missed_at = self.desynced.pop(station)
            self.telemetry.resyncs += 1
            self.telemetry.diverged_slots += now - missed_at

    def jammed(self, now: float) -> bool:
        """Whether an adversarial burst covers this slot."""
        return now < self.jam_until

    def scan_idle(self, n: int) -> int:
        """Number of leading *clean* IDLE observations among the next ``n``.

        The fast kernel's idle fast-forward hook: an idle examination
        slot consumes exactly one uniform under misdetection noise
        (none otherwise), and only an erasure corrupts a truly idle
        span.  This consumes the draws of up to ``n`` such slots in one
        vectorised block and reports how many read clean — those slots
        the kernel may jump in closed form.  When a corrupting draw is
        met it stays queued, so the caller's next :meth:`observe` reads
        the COLLISION from exactly the value the reference loop's
        slot-by-slot draw would produce; pre-drawn leftovers are served
        to the following observations in order.  The block draw may
        leave the underlying generator ahead of the reference loop's at
        run end, which is unobservable: every *served* value matches,
        and event-carrying models — whose exponential clocks share this
        generator — never scan (see ``has_events`` gating in the
        kernel).
        """
        if not self._noise:
            return n
        clean = 0
        p_erasure = self._p_erasure
        stash = self._stash
        if stash is not None:
            pos = self._stash_pos
            limit = len(stash)
            while pos < limit and clean < n:
                if stash[pos] < p_erasure:
                    self._stash_pos = pos
                    return clean
                pos += 1
                clean += 1
            self._stash_pos = pos
            if pos >= limit:
                self._stash = None
            if clean >= n:
                return clean
        draws = self.rng.random(n - clean)
        bad = np.flatnonzero(draws < p_erasure)
        if bad.size == 0:
            return n
        first = int(bad[0])
        self._stash = draws
        self._stash_pos = first
        return clean + first

    # -- the observation rule -----------------------------------------------

    def observe(self, true_feedback: ChannelFeedback) -> ChannelFeedback:
        """The network's (possibly corrupted) reading of a true symbol.

        Exactly one uniform draw per examination slot when the model has
        misdetection noise, zero otherwise — including jammed slots, so
        the draw count per slot is state-independent and both kernels
        consume the fault stream identically.
        """
        if not self._noise:
            return true_feedback
        stash = self._stash
        if stash is None:
            u = self.rng.random()
        else:
            pos = self._stash_pos
            u = stash[pos]
            pos += 1
            if pos >= len(stash):
                self._stash = None
            else:
                self._stash_pos = pos
        observed = true_feedback
        if u < self._p_erasure:
            observed = ChannelFeedback.COLLISION
        elif (
            true_feedback is ChannelFeedback.COLLISION and u < self._p_capture
        ):
            observed = ChannelFeedback.SUCCESS
        elif true_feedback is ChannelFeedback.SUCCESS and u < self._p_fade:
            observed = ChannelFeedback.IDLE
        if observed is not true_feedback:
            self.telemetry.corrupted_observations += 1
        return observed

"""Per-station protocol-state replicas with divergence recovery.

The paper treats the whole network's protocol state as *one* object
because error-free feedback keeps every station's copy identical (§2).
Under the faults of :mod:`repro.faults.model` that identity breaks, so
this module replaces the single shared
:class:`~repro.core.controller.ProtocolController` with a bank of
replicas that are allowed to diverge and must win their consistency
back.

**Cohorts.**  Simulating one controller per station would cost
``n_stations``× the work even when no fault ever fires.  The bank
instead tracks *cohorts*: maximal groups of stations whose replica state
is identical.  A fault-free network is one cohort forever — the bank
then *is* the shared controller, driven through the very same code
path, which is how the zero-fault regression test can require
bit-identical results.  A divergent observation splits a cohort (the
minority's state is deep-copied, including its policy RNG — exactly as
real stations sharing a seeded pseudo-random sequence would drift once
their draw counts differ); re-converged cohorts are merged back.

**Inconsistency detection.**  A replica cannot see the network's true
state, but three local symptoms expose divergence:

* *phantom activity* — the replica believes all time is resolved (its
  controller declined to open a window) yet the channel is not idle;
* *unheard own transmission* — a station transmitted in this slot yet
  observes IDLE;
* *runaway splitting* — the windowing process descends past
  ``max_split_depth`` (a span the replica believes occupied keeps
  examining idle, which fault-free feedback cannot produce), or exceeds
  the per-process ``resync_timeout_slots`` wall-clock bound.

**Bounded re-synchronization.**  A replica that detects divergence (or
returns from a crash/deaf period, where divergence is certain) resets
its unresolved set to ``[now − K, now]`` via
:meth:`~repro.core.controller.ProtocolController.resynchronize` and
listens without transmitting for ``resync_listen_slots``.  The reset is
safe: element 4 discards anything older than ``K`` regardless, and
re-declaring resolved time unresolved only costs idle re-examinations —
it can never orphan a pending message.  Degradation is therefore
graceful (wasted slots, higher loss) rather than catastrophic
(deadlock or permanent divergence).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.controller import ProtocolController
from ..core.policy import ControlPolicy, RandomPosition
from ..core.window import ChannelFeedback, WindowingProcess
from .injector import FaultInjector
from .model import FaultModel, FaultTelemetry

__all__ = ["ReplicaCohort", "ReplicatedControllerBank"]

_SYMBOL_ORDER = (
    ChannelFeedback.IDLE,
    ChannelFeedback.SUCCESS,
    ChannelFeedback.COLLISION,
)


class ReplicaCohort:
    """A maximal set of stations whose protocol replicas agree exactly."""

    __slots__ = (
        "uid",
        "stations",
        "controller",
        "process",
        "process_start",
        "eligible",
        "expects_idle",
        "listen_until",
        "enabled",
    )

    def __init__(self, uid: int, stations: set, controller: ProtocolController):
        self.uid = uid
        self.stations = stations
        self.controller = controller
        self.process: Optional[WindowingProcess] = None
        self.process_start = 0.0
        self.eligible: Optional[Dict] = None
        self.expects_idle = False
        self.listen_until = -float("inf")
        self.enabled: Dict = {}

    def at_boundary(self, now: float) -> bool:
        """Whether the cohort should pick its next action this slot."""
        return self.process is None and now >= self.listen_until and bool(self.stations)

    def _clear_process(self) -> None:
        self.process = None
        self.eligible = None
        self.enabled = {}


class ReplicatedControllerBank:
    """All stations' replicas, organized into agreement cohorts.

    Parameters
    ----------
    policy:
        The control policy every station runs.
    n_stations:
        Station population size.
    root_controller:
        The initial (network-wide) controller replica; in a fault-free
        run it is driven exactly as the shared controller would be.
    fault_model / fault_rng:
        The fault configuration and its dedicated generator.
    transmission_slots:
        Message length M, used to scale the default process timeout.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        n_stations: int,
        root_controller: ProtocolController,
        fault_model: FaultModel,
        fault_rng: np.random.Generator,
        transmission_slots: int,
    ):
        self.policy = policy
        self.n_stations = n_stations
        self.model = fault_model
        self.injector = FaultInjector(fault_model, n_stations, fault_rng)
        self.telemetry = FaultTelemetry()
        root = ReplicaCohort(0, set(range(n_stations)), root_controller)
        self.cohorts: List[ReplicaCohort] = [root]
        self._station_cohort: Dict[int, ReplicaCohort] = {
            s: root for s in range(n_stations)
        }
        self._next_uid = 1
        #: Optional ``station -> dropped message count`` callback, set by
        #: the simulator when ``fault_model.recovery == "drop-out"``: a
        #: resyncing station destroys its pending backlog through it.
        self.on_drop_out: Optional[Callable[[int], int]] = None
        # Divergence detection is pointless (and must stay inert for
        # bit-identical regression) when no fault can ever fire.
        self._detect = not fault_model.is_null
        self._stochastic = (
            isinstance(policy.position, RandomPosition) or policy.split == "random"
        )
        if policy.discard_deadline is not None:
            self._resync_horizon = policy.discard_deadline
        elif fault_model.resync_horizon is not None:
            self._resync_horizon = fault_model.resync_horizon
        else:
            self._resync_horizon = 16.0 * transmission_slots
        if fault_model.resync_timeout_slots is not None:
            self._resync_timeout = fault_model.resync_timeout_slots
        else:
            self._resync_timeout = 8.0 * (120.0 + transmission_slots)

    # -- queries -----------------------------------------------------------------

    def any_boundary(self, now: float) -> bool:
        """Whether any cohort picks its next action this slot."""
        return any(c.at_boundary(now) for c in self.cohorts)

    def any_process(self) -> bool:
        """Whether any cohort currently drives a windowing process."""
        return any(c.process is not None for c in self.cohorts)

    def cohort_of(self, station: int) -> ReplicaCohort:
        """The cohort a station currently belongs to."""
        return self._station_cohort[station]

    @property
    def n_cohorts(self) -> int:
        """Number of distinct replica states across the network."""
        return len(self.cohorts)

    def _covers_network(self, cohort: ReplicaCohort) -> bool:
        return (
            len(self.cohorts) == 1
            and len(cohort.stations) == self.n_stations
            and not self.injector.any_down
        )

    # -- the per-slot protocol steps ------------------------------------------------

    def begin_processes(self, now: float, registry) -> None:
        """Every boundary cohort selects its next window (or waits).

        Mirrors the shared-path call order: merge opportunities are taken
        first so a re-converged group issues one decision, then each
        cohort runs ``begin_process`` exactly as the shared controller
        would at this instant.
        """
        if len(self.cohorts) > 1:
            self._merge_boundary_cohorts(now)
        for cohort in sorted(self.cohorts, key=lambda c: c.uid):
            if not cohort.at_boundary(now):
                continue
            process = cohort.controller.begin_process(now)
            if process is None:
                cohort.expects_idle = True
                continue
            cohort.process = process
            cohort.process_start = now
            cohort.expects_idle = False
            cohort.eligible = (
                registry.eligible_for_window(process.current_span)
                if registry.has_scaled_stations
                else None
            )

    def collect_transmitters(self, now: float, registry) -> Dict:
        """The union of stations transmitting this slot, across cohorts.

        Each cohort with a process in flight enables its own stations
        against its *own* current span; diverged cohorts may therefore
        enable stations for different windows in the same slot — the
        channel resolves the union, which is precisely how inconsistent
        replicas manufacture extra collisions in a real network.
        """
        union: Dict = {}
        injector = self.injector
        for cohort in self.cohorts:
            process = cohort.process
            if process is None:
                cohort.enabled = {}
                continue
            span = process.current_span
            if span.pieces and span.end > now + 1e-9:
                raise ValueError(
                    f"window end {span.end} lies in the future (now = {now})"
                )
            if cohort.eligible is None:
                enabled = registry.enabled_stations(span)
            else:
                # The cached eligibility map can go stale under faults: a
                # crash or phantom dequeue removes a message from the
                # registry mid-process.  (Fate compared by value to avoid
                # a circular import with repro.mac.)
                enabled = {
                    station: message
                    for station, message in cohort.eligible.items()
                    if span.contains(message.arrival)
                    and message.fate.value == "pending"
                }
            if not self._covers_network(cohort):
                enabled = {
                    station: message
                    for station, message in enabled.items()
                    if station in cohort.stations and injector.is_up(station)
                }
            cohort.enabled = enabled
            union.update(enabled)
        return union

    def apply_feedback(
        self,
        true_feedback: ChannelFeedback,
        now: float,
        on_phantom_delivery: Callable,
    ) -> None:
        """Distribute one slot's feedback to every replica.

        ``on_phantom_delivery(message)`` is invoked for each message its
        sender dequeues after observing a (corrupted) SUCCESS that never
        happened — the silent-loss mode of the capture effect.
        """
        model = self.model
        if not self._detect:
            # Fault-free fast path: exactly one cohort, true symbol.
            cohort = self.cohorts[0]
            if cohort.process is not None:
                self._deliver(cohort, true_feedback, true_feedback, now, None)
            return
        if model.observation == "broadcast":
            symbol = self.injector.observe_broadcast(true_feedback)
            if symbol is not true_feedback:
                self.telemetry.corrupted_observations += len(self._station_cohort)
            for cohort in list(self.cohorts):
                self._deliver(cohort, symbol, true_feedback, now, on_phantom_delivery)
            return
        for cohort in list(self.cohorts):
            ids = sorted(cohort.stations)
            symbols = self.injector.observe(true_feedback, len(ids))
            self.telemetry.corrupted_observations += sum(
                1 for s in symbols if s is not true_feedback
            )
            groups: Dict[ChannelFeedback, List[int]] = {}
            for station, symbol in zip(ids, symbols):
                groups.setdefault(symbol, []).append(station)
            for subcohort, symbol in self._split(cohort, groups):
                self._deliver(
                    subcohort, symbol, true_feedback, now, on_phantom_delivery
                )
        if len(self.cohorts) > self.telemetry.peak_cohorts:
            self.telemetry.peak_cohorts = len(self.cohorts)

    # -- station-level fault transitions ---------------------------------------------

    def remove_station(self, station: int) -> None:
        """Take a crashed or deaf station out of its cohort."""
        cohort = self._station_cohort.pop(station, None)
        if cohort is None:
            return
        cohort.stations.discard(station)
        if not cohort.stations:
            self.cohorts.remove(cohort)

    def restore_station(self, station: int, now: float) -> None:
        """Re-admit a restarted/recovered station as a fresh resync cohort.

        The station knows its state is stale (it was down or missed
        feedback), so it boots straight into the re-synchronization
        epoch: unresolved ``[now − K, now]``, listen-only rejoin.
        """
        rng = np.random.default_rng(self.injector.rng.integers(0, 2**63))
        controller = ProtocolController(self.policy, rng=rng)
        controller.resynchronize(now, self._resync_horizon)
        cohort = ReplicaCohort(self._next_uid, {station}, controller)
        self._next_uid += 1
        cohort.listen_until = now + self._recovery_listen()
        self._apply_drop_out((station,))
        self.cohorts.append(cohort)
        self._station_cohort[station] = cohort
        self.telemetry.resyncs += 1
        if len(self.cohorts) > self.telemetry.peak_cohorts:
            self.telemetry.peak_cohorts = len(self.cohorts)

    # -- internals --------------------------------------------------------------------

    def _split(
        self, cohort: ReplicaCohort, groups: Dict[ChannelFeedback, List[int]]
    ) -> List:
        """Split a cohort whose members observed different symbols.

        The group that heard the *true* symbol (or, failing that, the
        largest group) keeps the original replica objects; every other
        group receives a joint deep copy of (controller, process) so the
        policy RNG stays shared *within* the copy but diverges *between*
        cohorts — the same drift a fleet of stations running a common
        seeded PRNG would experience once their decision counts differ.
        """
        if len(groups) == 1:
            ((symbol, _),) = groups.items()
            return [(cohort, symbol)]
        order = sorted(
            groups,
            key=lambda s: (-len(groups[s]), _SYMBOL_ORDER.index(s)),
        )
        keeper_symbol = order[0]
        result = []
        for symbol, stations in groups.items():
            if symbol is keeper_symbol:
                cohort.stations = set(stations)
                cohort.enabled = {
                    s: m for s, m in cohort.enabled.items() if s in cohort.stations
                }
                result.append((cohort, symbol))
                continue
            controller, process = copy.deepcopy((cohort.controller, cohort.process))
            twin = ReplicaCohort(self._next_uid, set(stations), controller)
            self._next_uid += 1
            twin.process = process
            twin.process_start = cohort.process_start
            twin.eligible = dict(cohort.eligible) if cohort.eligible else None
            twin.expects_idle = cohort.expects_idle
            twin.listen_until = cohort.listen_until
            twin.enabled = {s: m for s, m in cohort.enabled.items() if s in twin.stations}
            self.cohorts.append(twin)
            for station in twin.stations:
                self._station_cohort[station] = twin
            self.telemetry.cohort_splits += 1
            result.append((twin, symbol))
        return result

    def _deliver(
        self,
        cohort: ReplicaCohort,
        symbol: ChannelFeedback,
        true_feedback: ChannelFeedback,
        now: float,
        on_phantom_delivery: Optional[Callable],
    ) -> None:
        """Advance one cohort's replica with its observed symbol."""
        if now < cohort.listen_until:
            return  # re-synchronizing: listen-only, ignore the symbol
        process = cohort.process
        if process is None:
            if (
                self._detect
                and cohort.expects_idle
                and symbol is not ChannelFeedback.IDLE
            ):
                # Phantom activity: the replica believes all past time is
                # resolved, yet the channel is busy.
                self._resync(cohort, now)
            return
        if self._detect and cohort.enabled and symbol is ChannelFeedback.IDLE:
            # A station of this cohort transmitted this very slot; hearing
            # IDLE contradicts its own action.
            self._resync(cohort, now)
            return
        if (
            self._detect
            and symbol is ChannelFeedback.SUCCESS
            and true_feedback is not ChannelFeedback.SUCCESS
            and cohort.enabled
            and on_phantom_delivery is not None
        ):
            # Captured/corrupted SUCCESS: each transmitter of this cohort
            # believes its message got through and dequeues it — a silent
            # loss the protocol itself never sees.
            for message in cohort.enabled.values():
                on_phantom_delivery(message)
                self.telemetry.phantom_deliveries += 1
        process.on_feedback(symbol)
        if process.done:
            cohort.controller.complete_process(process)
            cohort._clear_process()
            return
        if self._detect and process.depth > self.model.max_split_depth:
            self._resync(cohort, now)
        elif self._detect and now - cohort.process_start > self._resync_timeout:
            self._resync(cohort, now)

    def _resync(self, cohort: ReplicaCohort, now: float) -> None:
        """Run the bounded re-synchronization epoch on one cohort.

        The divergence-recovery policy decides the rejoin gate:
        ``gated-rejoin`` (historical default) listens for
        ``resync_listen_slots`` first; ``reset-to-epoch`` rejoins at the
        next decision boundary with the conservatively reset state;
        ``drop-out`` additionally destroys the cohort's pending
        backlogs through :attr:`on_drop_out`.
        """
        cohort._clear_process()
        cohort.expects_idle = False
        cohort.controller.resynchronize(now, self._resync_horizon)
        cohort.listen_until = now + self._recovery_listen()
        self._apply_drop_out(sorted(cohort.stations))
        self.telemetry.divergence_detections += 1
        self.telemetry.resyncs += 1

    def _recovery_listen(self) -> float:
        """Listen-only slots a resyncing replica waits before rejoining."""
        if self.model.recovery == "gated-rejoin":
            return self.model.resync_listen_slots
        return 0.0

    def _apply_drop_out(self, stations) -> None:
        """Destroy the pending backlogs of resyncing stations (drop-out)."""
        if self.model.recovery != "drop-out" or self.on_drop_out is None:
            return
        for station in stations:
            self.telemetry.dropped_messages += self.on_drop_out(station)

    def _fingerprint(self, cohort: ReplicaCohort):
        controller = cohort.controller
        parts = [
            tuple(controller.unresolved.intervals()),
            controller.frontier,
        ]
        if self._stochastic and controller.rng is not None:
            parts.append(repr(controller.rng.bit_generator.state))
        return tuple(parts)

    def _merge_boundary_cohorts(self, now: float) -> None:
        """Fuse cohorts whose replica state re-converged.

        Only idle (between-process, not listening) cohorts are compared:
        that is where re-convergence actually happens — e.g. once element
        4 has aged the disagreeing past out of every replica — and it
        keeps the fingerprint cheap.
        """
        groups: Dict[tuple, List[ReplicaCohort]] = {}
        for cohort in self.cohorts:
            if cohort.process is None and now >= cohort.listen_until:
                groups.setdefault(self._fingerprint(cohort), []).append(cohort)
        for members in groups.values():
            if len(members) < 2:
                continue
            members.sort(key=lambda c: c.uid)
            keeper = members[0]
            for other in members[1:]:
                keeper.stations |= other.stations
                for station in other.stations:
                    self._station_cohort[station] = keeper
                self.cohorts.remove(other)
                self.telemetry.cohort_merges += 1

"""Counters, gauges, histograms, and the mergeable registry.

Design constraints, in order:

1. **Disabled means free.**  Instrumented code holds a reference that is
   either a live metric or ``None``/a shared no-op; the hot loops guard
   with one ``is not None`` test per *epoch* (never per slot), and the
   simulator normalises a disabled registry to ``None`` at construction
   so the disabled path is literally the uninstrumented path.  The perf
   bench (``benchmarks/perf``) asserts the overhead stays ≤3% (the
   allowance is timer noise: the two arms run identical code).

2. **Deterministic, associative merge.**  Parallel sweeps produce one
   registry per cell in worker processes and fold them into an
   aggregate.  Counter merge is addition, histogram merge is
   element-wise addition over *identical* bucket bounds, gauge merge is
   ``max`` — all associative and commutative with the empty registry as
   identity, so the merged registry is independent of worker count and
   completion order.  ``tests/obs/test_metrics_property.py`` holds the
   implementation to those laws with hypothesis.

3. **JSON-portable.**  :meth:`MetricsRegistry.to_dict` /
   :meth:`from_dict` round-trip through plain JSON types, which is how
   worker registries cross process boundaries and how ``report.json``
   snapshots them.

Metrics carry two bits of schema beyond their value: ``unit`` (a bare
string, ``"s"`` for seconds) and ``volatile`` — a flag marking values
that legitimately differ between two runs of the same seed (wall-clock
times, cache hit/miss, retry counts).  ``repro report diff`` ignores
volatile metrics by default, so "zero drift between same-seed reports"
is a checkable invariant of the deterministic remainder.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install",
    "global_registry",
    "DURATION_BUCKETS_S",
    "SIZE_BUCKETS",
]

#: Power-of-two bucket upper bounds for size-like quantities (backlog
#: length, window measure in slots, fast-forward span length).  The
#: implicit final bucket is +inf.
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0,
)

#: Bucket upper bounds (seconds) for wall-clock durations: 1 ms .. 5 min.
DURATION_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing sum.

    Values are numbers; the instrumentation only ever adds non-negative
    integral amounts (slot counts are integral-valued floats), so merge
    by addition is exact.
    """

    __slots__ = ("value", "unit", "volatile")
    kind = "counter"

    def __init__(self, unit: Optional[str] = None, volatile: bool = False):
        self.value: float = 0
        self.unit = unit
        self.volatile = volatile

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value; merge keeps the maximum.

    ``max`` is the one associative-commutative combiner that makes sense
    for "peak backlog"-style gauges; gauges whose merge semantics would
    be last-write-wins should be counters or histograms instead.
    """

    __slots__ = ("value", "unit", "volatile")
    kind = "gauge"

    def __init__(self, unit: Optional[str] = None, volatile: bool = False):
        self.value: Optional[float] = None
        self.unit = unit
        self.volatile = volatile

    def set(self, value: float) -> None:
        """Record the current value (merge keeps the max ever set)."""
        if self.value is None or value > self.value:
            self.value = value

    def merge_from(self, other: "Gauge") -> None:
        if other.value is not None:
            self.set(other.value)

    def state(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bounds`` are ascending bucket *upper* edges; an implicit final
    bucket catches everything above the last bound.  Two histograms
    merge only when their bounds are identical — a schema mismatch is a
    programming error, not data.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "unit", "volatile")
    kind = "histogram"

    def __init__(
        self,
        bounds: Iterable[float] = SIZE_BUCKETS,
        unit: Optional[str] = None,
        volatile: bool = False,
    ):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds or any(
            b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
        ):
            raise ValueError(f"bucket bounds must be ascending, got {self.bounds}")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: int = 0
        self.sum: float = 0.0
        self.unit = unit
        self.volatile = volatile

    def observe(self, value: float) -> None:
        """Record one observation."""
        # First bucket whose upper edge admits the value — identical to
        # the linear scan this replaced (`value <= bound` stops at the
        # first bound >= value, i.e. bisect_left).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a buffered sequence of observations in bulk.

        Bucketing is exact (``searchsorted`` is per-value
        ``bisect_left``); ``sum`` uses NumPy's pairwise reduction, which
        is deterministic for a given buffer but may differ from repeated
        :meth:`observe` in the last ulps.  Recording buffers are always
        flushed through this method on every execution path, so
        like-for-like registry comparisons stay bit-identical.
        """
        arr = np.asarray(
            values if isinstance(values, (list, np.ndarray)) else list(values),
            dtype=np.float64,
        )
        if not arr.size:
            return
        counts = self.counts
        bucketed = np.bincount(
            np.searchsorted(self.bounds, arr, side="left"),
            minlength=len(counts),
        )
        for index, count in enumerate(bucketed):
            if count:
                counts[index] += int(count)
        self.total += arr.size
        self.sum += float(arr.sum())

    @property
    def mean(self) -> float:
        """Mean of all observations (NaN when empty)."""
        return self.sum / self.total if self.total else float("nan")

    def merge_from(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def state(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class _NullMetric:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """A named collection of metrics with deterministic merge.

    Parameters
    ----------
    enabled:
        ``False`` turns every accessor into a shared no-op metric, so a
        call site can hold "a registry" unconditionally and still pay
        nothing.  Code on genuinely hot paths should additionally
        normalise a disabled registry to ``None`` (the simulator does).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: "Dict[str, Any]" = {}

    # -- accessors (get-or-create) ---------------------------------------------

    def counter(
        self, name: str, unit: Optional[str] = None, volatile: bool = False
    ) -> Counter:
        """The counter called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(unit=unit, volatile=volatile)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(
        self, name: str, unit: Optional[str] = None, volatile: bool = False
    ) -> Gauge:
        """The gauge called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(unit=unit, volatile=volatile)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = SIZE_BUCKETS,
        unit: Optional[str] = None,
        volatile: bool = False,
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(
                bounds, unit=unit, volatile=volatile
            )
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        return metric

    def inc(self, name: str, amount: float = 1) -> None:
        """Shorthand: increment the counter called ``name``."""
        self.counter(name).inc(amount)

    # -- inspection -----------------------------------------------------------

    def names(self) -> List[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric object called ``name``, or ``None``."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0):
        """Scalar value of a counter/gauge (histograms return the total)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def __len__(self) -> int:
        return len(self._metrics)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self._metrics)} metrics)"

    # -- merge ----------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self.

        Metric kinds and histogram bounds must agree where names
        collide.  Absent names adopt the other side's state, so the
        empty registry is the merge identity.
        """
        for name, theirs in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(
                        theirs.bounds, unit=theirs.unit, volatile=theirs.volatile
                    )
                else:
                    mine = type(theirs)(unit=theirs.unit, volatile=theirs.volatile)
                self._metrics[name] = mine
            elif mine.kind != theirs.kind:
                raise TypeError(
                    f"cannot merge metric {name!r}: {mine.kind} vs {theirs.kind}"
                )
            mine.merge_from(theirs)
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry holding ``self`` merged with ``other``."""
        result = MetricsRegistry()
        result.merge_from(self)
        result.merge_from(other)
        return result

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Merge an iterable of registries (left fold from the identity)."""
        result = cls()
        for registry in registries:
            result.merge_from(registry)
        return result

    def drop_volatile(self) -> "MetricsRegistry":
        """A copy without volatile metrics (the deterministic remainder)."""
        result = MetricsRegistry()
        for name, metric in self._metrics.items():
            if not metric.volatile:
                result._metrics[name] = _metric_from_state(
                    metric.state(), metric.unit, metric.volatile
                )
        return result

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-portable snapshot (sorted names, plain types only)."""
        snapshot = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = metric.state()
            if metric.unit is not None:
                entry["unit"] = metric.unit
            if metric.volatile:
                entry["volatile"] = True
            snapshot[name] = entry
        return snapshot

    @classmethod
    def from_dict(cls, snapshot: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, entry in snapshot.items():
            registry._metrics[name] = _metric_from_state(
                entry, entry.get("unit"), bool(entry.get("volatile", False))
            )
        return registry


def _metric_from_state(
    entry: Dict[str, Any], unit: Optional[str], volatile: bool
):
    kind = entry["kind"]
    if kind == "counter":
        metric = Counter(unit=unit, volatile=volatile)
        metric.value = entry["value"]
    elif kind == "gauge":
        metric = Gauge(unit=unit, volatile=volatile)
        metric.value = entry["value"]
    elif kind == "histogram":
        metric = Histogram(entry["bounds"], unit=unit, volatile=volatile)
        metric.counts = list(entry["counts"])
        metric.total = entry["total"]
        metric.sum = entry["sum"]
    else:
        raise ValueError(f"unknown metric kind {kind!r}")
    return metric


# -- global registry (for call sites too deep to thread a parameter) -----------

_GLOBAL: Optional[MetricsRegistry] = None


def install(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process-global registry; returns the
    previous one (``None`` restores the uninstrumented default).

    Only :mod:`repro.cache` reads the global — everything else takes an
    explicit registry — so installation is confined to entry points (the
    CLI's ``--metrics`` flag, tests).
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous


def global_registry() -> Optional[MetricsRegistry]:
    """The installed global registry, or ``None``."""
    return _GLOBAL

"""Observability: metrics, tracing, and run reports.

The reproduction's performance and resilience layers (fast kernel,
parallel sweeps, supervised execution) made runs fast and durable but
opaque: the only signals were a final ``slots/s`` line and a journal on
disk.  This package adds the missing instrumentation, with zero
third-party dependencies and zero measurable cost when disabled:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in a mergeable :class:`MetricsRegistry`.  Merging is
  associative and commutative (property-tested), so per-worker
  registries from a parallel sweep combine into the same aggregate for
  any worker count.
* :mod:`repro.obs.tracing` — a lightweight span API
  (``with trace.span("figure7.cell", K=75):``) writing JSON-lines
  trace events in ``chrome://tracing`` format.
* :mod:`repro.obs.report` — machine-readable ``report.json`` files
  (metrics snapshot + environment + seed + timings) and a differ that
  checks two runs of the same seed for metric drift.

Wiring: the simulator, the fast kernel, and the sweep executors accept
an optional :class:`MetricsRegistry`; ``None`` (the default) and a
disabled registry are both no-ops on the hot path — the perf bench
holds the disabled overhead to ≤2%.  The memo cache reports hit/miss
through the *installed* global registry (see :func:`install`) because
its call sites are too deep to thread a parameter through.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    install,
)
from .report import (
    REPORT_SCHEMA,
    build_report,
    diff_reports,
    load_report,
    render_report,
    write_report,
)
from .tracing import JsonlTracer, NullTracer, install_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "install",
    "global_registry",
    "JsonlTracer",
    "NullTracer",
    "install_tracer",
    "span",
    "REPORT_SCHEMA",
    "build_report",
    "write_report",
    "load_report",
    "render_report",
    "diff_reports",
]

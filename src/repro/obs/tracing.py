"""Span tracing: where did the wall-clock go?

A *span* is a named, timed region of the run — one Figure-7 cell, one
policy iteration, one journal replay.  Spans nest naturally (the
context manager protocol handles that), carry small key/value args,
and are written as they close, one JSON object per line, in the Trace
Event Format that ``chrome://tracing`` / Perfetto understand:

    {"name": "figure7.sweep", "ph": "X", "ts": 12034.5, "dur": 8800.1,
     "pid": 4242, "tid": 1, "args": {"cells": 27}}

The file is JSON-lines for crash tolerance (a killed run keeps every
closed span); to load it in a chrome-family viewer, wrap the lines in
``[...]`` with comma separators — ``repro.obs.tracing.load_trace``
and ``docs/observability.md`` show the one-liner.

The default tracer is a shared no-op; ``install_tracer`` swaps in a
:class:`JsonlTracer` (the CLI's ``--trace FILE`` does this).  The
module-level :func:`span` helper always consults the *installed*
tracer, so library code can annotate phases unconditionally at the
cost of one dict lookup when tracing is off — spans are placed at
phase granularity (a cell, a sweep, an iteration), never per slot.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional, Union

__all__ = [
    "NullTracer",
    "JsonlTracer",
    "install_tracer",
    "current_tracer",
    "span",
    "load_trace",
]


class _NullSpan:
    """Context manager that does nothing (shared instance)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op."""

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        pass

    def close(self) -> None:
        pass


class _Span:
    """One open span; written to the tracer when it exits."""

    __slots__ = ("tracer", "name", "args", "start")

    def __init__(self, tracer: "JsonlTracer", name: str, args: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.args = args
        self.start = time.perf_counter()

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> bool:
        self.tracer._write_complete(self.name, self.start, self.args)
        return False


class JsonlTracer:
    """Writes chrome-trace complete events ("ph": "X") as JSON lines.

    Parameters
    ----------
    sink:
        A path (opened for writing, truncating) or an open text file.
    """

    def __init__(self, sink: Union[str, "os.PathLike", IO[str]]):
        if hasattr(sink, "write"):
            self._file: IO[str] = sink  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        self._lock = threading.Lock()
        self._pid = os.getpid()
        #: perf_counter origin, so ts starts near 0 like chrome expects.
        self._epoch = time.perf_counter()
        self.events = 0

    def span(self, name: str, **args: Any) -> _Span:
        """Open a span; it is recorded when the ``with`` block exits."""
        return _Span(self, name, args)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""
        now = time.perf_counter()
        self._emit(
            {
                "name": name,
                "ph": "i",
                "s": "p",
                "ts": (now - self._epoch) * 1e6,
                "pid": self._pid,
                "tid": threading.get_ident() % 2**31,
                "args": args,
            }
        )

    def _write_complete(self, name: str, start: float, args: Dict[str, Any]) -> None:
        end = time.perf_counter()
        self._emit(
            {
                "name": name,
                "ph": "X",
                "ts": (start - self._epoch) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": self._pid,
                "tid": threading.get_ident() % 2**31,
                "args": args,
            }
        )

    def _emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            self._file.write(line + "\n")
            self.events += 1

    def close(self) -> None:
        """Flush and (when owned) close the underlying file."""
        with self._lock:
            self._file.flush()
            if self._owns_file:
                self._file.close()


_TRACER: Union[NullTracer, JsonlTracer] = NullTracer()


def install_tracer(
    tracer: Optional[Union[NullTracer, JsonlTracer]],
) -> Union[NullTracer, JsonlTracer]:
    """Install the process tracer; returns the previous one.

    ``None`` restores the shared no-op tracer.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NullTracer()
    return previous


def current_tracer() -> Union[NullTracer, JsonlTracer]:
    """The installed tracer (a no-op unless one was installed)."""
    return _TRACER


def span(name: str, **args: Any):
    """Open a span on the installed tracer.

    The library's standard annotation point::

        with trace.span("figure7.cell", K=deadline, protocol=name):
            ...
    """
    return _TRACER.span(name, **args)


def load_trace(path) -> List[Dict[str, Any]]:
    """Parse a JSON-lines trace file back into a list of event dicts.

    (To view in ``chrome://tracing``, dump this list as one JSON array:
    ``json.dump(load_trace(p), open("trace.json", "w"))``.)
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events

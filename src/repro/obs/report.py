"""Machine-readable run reports and the drift differ.

Every experiment driver invoked with ``--metrics [FILE]`` writes a
``report.json`` next to its table output::

    {
      "schema": 1,
      "command": "figure7",
      "argv": ["figure7", "--simulate", "--seed", "1"],
      "seed": 1,
      "created_at": "2026-08-06T12:00:00+00:00",
      "environment": {"python": "3.12.3", "platform": "Linux-...", ...},
      "timings": {"total_s": 12.8},
      "metrics": { ... MetricsRegistry.to_dict() ... }
    }

``repro report show FILE`` renders one; ``repro report diff A B``
compares the *deterministic* metrics of two (volatile metrics —
wall-clock timings, cache hits, retry counts — are excluded unless
``--all`` is passed) and exits non-zero on drift.  Two runs of the same
command at the same seed must diff clean; that is the regression
contract the golden tests extend to the paper's numbers.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "REPORT_SCHEMA",
    "VOLATILE_PREFIXES",
    "build_report",
    "write_report",
    "load_report",
    "render_report",
    "diff_reports",
]

#: Bump when the report layout changes incompatibly.
REPORT_SCHEMA = 1

#: Metric-name prefixes that are volatile *by name*, regardless of the
#: entry's own ``volatile`` flag.  ``stats.`` covers the sequential-
#: replication counters (lanes spent, stopping wave, realized half-
#: width): their values depend on when each arm's CI target was hit, so
#: two legitimate runs at different --ci-target / --max-replications
#: settings — or a report written by an older build that predates the
#: per-entry flag — must not read as drift.
VOLATILE_PREFIXES = ("stats.",)


def _environment() -> Dict[str, str]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
    }


def build_report(
    command: str,
    argv: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    timings: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble a report dict (pure data; write it with :func:`write_report`)."""
    return {
        "schema": REPORT_SCHEMA,
        "command": command,
        "argv": list(argv) if argv is not None else list(sys.argv[1:]),
        "seed": seed,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": _environment(),
        "timings": dict(timings or {}),
        "metrics": metrics.to_dict() if metrics is not None else {},
    }


def write_report(path, report: Dict[str, Any]) -> None:
    """Write a report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path) -> Dict[str, Any]:
    """Read a report back; validates the schema field."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported report schema {schema!r} in {path} "
            f"(this build reads schema {REPORT_SCHEMA})"
        )
    return report


def _metric_rows(metrics: Dict[str, Any]) -> List[List[str]]:
    rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry["kind"]
        if kind == "histogram":
            total = entry["total"]
            mean = entry["sum"] / total if total else float("nan")
            value = f"n={total} mean={mean:.4g}"
        else:
            raw = entry["value"]
            value = "-" if raw is None else f"{raw:g}"
        unit = entry.get("unit", "")
        flags = "volatile" if entry.get("volatile") else ""
        rows.append([name, kind, value, unit, flags])
    return rows


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of one report (for ``repro report show``)."""
    from ..experiments.records import ascii_table

    env = report.get("environment", {})
    head = [
        ["command", " ".join([report.get("command", "?")] )],
        ["argv", " ".join(report.get("argv", []))],
        ["seed", str(report.get("seed"))],
        ["created", report.get("created_at", "?")],
        ["python", env.get("python", "?")],
        ["platform", env.get("platform", "?")],
    ]
    for name, value in sorted(report.get("timings", {}).items()):
        head.append([f"timing {name}", f"{value:.3f}"])
    text = ascii_table(["field", "value"], head, title="Run report")
    metrics = report.get("metrics", {})
    if metrics:
        text += "\n\n" + ascii_table(
            ["metric", "kind", "value", "unit", ""],
            _metric_rows(metrics),
            title=f"Metrics ({len(metrics)})",
        )
    return text


def diff_reports(
    a: Dict[str, Any],
    b: Dict[str, Any],
    include_volatile: bool = False,
) -> List[str]:
    """Metric-level differences between two reports (empty = no drift).

    Volatile metrics (and the environment/timings sections, which are
    expected to differ) are ignored unless ``include_volatile`` — the
    deterministic remainder must match exactly for two runs of the same
    command at the same seed.
    """
    lines: List[str] = []
    metrics_a = a.get("metrics", {})
    metrics_b = b.get("metrics", {})

    def keep(name: str, entry: Dict[str, Any]) -> bool:
        if include_volatile:
            return True
        if entry.get("volatile"):
            return False
        return not name.startswith(VOLATILE_PREFIXES)

    names_a = {n for n, e in metrics_a.items() if keep(n, e)}
    names_b = {n for n, e in metrics_b.items() if keep(n, e)}
    for name in sorted(names_a - names_b):
        lines.append(f"only in A: {name}")
    for name in sorted(names_b - names_a):
        lines.append(f"only in B: {name}")
    for name in sorted(names_a & names_b):
        entry_a, entry_b = metrics_a[name], metrics_b[name]
        if entry_a.get("kind") != entry_b.get("kind"):
            lines.append(
                f"{name}: kind {entry_a.get('kind')} != {entry_b.get('kind')}"
            )
            continue
        if entry_a.get("kind") == "histogram":
            for field in ("bounds", "counts", "total", "sum"):
                if entry_a.get(field) != entry_b.get(field):
                    lines.append(
                        f"{name}: {field} {entry_a.get(field)} != "
                        f"{entry_b.get(field)}"
                    )
        elif entry_a.get("value") != entry_b.get("value"):
            lines.append(
                f"{name}: {entry_a.get('value')} != {entry_b.get('value')}"
            )
    if a.get("seed") != b.get("seed"):
        lines.insert(
            0,
            f"seed differs: {a.get('seed')} != {b.get('seed')} "
            "(metric drift below is expected)",
        )
    return lines

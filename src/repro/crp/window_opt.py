"""Policy element 2 — the initial window length heuristic.

The paper leaves the optimal window length open (its SMDP computation is
"too computationally expensive to be of practical use") and instead
adopts the heuristic: *choose the length that minimizes the average time
required by the windowing process to schedule a message* (§4.1).

Because the scheduling time depends on the window length only through
the mean window occupancy μ = λ·w, the heuristic reduces to a
one-dimensional minimisation of E[T](μ) (see
:func:`repro.crp.scheduling_time.mean_scheduling_slots`).  E[T] → ∞ as
μ → 0 (endless empty windows) and grows like the splitting cost for
μ → ∞, so the minimiser is interior and unique in practice (the function
is strictly convex on the region of interest; we verify unimodality
numerically in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from scipy.optimize import minimize_scalar

from .scheduling_time import mean_scheduling_slots

__all__ = ["optimal_window_occupancy", "WindowSizer"]


@lru_cache(maxsize=1)
def optimal_window_occupancy(
    lower: float = 1e-3, upper: float = 20.0, tol: float = 1e-10
) -> float:
    """The occupancy μ* minimising the mean scheduling slots per message.

    The value is a universal constant of the binary splitting rule (it
    does not depend on the arrival rate), so it is cached.
    """
    result = minimize_scalar(
        mean_scheduling_slots, bounds=(lower, upper), method="bounded",
        options={"xatol": tol},
    )
    if not result.success:  # pragma: no cover - bounded search always succeeds
        raise RuntimeError(f"window-occupancy optimisation failed: {result.message}")
    return float(result.x)


@dataclass(frozen=True)
class WindowSizer:
    """Computes initial window lengths from the occupancy heuristic.

    Parameters
    ----------
    occupancy:
        Target mean arrivals per window; defaults to the heuristic
        optimum μ*.

    Example
    -------
    >>> sizer = WindowSizer()
    >>> w = sizer.window_length(arrival_rate=0.02)  # ~ μ*/0.02 slots
    """

    occupancy: float | None = None

    @property
    def target_occupancy(self) -> float:
        """The occupancy the sizer aims for."""
        return self.occupancy if self.occupancy is not None else optimal_window_occupancy()

    def window_length(self, arrival_rate: float) -> float:
        """Window length w = μ*/λ for the given (accepted) arrival rate.

        Raises for a non-positive rate: with no traffic there is no
        meaningful window scale (callers should use a fallback such as
        the time constraint K).
        """
        if arrival_rate <= 0:
            raise ValueError(
                f"window sizing requires a positive arrival rate, got {arrival_rate}"
            )
        return self.target_occupancy / arrival_rate

    def mean_scheduling_slots(self) -> float:
        """E[T] at the sizer's occupancy."""
        return mean_scheduling_slots(self.target_occupancy)

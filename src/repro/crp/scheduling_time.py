"""Scheduling-time distribution of the window protocol.

In the queueing model of §4, a message's *service time* is its
transmission time ``M·τ`` plus a *scheduling* component: the windowing
slots between the end of the previous transmission (or the message's own
arrival, whichever is later) and the start of its own transmission.

Under the controlled protocol with backlog, successive initial windows
cover adjacent, as-yet-unexamined stretches of time, so (Assumption 1)
the numbers of arrivals in successive windows are iid Poisson(μ) with
``μ = λ_acc · w`` (``λ_acc`` = arrival rate of surviving messages, ``w`` =
initial window length).  One message is transmitted per windowing
process, and the scheduling slots it pays are

    T = (number of consecutive empty windows, one slot each)
      + 0                       if its window holds exactly one arrival
      + 1 + resolution slots    if its window holds n ≥ 2 arrivals

(the extra 1 is the collision-detection slot).  This module computes the
exact pmf and mean of T and the two service-time models used by the
performance study:

* :class:`ExactSchedulingModel` — full pmf of T, convolved with the
  deterministic transmission time;
* :class:`GeometricSchedulingModel` — the paper's approximation
  ([Kurose 83], quoted in §4.1): a geometric distribution with the same
  mean, convolved with the transmission time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..queueing.distributions import LatticePMF, deterministic_pmf, geometric_pmf
from .splitting import expected_resolution_steps, resolution_time_pmf

__all__ = [
    "poisson_window_probabilities",
    "mean_scheduling_slots",
    "scheduling_time_pmf",
    "ExactSchedulingModel",
    "GeometricSchedulingModel",
]


def poisson_window_probabilities(mu: float, n_max: int) -> np.ndarray:
    """Poisson(μ) pmf truncated at ``n_max`` (unnormalised tail dropped)."""
    if mu < 0:
        raise ValueError(f"window occupancy mean must be non-negative, got {mu}")
    k = np.arange(n_max + 1)
    if mu == 0:
        p = np.zeros(n_max + 1)
        p[0] = 1.0
        return p
    log_p = k * math.log(mu) - mu - np.array([math.lgamma(i + 1) for i in k])
    return np.exp(log_p)


def occupancy_cutoff(mu: float) -> int:
    """Truncation point keeping all but ~1e-12 of the Poisson mass."""
    return max(8, int(mu + 12.0 * math.sqrt(mu + 1.0) + 10))


def mean_scheduling_slots(mu: float) -> float:
    """Expected scheduling slots per transmitted message, E[T](μ).

        E[T] = [ q₀ + Σ_{n≥2} qₙ·(1 + D(n)) ] / (1 − q₀)

    where q is Poisson(μ) and D the resolution recursion.  Undefined at
    μ = 0 (an empty channel schedules nothing); raises there.
    """
    if mu <= 0:
        raise ValueError(f"window occupancy must be positive, got {mu}")
    n_max = occupancy_cutoff(mu)
    q = poisson_window_probabilities(mu, n_max)
    numerator = q[0]
    for n in range(2, n_max + 1):
        numerator += q[n] * (1.0 + expected_resolution_steps(n))
    return float(numerator / (1.0 - q[0]))


def scheduling_time_pmf(mu: float, t_max: int = 400) -> LatticePMF:
    """Exact pmf of the scheduling slots T for window occupancy mean μ.

    T = G + C where G counts single-slot empty windows (geometric with
    success probability 1 − e^{−μ}) and C is the conditional
    resolution cost of the first non-empty window.  The result is a
    :class:`LatticePMF` on unit (τ) slots, truncated at ``t_max``; the
    truncated tail mass is reported by ``truncation_deficit``.
    """
    if mu <= 0:
        raise ValueError(f"window occupancy must be positive, got {mu}")
    if t_max < 1:
        raise ValueError(f"t_max must be at least 1, got {t_max}")

    n_max = occupancy_cutoff(mu)
    q = poisson_window_probabilities(mu, n_max)
    p_empty = float(q[0])
    busy_mass = 1.0 - p_empty

    # C: resolution cost of the first non-empty window.
    c = np.zeros(t_max + 1)
    c[0] = q[1] / busy_mass
    resolution = resolution_time_pmf(n_max, t_max - 1)
    for n in range(2, n_max + 1):
        weight = q[n] / busy_mass
        # cost = 1 (collision slot) + resolution slots
        c[1:] += weight * resolution[n]

    # G: number of empty windows before the non-empty one, one slot each.
    n_geo = t_max + 1
    g = np.power(p_empty, np.arange(n_geo)) * busy_mass

    t = np.convolve(g, c)[: t_max + 1]
    return LatticePMF(t, delta=1.0)


@dataclass(frozen=True)
class ExactSchedulingModel:
    """Service-time model using the exact scheduling-time pmf.

    Parameters
    ----------
    transmission_slots:
        Fixed message transmission time M (in τ slots).
    window_occupancy:
        Mean number of arrivals per initial window, μ = λ_acc·w.  When
        built through :class:`repro.crp.window_opt.WindowSizer` this is
        the heuristic optimum μ*.
    t_max:
        Truncation for the scheduling pmf.
    """

    transmission_slots: float
    window_occupancy: float
    t_max: int = 400

    def scheduling_pmf(self) -> LatticePMF:
        """The scheduling-slot distribution T."""
        return scheduling_time_pmf(self.window_occupancy, self.t_max)

    def mean_scheduling(self) -> float:
        """E[T] in slots."""
        return mean_scheduling_slots(self.window_occupancy)

    def service_pmf(self) -> LatticePMF:
        """Full service time: scheduling + deterministic transmission."""
        sched = self.scheduling_pmf()
        # Renormalise the tiny truncated tail onto the retained support so
        # downstream samplers see a proper distribution.
        mass = sched.p.sum()
        if mass <= 0:
            raise RuntimeError("scheduling pmf lost all mass to truncation")
        normalised = LatticePMF(sched.p / mass, sched.delta)
        return normalised.shift(self.transmission_slots)


@dataclass(frozen=True)
class GeometricSchedulingModel:
    """The paper's geometric scheduling-time approximation (§4.1).

    Scheduling slots are modelled as geometric on {0, 1, 2, ...} with the
    *exact* mean E[T](μ); the service time is that plus the deterministic
    transmission time.
    """

    transmission_slots: float
    window_occupancy: float

    def mean_scheduling(self) -> float:
        """E[T] in slots (same exact mean as the exact model)."""
        return mean_scheduling_slots(self.window_occupancy)

    def service_pmf(self) -> LatticePMF:
        """Geometric(mean = E[T]) scheduling plus transmission."""
        mean = self.mean_scheduling()
        sched = geometric_pmf(mean, delta=1.0, start=0.0)
        return sched.shift(self.transmission_slots)


def transmission_only_service(transmission_slots: float) -> LatticePMF:
    """Service with zero scheduling overhead (the K = 0 starting point)."""
    return deterministic_pmf(transmission_slots, delta=1.0)

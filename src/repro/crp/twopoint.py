"""The [Kurose 83] two-endpoint fit for the mean scheduling time.

The paper's performance model (§4.1) cites an earlier approximation: the
average scheduling time was "exactly determined" at two arrival rates
and a function fitted through those endpoints approximated the value at
intermediate rates.  This module reproduces that construction so it can
be compared with the exact recursion of
:mod:`repro.crp.scheduling_time`, quantifying how much the shortcut
costs (see ``benchmarks/test_bench_ablations.py``).

Two fit families are provided:

* ``"linear"`` — affine interpolation in μ;
* ``"exponential"`` — ``s(μ) = a·e^{b·μ}``, matched at both endpoints
  (useful because E[T] grows roughly geometrically for large μ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .scheduling_time import mean_scheduling_slots

__all__ = ["TwoPointFit", "fit_two_point"]


@dataclass(frozen=True)
class TwoPointFit:
    """A fitted mean-scheduling-time curve through two exact endpoints.

    Attributes
    ----------
    mu_low, mu_high:
        The occupancies at which the exact mean was computed.
    s_low, s_high:
        The exact E[T] values at those occupancies.
    kind:
        ``"linear"`` or ``"exponential"``.
    """

    mu_low: float
    mu_high: float
    s_low: float
    s_high: float
    kind: str

    def mean_scheduling(self, mu: float) -> float:
        """Fitted E[T] at occupancy μ (extrapolates outside the endpoints)."""
        if self.kind == "linear":
            if self.mu_high == self.mu_low:
                return self.s_low
            slope = (self.s_high - self.s_low) / (self.mu_high - self.mu_low)
            return self.s_low + slope * (mu - self.mu_low)
        # exponential: s = a·e^{b·μ}
        b = math.log(self.s_high / self.s_low) / (self.mu_high - self.mu_low)
        a = self.s_low * math.exp(-b * self.mu_low)
        return a * math.exp(b * mu)

    def relative_error(self, mu: float) -> float:
        """|fit − exact| / exact at occupancy μ."""
        exact = mean_scheduling_slots(mu)
        return abs(self.mean_scheduling(mu) - exact) / exact


def fit_two_point(
    mu_low: float, mu_high: float, kind: str = "linear"
) -> TwoPointFit:
    """Fit a curve through the exact E[T] at two occupancies.

    Raises for a degenerate or reversed interval or an unknown family.
    """
    if not mu_low < mu_high:
        raise ValueError(f"need mu_low < mu_high, got {mu_low} >= {mu_high}")
    if kind not in ("linear", "exponential"):
        raise ValueError(f"unknown fit kind: {kind!r}")
    return TwoPointFit(
        mu_low=mu_low,
        mu_high=mu_high,
        s_low=mean_scheduling_slots(mu_low),
        s_high=mean_scheduling_slots(mu_high),
        kind=kind,
    )

"""Joint distribution of (duration, resolved length, success locus).

The semi-Markov decision model (§3) needs more than the scheduling time:
a decision's successor state depends on *how much* of the examined
window was resolved when the transmission began, and the paper's
one-step pseudo-loss (Lemma 3) needs to know *where inside the window*
the transmitted message sat — that determines whether a critical message
(one about to age past the constraint K) was the one saved.

This module computes, by dynamic programming on the binary splitting
tree, the exact joint law of

    (T, F, S) = (idle/collision slots spent,
                 fraction of the window resolved,
                 width of the final success sub-window as a fraction)

for one windowing process on a window holding Poisson(μ) arrivals.
Window coordinates run x ∈ [0, 1] with x = 1 the *older* edge.  Under
the older-half-first rule a success resolves [1 − F, 1]; the success
sub-window — the only resolved piece that contained a message — is its
youngest piece, [1 − F, 1 − F + S], and the transmitted message is
uniformly distributed inside it (Poisson arrivals conditioned on a
single occupant).  The newer-half-first mirror image resolves [0, F]
with the success sub-window [F − S, F].

All fractions are dyadic (denominator 2^depth), hence exact in binary
floating point.  The recursion is truncated at ``depth`` levels; at the
truncation depth a still-colliding sub-interval is treated as resolved
by a single forced transmission (the mass reaching that depth decays
geometrically and is checked in the test suite).  Because every step
descends one level, T ≤ depth within the returned law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from .scheduling_time import occupancy_cutoff, poisson_window_probabilities
from .splitting import binomial_split_probabilities

__all__ = ["WindowProcessDistribution", "windowing_process_outcomes"]

Outcome = Tuple[int, float, float]  # (slots, resolved fraction, success width)


@lru_cache(maxsize=None)
def _resolve(n: int, depth: int) -> Tuple[Tuple[Outcome, float], ...]:
    """Joint (T, F, S) law for an interval known to contain n ≥ 2 arrivals.

    The interval has just been split (free); probabilities follow the
    Binomial(n, 1/2) occupancy of the older half.  At ``depth == 0`` the
    process is forcibly terminated: the interval counts as resolved by
    one transmission spanning the whole of it.
    """
    if n < 2:
        raise ValueError(f"resolution requires n >= 2, got {n}")
    if depth == 0:
        return (((0, 1.0, 1.0), 1.0),)

    q = binomial_split_probabilities(n)
    outcomes: Dict[Outcome, float] = {}

    def add(key: Outcome, probability: float) -> None:
        outcomes[key] = outcomes.get(key, 0.0) + probability

    # Older half holds exactly one arrival: transmission starts now.  The
    # older half (the upper x-half of this interval) is fully resolved and
    # is itself the success sub-window.
    add((0, 0.5, 0.5), q[1])

    # Older half idle: one slot; the newer half holds all n arrivals and
    # is split immediately (§2).  Resolved fractions of the newer half map
    # into the lower x-half; the already-idle older half adds 0.5.
    for (t, f, s), p in _resolve(n, depth - 1):
        add((1 + t, 0.5 + 0.5 * f, 0.5 * s), q[0] * p)

    # Older half collides with j arrivals: one slot, recurse into it.
    for j in range(2, n + 1):
        for (t, f, s), p in _resolve(j, depth - 1):
            add((1 + t, 0.5 * f, 0.5 * s), q[j] * p)

    return tuple(sorted(outcomes.items()))


@dataclass(frozen=True)
class WindowProcessDistribution:
    """Joint outcome law of one windowing process on a Poisson(μ) window.

    Attributes
    ----------
    empty_probability:
        P(window holds no arrivals) = e^{−μ}; the process then spends one
        slot and resolves the entire window with no transmission.
    success_outcomes:
        Mapping (slots, resolved fraction, success width) → probability;
        the probabilities of all success outcomes sum to
        ``1 − empty_probability`` (up to Poisson truncation).
    occupancy:
        The window occupancy μ the law was computed for.
    """

    empty_probability: float
    success_outcomes: Tuple[Tuple[Outcome, float], ...]
    occupancy: float

    def success_probability(self) -> float:
        """Total probability that the process transmits a message."""
        return sum(p for _, p in self.success_outcomes)

    def truncated_mass(self) -> float:
        """Probability unaccounted for by empty + success (Poisson tail)."""
        return max(0.0, 1.0 - self.empty_probability - self.success_probability())

    def mean_slots_given_success(self) -> float:
        """E[scheduling slots | success] — cross-check for scheduling_time."""
        total = self.success_probability()
        if total == 0:
            raise ValueError("no success mass (μ too small for the truncation)")
        return sum(t * p for (t, _f, _s), p in self.success_outcomes) / total

    def mean_resolved_given_success(self) -> float:
        """E[resolved fraction | success]."""
        total = self.success_probability()
        if total == 0:
            raise ValueError("no success mass")
        return sum(f * p for (_t, f, _s), p in self.success_outcomes) / total


def windowing_process_outcomes(
    mu: float, depth: int = 14
) -> WindowProcessDistribution:
    """Compute the joint (T, F, S) law for a fresh window with occupancy μ.

    Parameters
    ----------
    mu:
        Mean number of arrivals in the window (λ_acc · w).
    depth:
        Splitting-depth truncation; outcomes beyond it are forced
        terminal (see module docstring).
    """
    if mu < 0:
        raise ValueError(f"occupancy must be non-negative, got {mu}")
    if depth < 1:
        raise ValueError(f"depth must be at least 1, got {depth}")

    n_max = occupancy_cutoff(mu)
    poisson = poisson_window_probabilities(mu, n_max)

    outcomes: Dict[Outcome, float] = {}

    def add(key: Outcome, probability: float) -> None:
        if probability > 0:
            outcomes[key] = outcomes.get(key, 0.0) + probability

    # Exactly one arrival: immediate success; the whole window is both the
    # resolved region and the success sub-window.
    add((0, 1.0, 1.0), float(poisson[1]))

    # n >= 2: one collision-detection slot, then the splitting recursion.
    for n in range(2, n_max + 1):
        weight = float(poisson[n])
        if weight <= 0:
            continue
        for (t, f, s), p in _resolve(n, depth):
            add((1 + t, f, s), weight * p)

    empty = math.exp(-mu)
    return WindowProcessDistribution(
        empty_probability=empty,
        success_outcomes=tuple(sorted(outcomes.items())),
        occupancy=mu,
    )

"""Stability capacity of the window protocol.

A renewal argument gives the protocol's maximum stable throughput: in
saturation every transmitted message costs, on the channel,

    E[cycle] = E[T](μ) + M   slots per message

where E[T](μ) is the mean scheduling time at window occupancy μ and M
the transmission time.  The backlog drains iff the arrival rate is below

    λ*(M) = 1 / (E[T](μ*) + M),

maximised by the same μ* as the scheduling heuristic — so policy
element 2 simultaneously minimises mean scheduling time *and* maximises
capacity.  The corresponding channel-utilisation bound,

    ρ′_max(M) = M · λ*(M) = M / (M + E[T](μ*)),

approaches 1 as M → ∞ (the per-message overhead is constant ≈ 1.47 τ)
and quantifies how cheap the window protocol's scheduling is compared
with, e.g., stabilised ALOHA's 1/e.

For M = 1 (single-slot packets) this accounting differs from the
classic 0.487 FCFS-splitting capacity of [Gallager 78] because there a
success slot *is* the packet, while here examination feedback is
absorbed into the M-slot transmission (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass

from .scheduling_time import mean_scheduling_slots
from .window_opt import optimal_window_occupancy

__all__ = ["CapacityReport", "max_stable_throughput", "utilization_bound"]


@dataclass(frozen=True)
class CapacityReport:
    """Capacity figures for one message length.

    Attributes
    ----------
    transmission_slots:
        M in τ units.
    occupancy:
        Window occupancy used (μ*).
    scheduling_overhead:
        E[T](μ) in slots per message.
    max_throughput:
        λ* in messages per slot.
    utilization_bound:
        ρ′_max = M·λ* — the largest offered channel load the protocol
        can carry without shedding.
    """

    transmission_slots: float
    occupancy: float
    scheduling_overhead: float
    max_throughput: float
    utilization_bound: float


def max_stable_throughput(
    transmission_slots: float, occupancy: float | None = None
) -> CapacityReport:
    """Maximum arrival rate the protocol sustains at message length M."""
    if transmission_slots <= 0:
        raise ValueError(
            f"transmission must be positive, got {transmission_slots}"
        )
    mu = occupancy if occupancy is not None else optimal_window_occupancy()
    overhead = mean_scheduling_slots(mu)
    lam_star = 1.0 / (overhead + transmission_slots)
    return CapacityReport(
        transmission_slots=float(transmission_slots),
        occupancy=mu,
        scheduling_overhead=overhead,
        max_throughput=lam_star,
        utilization_bound=transmission_slots * lam_star,
    )


def utilization_bound(transmission_slots: float) -> float:
    """Shortcut: the largest sustainable offered channel load ρ′_max(M)."""
    return max_stable_throughput(transmission_slots).utilization_bound

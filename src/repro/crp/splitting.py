"""Collision-resolution analysis of the binary window-splitting process.

When an initial window contains n ≥ 2 message arrivals, the protocol
splits it in half and examines the older half first (Theorem 1, policy
element 3).  Because arrival instants are iid uniform within the window
(Poisson arrivals conditioned on their count), the number of arrivals
falling in the older half is Binomial(n, 1/2), independently at every
level of the splitting tree.

This module computes, for a window *known to contain n ≥ 2 arrivals*
(the collision-detection slot already spent):

* ``expected_resolution_steps(n)`` — expected further idle + collision
  slots until the first successful transmission begins, and
* ``resolution_time_pmf(n_max, t_max)`` — the full distribution of that
  count for every n up to ``n_max``.

Step accounting convention (see DESIGN.md §7): examining a sub-window
costs one slot when the outcome is *idle* or *collision*; a slot in
which exactly one station is enabled starts the message transmission
itself and therefore adds no scheduling overhead.  Under this convention
a message arriving alone in a fresh window has zero scheduling time,
matching the paper's observation that the scheduling delay is exactly
zero when K = 0.

Recursion (q_j = C(n,j)/2ⁿ, the binomial split probabilities):

    D(n) = q₀·(1 + D(n))        -- older half idle: examine, then the
                                    newer half is known to hold all n and
                                    is split immediately (§2)
         + q₁·0                 -- success begins
         + Σ_{j≥2} q_j·(1 + D(j))  -- collision in the older half

which resolves to ``D(n)·(1 − q₀ − q_n) = (1 − q₁) + Σ_{2≤j≤n−1} q_j·D(j)``.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = [
    "binomial_split_probabilities",
    "expected_resolution_steps",
    "resolution_time_pmf",
    "resolution_success_probability",
]


@lru_cache(maxsize=None)
def binomial_split_probabilities(n: int) -> tuple:
    """P(j of n uniform arrivals fall in the older half), j = 0..n."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    scale = 0.5**n
    return tuple(math.comb(n, j) * scale for j in range(n + 1))


@lru_cache(maxsize=None)
def expected_resolution_steps(n: int) -> float:
    """Expected idle+collision slots to isolate one message from n ≥ 2.

    The count excludes the slot in which the successful transmission
    begins and excludes the initial collision-detection slot (already
    spent when the window is *known* to contain n ≥ 2).
    """
    if n < 2:
        raise ValueError(f"resolution requires n >= 2 arrivals, got {n}")
    q = binomial_split_probabilities(n)
    constant = 1.0 - q[1]
    cross = sum(q[j] * expected_resolution_steps(j) for j in range(2, n))
    self_coefficient = 1.0 - q[0] - q[n]
    return (constant + cross) / self_coefficient


def resolution_time_pmf(n_max: int, t_max: int) -> np.ndarray:
    """P(resolution takes t slots | window known to contain n arrivals).

    Returns an array ``pmf[n, t]`` for ``n = 0..n_max``, ``t = 0..t_max``.
    Rows ``n = 0`` and ``n = 1`` are degenerate (no resolution needed:
    all mass at t = 0).  Rows with n ≥ 2 may be sub-stochastic if
    ``t_max`` truncates the tail; the missing mass is the probability
    resolution takes longer than ``t_max`` slots.

    The recursion mirrors :func:`expected_resolution_steps`:

        P_n(t) = q₁·[t = 0] + q₀·P_n(t−1) + Σ_{j≥2} q_j·P_j(t−1)

    and is evaluated jointly for all n, increasing t, so each row needs
    only the previous column.
    """
    if n_max < 0 or t_max < 0:
        raise ValueError("n_max and t_max must be non-negative")
    pmf = np.zeros((n_max + 1, t_max + 1))
    pmf[0, 0] = 1.0
    if n_max >= 1:
        pmf[1, 0] = 1.0
    if n_max < 2:
        return pmf

    q_rows = [binomial_split_probabilities(n) for n in range(n_max + 1)]
    for n in range(2, n_max + 1):
        pmf[n, 0] = q_rows[n][1]
    for t in range(1, t_max + 1):
        previous = pmf[:, t - 1]
        for n in range(2, n_max + 1):
            q = q_rows[n]
            value = q[0] * previous[n]
            for j in range(2, n + 1):
                value += q[j] * previous[j]
            pmf[n, t] = value
    return pmf


def resolution_success_probability(n: int, t_max: int) -> float:
    """Probability that n arrivals are resolved within ``t_max`` slots."""
    if n < 2:
        return 1.0
    pmf = resolution_time_pmf(n, t_max)
    return float(pmf[n].sum())

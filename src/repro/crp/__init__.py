"""Collision-resolution-process (CRP) analysis.

Exact analysis of the binary window-splitting process: expected
resolution steps, scheduling-time distributions, the optimal-occupancy
window-length heuristic (policy element 2), the joint
(duration, resolved-length) law used by the decision model, and the
[Kurose 83] two-endpoint approximation for comparison.
"""

from .capacity import CapacityReport, max_stable_throughput, utilization_bound
from .joint import WindowProcessDistribution, windowing_process_outcomes
from .scheduling_time import (
    ExactSchedulingModel,
    GeometricSchedulingModel,
    mean_scheduling_slots,
    scheduling_time_pmf,
)
from .splitting import (
    binomial_split_probabilities,
    expected_resolution_steps,
    resolution_time_pmf,
)
from .twopoint import TwoPointFit, fit_two_point
from .window_opt import WindowSizer, optimal_window_occupancy

__all__ = [
    "binomial_split_probabilities",
    "expected_resolution_steps",
    "resolution_time_pmf",
    "mean_scheduling_slots",
    "scheduling_time_pmf",
    "ExactSchedulingModel",
    "GeometricSchedulingModel",
    "WindowSizer",
    "optimal_window_occupancy",
    "WindowProcessDistribution",
    "windowing_process_outcomes",
    "CapacityReport",
    "max_stable_throughput",
    "utilization_bound",
    "TwoPointFit",
    "fit_two_point",
]

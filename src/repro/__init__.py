"""repro — reproduction of Kurose, Schwartz & Yemini (1983).

*Controlling Window Protocols for Time-Constrained Communication in a
Multiple Access Environment* (Columbia CUCS-75-83; Proc. 5th Data
Communications Symposium, 1983).

The package implements, from scratch:

- :mod:`repro.core` — the controlled time-window protocol (policy
  elements 1-4, Theorem 1's optimal choices) and its uncontrolled
  FCFS / LCFS / RANDOM variants;
- :mod:`repro.des` — a discrete-event simulation engine;
- :mod:`repro.mac` — the slotted broadcast channel, stations, the
  window-MAC simulator, plus ALOHA/TDMA baselines;
- :mod:`repro.crp` — exact collision-resolution analysis (scheduling
  times, the window-length heuristic);
- :mod:`repro.queueing` — M/G/1 machinery incl. the impatient-customer
  model of eq. 4.7;
- :mod:`repro.smdp` — the semi-Markov decision model of §3 with Howard
  policy iteration (Appendix A);
- :mod:`repro.faults` — fault injection (imperfect feedback, station
  failures) and per-station replica resilience;
- :mod:`repro.workloads` — Poisson / MMPP / voice / sensor traffic;
- :mod:`repro.experiments` — the harness regenerating Figure 7,
  the Theorem 1 verification and the ablations;
- :mod:`repro.stats` — output analysis.

Quickstart
----------
>>> from repro import ControlPolicy, WindowMACSimulator
>>> policy = ControlPolicy.optimal(deadline=100, accepted_rate=0.02)
>>> sim = WindowMACSimulator(policy, arrival_rate=0.02,
...                          transmission_slots=25, deadline=100, seed=1)
>>> result = sim.run(horizon_slots=50_000, warmup_slots=5_000)
>>> 0.0 <= result.loss_fraction <= 1.0
True
"""

from .core import ControlPolicy, ProtocolController
from .crp import WindowSizer, optimal_window_occupancy
from .faults import FaultModel, FaultTelemetry
from .experiments import PAPER_PANELS, PanelConfig, generate_panel
from .mac import MACSimResult, WindowMACSimulator
from .queueing import ImpatientMG1, LatticePMF, loss_curve
from .smdp import build_protocol_smdp, policy_iteration

__version__ = "1.0.0"

__all__ = [
    "ControlPolicy",
    "ProtocolController",
    "WindowMACSimulator",
    "MACSimResult",
    "FaultModel",
    "FaultTelemetry",
    "ImpatientMG1",
    "LatticePMF",
    "loss_curve",
    "WindowSizer",
    "optimal_window_occupancy",
    "build_protocol_smdp",
    "policy_iteration",
    "PanelConfig",
    "PAPER_PANELS",
    "generate_panel",
    "__version__",
]

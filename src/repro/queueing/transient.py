"""Transient behaviour of the balking workload queue.

The paper's model is steady-state, but time-constrained systems care
about transients: what happens to the loss rate right after a traffic
burst dumps work into the channel?  The discrete workload chain of
:mod:`repro.queueing.workload_chain` answers this exactly — its one-slot
update is cheap to apply repeatedly, so the full time-dependent workload
distribution (and instantaneous loss probability) falls out of matrix-free
vector iteration:

    π_{t+1} = (1 − a)·D(π_t) + a·[ D(π_t·1_{≤K}) ⊛ X + D(π_t·1_{>K}) ]

where ``D`` shifts one slot of completed work down and ``X`` is the
service pmf.  Complexity per slot is O(N + support(X)·N) via the
convolution; horizons of 10⁴ slots are immediate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .distributions import LatticePMF

__all__ = ["TransientResult", "transient_workload"]


@dataclass(frozen=True)
class TransientResult:
    """Time-dependent workload and loss of the balking queue.

    Attributes
    ----------
    times:
        Slot indices at which snapshots were taken.
    loss_probability:
        Instantaneous P(arriving customer balks) at each snapshot.
    mean_workload:
        Mean unfinished work at each snapshot (model time units).
    final_pi:
        Workload distribution after the last slot.
    """

    times: np.ndarray
    loss_probability: np.ndarray
    mean_workload: np.ndarray
    final_pi: np.ndarray

    def settling_time(self, target: float, tolerance: float = 0.1) -> float:
        """First snapshot time with loss within ``tolerance`` (relative)
        of ``target``; infinity if never reached."""
        band = np.abs(self.loss_probability - target) <= tolerance * max(
            target, 1e-12
        )
        hits = np.flatnonzero(band)
        return float(self.times[hits[0]]) if hits.size else math.inf


def transient_workload(
    arrival_rate: float,
    service: LatticePMF,
    deadline: float,
    horizon_slots: int,
    initial_workload: float = 0.0,
    initial_pi: np.ndarray | None = None,
    snapshot_every: int = 1,
) -> TransientResult:
    """Evolve the balking workload distribution slot by slot.

    Parameters
    ----------
    arrival_rate:
        Poisson rate λ (per slot of the service lattice).
    service:
        Lattice service-time distribution (no mass at 0, proper).
    deadline:
        Balking threshold K.
    horizon_slots:
        Number of lattice slots to evolve.
    initial_workload:
        Deterministic starting workload (e.g. the residue of a burst);
        ignored when ``initial_pi`` is given.
    snapshot_every:
        Record every this-many slots.
    """
    delta = service.delta
    if service.p[0] > 0:
        raise ValueError("service times must be at least one lattice slot")
    if service.truncation_deficit > 1e-9:
        raise ValueError("service distribution must be proper")
    if deadline < 0:
        raise ValueError(f"negative deadline: {deadline}")
    if horizon_slots < 1:
        raise ValueError(f"horizon must be at least one slot, got {horizon_slots}")
    if snapshot_every < 1:
        raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")

    a = 1.0 - math.exp(-arrival_rate * delta)
    k_index = int(math.floor(deadline / delta + 1e-9))
    x = service.p
    x_max = x.size - 1
    # Workload can temporarily exceed K + x_max when it starts there.
    start_index = int(round(initial_workload / delta))
    n_states = max(k_index + x_max + 1, start_index + 1) + 1

    if initial_pi is not None:
        pi = np.zeros(n_states)
        pi[: len(initial_pi)] = initial_pi
        pi /= pi.sum()
    else:
        pi = np.zeros(n_states)
        pi[start_index] = 1.0

    levels = np.arange(n_states)
    times = []
    losses = []
    means = []

    def record(t: int) -> None:
        times.append(t)
        losses.append(float(pi[k_index + 1 :].sum()))
        means.append(float(np.dot(levels, pi)) * delta)

    def shift_down(vector: np.ndarray) -> np.ndarray:
        """Distribution of max(u − 1, 0): one slot of service completes."""
        out = np.zeros_like(vector)
        out[0] = vector[0] + (vector[1] if vector.size > 1 else 0.0)
        out[1:-1] = vector[2:]
        return out

    record(0)
    for t in range(1, horizon_slots + 1):
        down = shift_down(pi)
        # Balking decided against the pre-decrement level: arrivals that
        # found workload <= K join (add a service), the rest balk.
        joiners = pi.copy()
        joiners[k_index + 1 :] = 0.0
        down_join = shift_down(joiners)
        down_balk = down - down_join

        arrived = np.convolve(down_join, x)[:n_states] + down_balk
        pi = (1.0 - a) * down + a * arrived
        total = pi.sum()
        if abs(total - 1.0) > 1e-9:
            pi = pi / total
        if t % snapshot_every == 0 or t == horizon_slots:
            record(t)

    return TransientResult(
        times=np.asarray(times, dtype=float) * delta,
        loss_probability=np.asarray(losses),
        mean_workload=np.asarray(means),
        final_pi=pi,
    )

"""Discrete-time M/G/1 busy-period distribution.

Needed for the non-preemptive LCFS waiting-time analysis
(:mod:`repro.queueing.lcfs`), the [Kurose 83] LCFS baseline of Figure 7.

In a slotted system with per-slot Bernoulli(a) arrivals, the busy period
``G`` started by one customer satisfies the branching identity

    G  =  Σ_{slots s of the initial service}  (1 + A_s · G_s)

where ``A_s`` is the arrival indicator of slot ``s`` and the ``G_s`` are
iid copies of ``G`` (each arrival during a service ultimately contributes
its own sub-busy-period).  In pgf form  ``G(z) = X̃(z·(1 − a + a·G(z)))``.
We solve it by fixed-point iteration directly on truncated pmf arrays:
starting from G₀ = pmf of X, repeatedly substitute.  The iteration is
monotone in the truncated total mass and converges geometrically for
ρ < 1.
"""

from __future__ import annotations

import numpy as np

from .distributions import LatticePMF

__all__ = ["busy_period_pmf", "delay_busy_period_pmf"]


def _compose(
    initial: np.ndarray, a: float, g: np.ndarray, limit: int
) -> np.ndarray:
    """PMF of ``Σ_{s=1..T} (1 + A_s·G_s)`` with ``T ~ initial``.

    ``initial`` is the pmf of the number of slots T (lattice counts).
    Computes Σ_t P(T = t) · W^{*t} truncated to ``limit``, where
    ``W = δ₁ ⊛ ((1 − a)δ₀ + a·G)`` is the per-slot contribution.
    """
    # Per-slot kernel W: 1 slot of work plus (with prob a) a sub-busy period.
    w = np.zeros(min(limit, g.size + 1))
    w[0] = 0.0
    w[1:] = a * g[: w.size - 1]
    if w.size > 1:
        w[1] += 1.0 - a
    elif limit > 1:  # pragma: no cover - degenerate truncation
        pass

    out = np.zeros(limit)
    power = np.zeros(limit)
    power[0] = 1.0  # W^{*0}
    max_t = initial.size - 1
    for t in range(max_t + 1):
        if t > 0:
            power = np.convolve(power, w)[:limit]
        if initial[t] > 0:
            out += initial[t] * power
    return out


def busy_period_pmf(
    service: LatticePMF,
    arrival_rate: float,
    horizon: float,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> LatticePMF:
    """Busy-period pmf of the slotted M/G/1 queue, truncated at ``horizon``.

    Parameters
    ----------
    service:
        Lattice service-time distribution (no mass at 0).
    arrival_rate:
        Poisson rate λ; per-slot arrival probability ``a = 1 − e^{−λ·delta}``.
    horizon:
        Truncation horizon: mass beyond it is dropped (the returned pmf is
        sub-stochastic; probabilities below the horizon are exact up to
        the iteration tolerance).
    """
    if service.p[0] > 0:
        raise ValueError("service times must be at least one lattice slot")
    delta = service.delta
    a = 1.0 - np.exp(-arrival_rate * delta)
    limit = int(np.floor(horizon / delta + 1e-9)) + 1
    x = service.p[:limit].copy()

    g = x.copy()
    if g.size < limit:
        g = np.concatenate([g, np.zeros(limit - g.size)])
    for _ in range(max_iter):
        g_next = _compose(service.p, a, g, limit)
        change = float(np.abs(g_next - g).sum())
        g = g_next
        if change < tol:
            break
    else:  # pragma: no cover - safeguarded by geometric convergence
        raise RuntimeError("busy-period iteration did not converge")

    result = LatticePMF.__new__(LatticePMF)
    result.p = np.clip(g, 0.0, None)
    result.delta = delta
    return result


def delay_busy_period_pmf(
    initial_delay: LatticePMF,
    service: LatticePMF,
    arrival_rate: float,
    horizon: float,
    tol: float = 1e-10,
) -> LatticePMF:
    """PMF of a busy period initiated by work drawn from ``initial_delay``.

    This is the *delay busy period*: the time to clear an initial amount
    of work ``R`` when every arrival during the clearing also jumps ahead
    (as later arrivals do under non-preemptive LCFS).  In pgf form
    ``D(z) = R̃(z·(1 − a + a·G(z)))`` with ``G`` the ordinary busy period.
    """
    delta = service.delta
    if abs(initial_delay.delta - delta) > 1e-12:
        raise ValueError("initial delay and service must share the lattice step")
    a = 1.0 - np.exp(-arrival_rate * delta)
    limit = int(np.floor(horizon / delta + 1e-9)) + 1
    g = busy_period_pmf(service, arrival_rate, horizon, tol=tol).p
    out = _compose(initial_delay.p, a, g, limit)
    result = LatticePMF.__new__(LatticePMF)
    result.p = np.clip(out, 0.0, None)
    result.delta = delta
    return result

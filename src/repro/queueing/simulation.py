"""Monte-Carlo validation of the queueing models.

Two simulators, both driven by explicit sample paths (no approximation
beyond finite run length):

:func:`simulate_impatient_mg1`
    Lindley workload recursion with balking — the model of Figure 5b.
    Validates the eq. 4.7 solver and the workload chain.
:func:`simulate_mg1_waits`
    Event-driven single-server queue under FCFS or non-preemptive LCFS,
    recording every customer's waiting time — validates the baseline
    waiting-time analytics of :mod:`repro.queueing.mg1` and
    :mod:`repro.queueing.lcfs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from .distributions import LatticePMF

__all__ = [
    "ImpatientSimResult",
    "WaitSimResult",
    "simulate_impatient_mg1",
    "simulate_mg1_waits",
]

ServiceSampler = Union[LatticePMF, Callable[[np.random.Generator, int], np.ndarray]]


def _make_sampler(service: ServiceSampler) -> Callable[[np.random.Generator, int], np.ndarray]:
    if isinstance(service, LatticePMF):
        return lambda rng, size: np.asarray(service.sample(rng, size), dtype=float)
    if callable(service):
        return service
    raise TypeError(f"unsupported service sampler: {service!r}")


@dataclass(frozen=True)
class ImpatientSimResult:
    """Outcome of a balking-workload simulation.

    Attributes
    ----------
    loss_probability:
        Fraction of arrivals that found workload above the deadline.
    n_customers:
        Total arrivals simulated (after warm-up).
    n_lost:
        Number of balking arrivals.
    mean_accepted_wait:
        Mean workload seen by accepted customers (their FCFS wait).
    """

    loss_probability: float
    n_customers: int
    n_lost: int
    mean_accepted_wait: float

    def loss_stderr(self) -> float:
        """Binomial standard error of the loss estimate."""
        p = self.loss_probability
        return float(np.sqrt(p * (1.0 - p) / self.n_customers))


def simulate_impatient_mg1(
    arrival_rate: float,
    service: ServiceSampler,
    deadline: float,
    n_customers: int,
    rng: np.random.Generator,
    warmup: int = 1000,
) -> ImpatientSimResult:
    """Simulate the M/G/1 queue with workload-based balking.

    Arrivals are Poisson; a customer joins iff the unfinished work it
    finds is at most ``deadline`` (its waiting time would meet the
    constraint); otherwise it is lost.
    """
    if n_customers <= 0:
        raise ValueError(f"n_customers must be positive, got {n_customers}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    sampler = _make_sampler(service)

    total = warmup + n_customers
    interarrivals = rng.exponential(1.0 / arrival_rate, size=total)
    services = sampler(rng, total)

    workload = 0.0
    n_lost = 0
    accepted_wait_sum = 0.0
    n_accepted = 0
    for index in range(total):
        workload = max(0.0, workload - interarrivals[index])
        counted = index >= warmup
        if workload <= deadline:
            if counted:
                accepted_wait_sum += workload
                n_accepted += 1
            workload += services[index]
        elif counted:
            n_lost += 1

    mean_wait = accepted_wait_sum / n_accepted if n_accepted else float("nan")
    return ImpatientSimResult(
        loss_probability=n_lost / n_customers,
        n_customers=n_customers,
        n_lost=n_lost,
        mean_accepted_wait=mean_wait,
    )


@dataclass(frozen=True)
class WaitSimResult:
    """Per-customer waiting times from a work-conserving M/G/1 run."""

    waits: np.ndarray

    @property
    def mean_wait(self) -> float:
        """Sample mean waiting time."""
        return float(self.waits.mean())

    def fraction_late(self, deadline: float) -> float:
        """Fraction of customers with wait strictly above ``deadline``."""
        return float((self.waits > deadline).mean())


def simulate_mg1_waits(
    arrival_rate: float,
    service: ServiceSampler,
    n_customers: int,
    rng: np.random.Generator,
    discipline: str = "fcfs",
    warmup: int = 1000,
    max_queue: Optional[int] = None,
) -> WaitSimResult:
    """Simulate a single-server queue and record waiting times.

    Parameters
    ----------
    discipline:
        ``"fcfs"`` or ``"lcfs"`` (non-preemptive).
    max_queue:
        Optional cap on the number of waiting customers (raises when
        exceeded) to catch accidentally unstable configurations early.
    """
    if discipline not in ("fcfs", "lcfs"):
        raise ValueError(f"unknown discipline: {discipline!r}")
    sampler = _make_sampler(service)

    total = warmup + n_customers
    arrival_times = np.cumsum(rng.exponential(1.0 / arrival_rate, size=total))
    services = sampler(rng, total)

    waits = np.empty(total)
    queue: list[int] = []  # indices of waiting customers
    server_free_at = 0.0
    in_service_until = 0.0
    next_arrival = 0
    served = 0

    while served < total:
        if queue and (next_arrival >= total or in_service_until <= arrival_times[next_arrival]):
            # Start the next service before the next arrival occurs.
            index = queue.pop(0) if discipline == "fcfs" else queue.pop()
            start = max(in_service_until, arrival_times[index])
            waits[index] = start - arrival_times[index]
            in_service_until = start + services[index]
            served += 1
        elif next_arrival < total:
            index = next_arrival
            next_arrival += 1
            if arrival_times[index] >= in_service_until and not queue:
                # Arrives to an empty system: immediate service.
                waits[index] = 0.0
                in_service_until = arrival_times[index] + services[index]
                served += 1
            else:
                queue.append(index)
                if max_queue is not None and len(queue) > max_queue:
                    raise RuntimeError(
                        f"queue exceeded {max_queue} customers; "
                        "the configuration is likely unstable"
                    )
        else:  # pragma: no cover - defensive; loop invariants prevent this
            raise AssertionError("no work left but customers remain unserved")

    _ = server_free_at  # kept for clarity of the state model
    return WaitSimResult(waits=waits[warmup:])

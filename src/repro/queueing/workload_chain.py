"""Exact discrete-time workload chain for the balking M/G/1 queue.

An independent validator for the paper's eq. 4.7 series solver
(:mod:`repro.queueing.impatient`).  Time is divided into lattice slots of
length ``delta``; at most one arrival occurs per slot (Bernoulli with
probability ``a ≈ λ·delta``) and service times live on the same lattice.
An arrival joins iff the workload it finds is at most the deadline K;
otherwise it balks (is lost) — exactly the model of Figure 5b.

Because the workload decreases by at most one slot per slot, the chain is
*skip-free to the left*, and its stationary distribution follows from a
level-crossing recursion with O(N²) work instead of an O(N³) linear
solve:

    π(n+1)·(1 − a·[n+1 ≤ Kᵢ]) = a · Σ_{u ≤ min(n, Kᵢ)} π(u) · P(X > n − d(u))

with ``d(u) = max(u − 1, 0)`` (one slot of service completed) and ``Kᵢ``
the deadline in lattice units.  Normalising yields π exactly; by BASTA
(Bernoulli arrivals see time averages), the loss probability is
``P(U > Kᵢ)`` under π.

As ``delta → 0`` the chain converges to the continuous M/G/1 balking
queue, so agreement with the eq. 4.7 solver on a fine lattice is strong
evidence both are correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .distributions import LatticePMF

__all__ = ["WorkloadChainSolution", "solve_workload_chain"]


@dataclass(frozen=True)
class WorkloadChainSolution:
    """Stationary results of the discrete balking-workload chain.

    Attributes
    ----------
    pi:
        Stationary distribution over workload lattice levels ``0..N``.
    loss_probability:
        Probability an arrival finds workload above the deadline.
    idle_probability:
        π(0) — probability of an empty system at a slot boundary.
    mean_workload:
        Stationary mean unfinished work (model time units).
    delta:
        Lattice step used.
    """

    pi: np.ndarray
    loss_probability: float
    idle_probability: float
    mean_workload: float
    delta: float


def solve_workload_chain(
    arrival_rate: float,
    service: LatticePMF,
    deadline: float,
    arrival_discretization: str = "exponential",
) -> WorkloadChainSolution:
    """Solve the discrete-time balking workload chain exactly.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate λ; converted to a per-slot Bernoulli
        probability.
    service:
        Lattice service-time distribution (mass at 0 not allowed).
    deadline:
        Time constraint K (same units; must be a lattice multiple or it
        is floored to one).
    arrival_discretization:
        ``"exponential"`` uses ``a = 1 − exp(−λ·delta)`` (exact thinning
        of the Poisson process to slot occupancy); ``"linear"`` uses
        ``a = λ·delta``.
    """
    delta = service.delta
    if service.p[0] > 0:
        raise ValueError("service times must be at least one lattice slot")
    if service.truncation_deficit > 1e-9:
        raise ValueError("service distribution must be proper (no truncation)")
    if deadline < 0:
        raise ValueError(f"negative deadline: {deadline}")
    if arrival_rate < 0:
        raise ValueError(f"negative arrival rate: {arrival_rate}")

    if arrival_discretization == "exponential":
        a = 1.0 - math.exp(-arrival_rate * delta)
    elif arrival_discretization == "linear":
        a = arrival_rate * delta
        if a >= 1.0:
            raise ValueError(
                f"λ·delta = {a:.4g} >= 1; refine the lattice for linear arrivals"
            )
    else:
        raise ValueError(f"unknown arrival_discretization: {arrival_discretization!r}")

    if a == 0.0:
        pi = np.zeros(1)
        pi[0] = 1.0
        return WorkloadChainSolution(pi, 0.0, 1.0, 0.0, delta)

    k_index = int(math.floor(deadline / delta + 1e-9))
    x_max = service.p.size - 1
    n_states = k_index + x_max + 1  # levels 0 .. k_index + x_max

    survival = 1.0 - np.cumsum(service.p)  # P(X > m) for m = 0..x_max
    survival = np.clip(survival, 0.0, None)

    def surv(m: int) -> float:
        if m < 0:
            return 1.0
        if m >= survival.size:
            return 0.0
        return float(survival[m])

    pi = np.zeros(n_states)
    pi[0] = 1.0  # unnormalised
    for n in range(n_states - 1):
        # Up-crossing flow over the boundary between levels <= n and > n.
        upper = min(n, k_index)
        flow = 0.0
        for u in range(upper + 1):
            d_u = u - 1 if u >= 1 else 0
            flow += pi[u] * surv(n - d_u)
        flow *= a
        down_prob = (1.0 - a) if (n + 1) <= k_index else 1.0
        pi[n + 1] = flow / down_prob

    total = pi.sum()
    pi /= total

    loss = float(pi[k_index + 1 :].sum())
    mean_workload = float(np.dot(np.arange(n_states), pi)) * delta
    return WorkloadChainSolution(
        pi=pi,
        loss_probability=loss,
        idle_probability=float(pi[0]),
        mean_workload=mean_workload,
        delta=delta,
    )

"""Queueing-theory substrate.

Lattice distributions, classic M/G/1 results, the paper's
impatient-customer model (eq. 4.2-4.7), an exact discrete workload-chain
validator, busy-period/LCFS analytics for the uncontrolled baselines,
and Monte-Carlo queue simulators.
"""

from .accepted_wait import accepted_wait_pmf, accepted_wait_pmf_from_chain
from .busy_period import busy_period_pmf, delay_busy_period_pmf
from .convolve import SeriesResult, convolution_series, waiting_series_pmf
from .distributions import (
    LatticePMF,
    deterministic_pmf,
    exponential_pmf,
    geometric_pmf,
    mixture,
    poisson_pmf,
    uniform_pmf,
)
from .impatient import ImpatientMG1, ImpatientSolution, LossCurvePoint, loss_curve
from .lcfs import LCFSQueue
from .mg1 import MG1, pollaczek_khinchine_wait
from .simulation import (
    ImpatientSimResult,
    WaitSimResult,
    simulate_impatient_mg1,
    simulate_mg1_waits,
)
from .transient import TransientResult, transient_workload
from .true_wait import TrueWaitCorrection, true_wait_correction
from .workload_chain import WorkloadChainSolution, solve_workload_chain

__all__ = [
    "LatticePMF",
    "deterministic_pmf",
    "geometric_pmf",
    "poisson_pmf",
    "exponential_pmf",
    "uniform_pmf",
    "mixture",
    "SeriesResult",
    "convolution_series",
    "waiting_series_pmf",
    "MG1",
    "pollaczek_khinchine_wait",
    "ImpatientMG1",
    "ImpatientSolution",
    "LossCurvePoint",
    "loss_curve",
    "TransientResult",
    "transient_workload",
    "TrueWaitCorrection",
    "true_wait_correction",
    "WorkloadChainSolution",
    "solve_workload_chain",
    "accepted_wait_pmf",
    "accepted_wait_pmf_from_chain",
    "busy_period_pmf",
    "delay_busy_period_pmf",
    "LCFSQueue",
    "ImpatientSimResult",
    "WaitSimResult",
    "simulate_impatient_mg1",
    "simulate_mg1_waits",
]

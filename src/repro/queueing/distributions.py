"""Lattice (discrete-time) probability distributions.

All analytic models in this package work on a uniform time lattice with
step ``delta`` (in units of the channel propagation delay τ).  A
:class:`LatticePMF` stores the probability mass at ``0, delta, 2·delta,
...`` as a numpy array.  The paper's integrals (eq. 4.4/4.7) become sums
and its convolutions become discrete convolutions, which are *exact* for
lattice-valued random variables such as the slotted window protocol's
service times.

The residual (equilibrium) distribution uses the discrete renewal form

    r[j] = P(X > j·delta) · delta / E[X],   j = 0, 1, ...

which sums to one exactly for lattice-valued ``X`` and converges to the
continuous residual density ``(1 − B(w))/x̄`` as ``delta → 0``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "LatticePMF",
    "deterministic_pmf",
    "geometric_pmf",
    "poisson_pmf",
    "exponential_pmf",
    "uniform_pmf",
    "mixture",
]

_MASS_TOL = 1e-9


class LatticePMF:
    """A probability mass function on the lattice ``{0, delta, 2·delta, ...}``.

    Parameters
    ----------
    probabilities:
        Mass at lattice points, starting at value 0.  Must be
        non-negative and sum to at most 1 (strictly less than 1 is
        permitted for deliberately truncated distributions; the deficit
        is reported by :attr:`truncation_deficit`).
    delta:
        Lattice step, in the model's time unit.
    """

    __slots__ = ("p", "delta")

    def __init__(self, probabilities: Sequence[float], delta: float = 1.0):
        p = np.asarray(probabilities, dtype=float)
        if p.ndim != 1 or p.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D sequence")
        if delta <= 0:
            raise ValueError(f"lattice step must be positive, got {delta}")
        if np.any(p < -_MASS_TOL):
            raise ValueError("probabilities must be non-negative")
        total = float(p.sum())
        if total > 1.0 + 1e-6:
            raise ValueError(f"probabilities sum to {total} > 1")
        self.p = np.clip(p, 0.0, None)
        self.delta = float(delta)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_values(
        cls, values: Iterable[float], probs: Iterable[float], delta: float = 1.0
    ) -> "LatticePMF":
        """Build from (value, probability) pairs; values must be lattice points."""
        values = list(values)
        probs = list(probs)
        if len(values) != len(probs):
            raise ValueError("values and probs must have equal length")
        indices = []
        for value in values:
            index = value / delta
            if abs(index - round(index)) > 1e-9:
                raise ValueError(f"value {value} is not a multiple of delta={delta}")
            if value < 0:
                raise ValueError(f"negative value {value}")
            indices.append(int(round(index)))
        size = max(indices) + 1
        p = np.zeros(size)
        for index, prob in zip(indices, probs):
            p[index] += prob
        return cls(p, delta)

    # -- basic properties -------------------------------------------------------

    @property
    def support_max(self) -> float:
        """Largest lattice value carrying mass."""
        nonzero = np.nonzero(self.p)[0]
        return float(nonzero[-1] * self.delta) if nonzero.size else 0.0

    @property
    def truncation_deficit(self) -> float:
        """Probability mass lost to truncation (0 for a proper distribution)."""
        return max(0.0, 1.0 - float(self.p.sum()))

    def values(self) -> np.ndarray:
        """The lattice points carrying the stored mass."""
        return np.arange(self.p.size) * self.delta

    def mean(self) -> float:
        """First moment."""
        return float(np.dot(np.arange(self.p.size), self.p) * self.delta)

    def moment(self, order: int) -> float:
        """Raw moment of the given order."""
        if order < 0:
            raise ValueError("moment order must be non-negative")
        lattice = np.arange(self.p.size, dtype=float) * self.delta
        return float(np.dot(lattice**order, self.p))

    def variance(self) -> float:
        """Second central moment."""
        mean = self.mean()
        return self.moment(2) - mean * mean

    def cdf(self) -> np.ndarray:
        """Cumulative distribution evaluated at every lattice point."""
        return np.cumsum(self.p)

    def cdf_at(self, x: float) -> float:
        """``P(X <= x)``."""
        if x < 0:
            return 0.0
        index = int(math.floor(x / self.delta + 1e-12))
        if index >= self.p.size:
            return float(self.p.sum())
        return float(self.p[: index + 1].sum())

    def sf_at(self, x: float) -> float:
        """``P(X > x)`` (assuming a proper distribution)."""
        return max(0.0, 1.0 - self.cdf_at(x))

    # -- transforms ----------------------------------------------------------------

    def convolve(self, other: "LatticePMF", limit: int | None = None) -> "LatticePMF":
        """Distribution of the sum of independent draws from self and other.

        Parameters
        ----------
        other:
            Second summand; must share the lattice step.
        limit:
            If given, truncate the result to the first ``limit`` lattice
            points.  Truncation only discards mass *above* the limit, so
            probabilities below it remain exact.
        """
        if not math.isclose(self.delta, other.delta):
            raise ValueError(
                f"lattice mismatch: {self.delta} vs {other.delta}; "
                "rebin one distribution first"
            )
        full = np.convolve(self.p, other.p)
        if limit is not None:
            full = full[:limit]
        return LatticePMF(full, self.delta)

    def shift(self, amount: float) -> "LatticePMF":
        """Distribution of ``X + amount`` (amount must be a lattice multiple)."""
        steps = amount / self.delta
        if abs(steps - round(steps)) > 1e-9:
            raise ValueError(f"shift {amount} is not a multiple of delta={self.delta}")
        steps = int(round(steps))
        if steps < 0:
            raise ValueError("negative shifts are not supported")
        return LatticePMF(np.concatenate([np.zeros(steps), self.p]), self.delta)

    def residual(self) -> "LatticePMF":
        """The equilibrium (residual-life) distribution of this PMF.

        This is the discrete analogue of the residual service density
        β(w) = (1 − B(w)) / x̄ used throughout §4 of the paper.
        """
        mean = self.mean()
        if mean <= 0:
            raise ValueError("residual distribution requires a positive mean")
        survival = 1.0 - np.cumsum(self.p)
        survival = np.clip(survival[:-1], 0.0, None)  # P(X > j) for j = 0..max-1
        r = survival * self.delta / mean
        # Guard against floating point drift; the discrete form is exact.
        total = r.sum()
        if total > 1.0:
            r = r / total
        return LatticePMF(r, self.delta)

    def refine(self, factor: int) -> "LatticePMF":
        """Re-express exactly on a lattice ``factor`` times finer.

        Mass at ``j·delta`` moves to index ``j·factor`` of the new
        lattice — values are unchanged, so this is exact (unlike
        :meth:`rebin`, which coarsens).  Useful for reducing the O(delta)
        discretisation bias of the workload-chain and busy-period
        solvers, whose *arrival* process is continuous.
        """
        if factor < 1 or int(factor) != factor:
            raise ValueError(f"refine factor must be a positive integer, got {factor}")
        factor = int(factor)
        if factor == 1:
            return LatticePMF(self.p.copy(), self.delta)
        p = np.zeros((self.p.size - 1) * factor + 1)
        p[::factor] = self.p
        return LatticePMF(p, self.delta / factor)

    def rebin(self, new_delta: float) -> "LatticePMF":
        """Coarsen to a larger lattice step (must be an integer multiple)."""
        factor = new_delta / self.delta
        if abs(factor - round(factor)) > 1e-9 or factor < 1:
            raise ValueError(
                f"new step {new_delta} must be an integer multiple of {self.delta}"
            )
        factor = int(round(factor))
        if factor == 1:
            return LatticePMF(self.p.copy(), self.delta)
        padded_size = -(-self.p.size // factor) * factor
        padded = np.zeros(padded_size)
        padded[: self.p.size] = self.p
        return LatticePMF(padded.reshape(-1, factor).sum(axis=1), new_delta)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw lattice-valued samples (requires a proper distribution)."""
        deficit = self.truncation_deficit
        if deficit > 1e-6:
            raise ValueError(
                f"cannot sample a truncated distribution (deficit {deficit:.2e})"
            )
        p = self.p / self.p.sum()
        indices = rng.choice(self.p.size, size=size, p=p)
        return indices * self.delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatticePMF(n={self.p.size}, delta={self.delta}, "
            f"mean={self.mean():.4g})"
        )


# -- canonical service-time distributions ------------------------------------------


def deterministic_pmf(value: float, delta: float = 1.0) -> LatticePMF:
    """All mass on a single lattice point (fixed message length M·τ)."""
    return LatticePMF.from_values([value], [1.0], delta)


def geometric_pmf(
    mean: float, delta: float = 1.0, start: float = 0.0, tol: float = 1e-12
) -> LatticePMF:
    """Geometric distribution on ``{start, start+delta, ...}`` with given mean.

    Used for the paper's geometric scheduling-time approximation (§4.1).
    The success parameter is chosen so the mean (including the ``start``
    offset) equals ``mean``.
    """
    if mean < start:
        raise ValueError(f"mean {mean} must be at least the start offset {start}")
    excess_steps = (mean - start) / delta
    # X = start + delta * G with G >= 0 geometric: E[G] = (1-q)/q.
    q = 1.0 / (1.0 + excess_steps)
    n_terms = max(2, int(math.ceil(math.log(tol) / math.log(1.0 - q))) + 1) if q < 1 else 1
    tail = np.power(1.0 - q, np.arange(n_terms)) * q
    pmf = LatticePMF(tail, delta)
    return pmf.shift(start) if start else pmf


def poisson_pmf(mean: float, delta: float = 1.0, tol: float = 1e-12) -> LatticePMF:
    """Poisson distribution scaled onto the lattice."""
    if mean < 0:
        raise ValueError(f"Poisson mean must be non-negative, got {mean}")
    if mean == 0:
        return LatticePMF([1.0], delta)
    n_terms = int(mean + 12 * math.sqrt(mean) + 20)
    k = np.arange(n_terms)
    log_p = k * math.log(mean) - mean - np.array([math.lgamma(i + 1) for i in k])
    p = np.exp(log_p)
    p[p < tol * p.max()] = 0.0
    return LatticePMF(p / p.sum(), delta)


def exponential_pmf(mean: float, delta: float, quantile: float = 1 - 1e-10) -> LatticePMF:
    """Exponential distribution discretised by interval mass.

    Cell ``j`` receives ``P(j·delta <= X < (j+1)·delta)``; the support is
    truncated at the requested quantile and renormalised.  Used to
    cross-check the impatient-queue solver against M/M/1 results.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    rate = 1.0 / mean
    x_max = -math.log(1.0 - quantile) / rate
    n_cells = int(math.ceil(x_max / delta)) + 1
    edges = np.arange(n_cells + 1) * delta
    cdf = 1.0 - np.exp(-rate * edges)
    p = np.diff(cdf)
    return LatticePMF(p / p.sum(), delta)


def uniform_pmf(low: float, high: float, delta: float) -> LatticePMF:
    """Uniform distribution on lattice points in ``[low, high]`` inclusive."""
    if high < low:
        raise ValueError(f"high {high} < low {low}")
    low_index = low / delta
    high_index = high / delta
    if abs(low_index - round(low_index)) > 1e-9 or abs(high_index - round(high_index)) > 1e-9:
        raise ValueError("bounds must be lattice multiples")
    low_index, high_index = int(round(low_index)), int(round(high_index))
    count = high_index - low_index + 1
    p = np.zeros(high_index + 1)
    p[low_index:] = 1.0 / count
    return LatticePMF(p, delta)


def mixture(components: Sequence[LatticePMF], weights: Sequence[float]) -> LatticePMF:
    """Finite mixture of lattice PMFs sharing one lattice step."""
    if len(components) != len(weights):
        raise ValueError("components and weights must have equal length")
    if not components:
        raise ValueError("mixture needs at least one component")
    total = float(sum(weights))
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise ValueError(f"weights must sum to 1, got {total}")
    delta = components[0].delta
    for component in components[1:]:
        if not math.isclose(component.delta, delta):
            raise ValueError("all mixture components must share the lattice step")
    size = max(component.p.size for component in components)
    p = np.zeros(size)
    for component, weight in zip(components, weights):
        p[: component.p.size] += weight * component.p
    return LatticePMF(p, delta)

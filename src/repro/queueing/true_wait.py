"""Analytic correction for the paper's waiting-time approximation.

§2 defines a message's waiting time to *exclude* the windowing process
that transmits it; §4.2 admits this "only approximates the truer (and
more traditional) definition" — and scores its simulations by the true
definition.  This module closes the loop analytically:

    true wait  =  paper wait  +  own scheduling time

with the two terms treated as independent (the same independence the
queueing model already assumes for services).  Convolving the
accepted-wait distribution with the scheduling-time law predicts the
*receiver-side* late fraction among messages the sender accepted:

    p(late | accepted) = P(W_paper + T > K),

so the total-loss prediction under the true definition is

    p_true(loss) = p_47 + (1 − p_47)·p(late | accepted)

where p_47 is eq. 4.7's sender-side loss.  The test suite checks this
against the slot-level simulator's delivered-late counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .accepted_wait import accepted_wait_pmf
from .distributions import LatticePMF
from .impatient import ImpatientMG1

__all__ = ["TrueWaitCorrection", "true_wait_correction"]


@dataclass(frozen=True)
class TrueWaitCorrection:
    """Loss decomposition under the true waiting-time definition.

    Attributes
    ----------
    sender_loss:
        Eq. 4.7's loss — messages the sender discards (paper wait > K).
    late_given_accepted:
        P(paper wait + own scheduling > K | accepted).
    total_loss:
        Combined loss under the true definition.
    true_wait:
        The lattice distribution of the true wait of accepted messages.
    """

    sender_loss: float
    late_given_accepted: float
    total_loss: float
    true_wait: LatticePMF

    @property
    def correction(self) -> float:
        """How much the true-definition loss exceeds eq. 4.7's."""
        return self.total_loss - self.sender_loss


def true_wait_correction(
    arrival_rate: float,
    scheduling: LatticePMF,
    transmission_slots: float,
    deadline: float,
    tol: float = 1e-12,
) -> TrueWaitCorrection:
    """Predict the true-definition loss for the controlled protocol.

    Parameters
    ----------
    arrival_rate:
        λ of all messages (per slot).
    scheduling:
        The scheduling-slot distribution T (e.g. from
        :meth:`repro.crp.scheduling_time.ExactSchedulingModel.scheduling_pmf`),
        normalised internally if it carries a truncation deficit.
    transmission_slots:
        M; the full service for the queueing model is T + M.
    deadline:
        K in slots.
    """
    if transmission_slots <= 0:
        raise ValueError(f"transmission must be positive, got {transmission_slots}")
    mass = scheduling.p.sum()
    if mass <= 0:
        raise ValueError("scheduling distribution carries no mass")
    normalised = LatticePMF(scheduling.p / mass, scheduling.delta)
    service = normalised.shift(transmission_slots)

    queue = ImpatientMG1(arrival_rate, service, deadline)
    sender_loss = queue.solve(tol=tol).loss_probability

    wait = accepted_wait_pmf(arrival_rate, service, deadline, tol=tol)
    true_wait = wait.convolve(normalised)
    late = true_wait.sf_at(deadline)
    total = sender_loss + (1.0 - sender_loss) * late
    return TrueWaitCorrection(
        sender_loss=sender_loss,
        late_given_accepted=late,
        total_loss=total,
        true_wait=true_wait,
    )

"""Convolution-series machinery for the paper's waiting-time series.

Equation 4.4 of the paper expresses the unfinished-work density as

    f(w) = P(0) · Σ_i ρ^i β^{(i)}(w)

where β is the residual service density and β^{(i)} its i-fold
convolution (β^{(0)} is a unit mass at 0).  Equation 4.7 then only needs
the *partial integrals*

    q_i = ∫₀ᴷ β^{(i)}(w) dw,     z(K, ρ) = Σ_i ρ^i q_i.

On a lattice, q_i is the CDF of the i-fold convolution at index
⌊K/delta⌋, and convolutions truncated at that index remain exact below
it (non-negative summands can only push mass upward).  This module
computes the series with adaptive stopping:

* for ρ < 1, terms are bounded by ρ^i → geometric tail bound;
* for ρ ≥ 1, q_i still decays geometrically whenever ρ·r₀ < 1 (r₀ the
  residual's mass at 0), which holds for every service time longer than
  one lattice step; the sum is monitored through its effect on
  z/(1 + ρz), the quantity that actually enters the loss formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .distributions import LatticePMF

__all__ = ["SeriesResult", "convolution_series", "waiting_series_pmf"]


@dataclass(frozen=True)
class SeriesResult:
    """Outcome of summing ``z(K, ρ) = Σ ρ^i q_i``.

    Attributes
    ----------
    z:
        The summed series value.
    terms:
        Number of terms accumulated (including the i = 0 term).
    converged:
        Whether the stopping criterion was met before ``max_terms``.
    partial_integrals:
        The ``q_i`` values actually used.
    """

    z: float
    terms: int
    converged: bool
    partial_integrals: tuple

    def transformed(self, rho: float) -> float:
        """The loss-formula kernel ``z / (1 + ρ·z)``."""
        return self.z / (1.0 + rho * self.z)


def convolution_series(
    residual: LatticePMF,
    horizon: float,
    rho: float,
    tol: float = 1e-12,
    max_terms: int = 100_000,
    midpoint: bool = True,
) -> SeriesResult:
    """Compute ``z(K, ρ)`` for eq. 4.7 of the paper.

    Parameters
    ----------
    residual:
        The residual service-time distribution β on the lattice.
    horizon:
        The time constraint K (same units as the lattice).
    rho:
        Traffic intensity λ·x̄ (may exceed 1; the series still converges
        through the monitored kernel).
    tol:
        Stop once an upper bound for the remaining contribution to
        ``z/(1+ρz)`` falls below ``tol``.
    max_terms:
        Hard cap on the number of series terms.
    midpoint:
        Interpret each residual lattice cell as carrying the mass of the
        *continuous* residual density over ``[j·δ, (j+1)·δ)``, located at
        the cell midpoint.  A sum of ``i`` residuals then sits at
        ``(Σ indices + i/2)·δ``, so term ``i``'s partial integral uses
        the cutoff index ``⌊K/δ − i/2⌋``.  This removes the O(δ)
        left-edge bias of the naive lattice sum (validated against Monte
        Carlo in the test suite); disable only to reproduce the naive
        convention.
    """
    if horizon < 0:
        raise ValueError(f"time constraint must be non-negative, got {horizon}")
    if rho < 0:
        raise ValueError(f"traffic intensity must be non-negative, got {rho}")
    if rho == 0:
        return SeriesResult(z=1.0, terms=1, converged=True, partial_integrals=(1.0,))

    k_index = int(math.floor(horizon / residual.delta + 1e-9))
    limit = k_index + 1
    beta = residual.p[:limit].copy()
    q1 = float(beta.sum())

    z = 1.0  # i = 0 term: β^{(0)} is a unit mass at 0, q_0 = 1.
    partials = [1.0]
    power = np.zeros(limit)
    power[0] = 1.0  # running β^{(i)} truncated to the horizon
    rho_i = 1.0
    converged = False
    terms = 1
    half_steps = horizon / residual.delta  # K in lattice units, real-valued

    # Geometric decay rate of q_i for the tail bound: each extra
    # convolution multiplies the in-horizon mass by at most q_1.
    decay = min(1.0, q1)

    for i in range(1, max_terms + 1):
        power = np.convolve(power, beta)[:limit]
        rho_i *= rho
        if midpoint:
            cutoff = int(math.floor(half_steps - 0.5 * i + 1e-9))
            if cutoff < 0:
                q_i = 0.0
            else:
                q_i = float(power[: cutoff + 1].sum())
        else:
            q_i = float(power.sum())
        term = rho_i * q_i
        z += term
        partials.append(q_i)
        terms = i + 1
        # Remaining-tail bound: q_{i+k} <= q_i * decay^k, so the tail of the
        # raw series is <= term * rho*decay / (1 - rho*decay) when rho*decay < 1.
        ratio = rho * decay
        if ratio < 1.0:
            tail_bound = term * ratio / (1.0 - ratio)
        else:
            # Fall back to the effect on the monitored kernel: dz of `term`
            # changes z/(1+ρz) by at most term / (1+ρz)^2.
            tail_bound = term
        kernel_sensitivity = 1.0 / (1.0 + rho * z) ** 2
        if tail_bound * kernel_sensitivity < tol and q_i < 1.0:
            converged = True
            break
        if q_i == 0.0:
            converged = True
            break

    return SeriesResult(
        z=z, terms=terms, converged=converged, partial_integrals=tuple(partials)
    )


def waiting_series_pmf(
    residual: LatticePMF,
    rho: float,
    horizon: float,
    tol: float = 1e-12,
    max_terms: int = 100_000,
) -> LatticePMF:
    """The (unnormalised) waiting-time mass ``Σ ρ^i β^{(i)}`` below ``horizon``.

    Multiplying by P(0) gives the M/G/1 unfinished-work density of
    eq. 4.4 on ``[0, horizon]``.  Only valid pointwise below the horizon;
    mass above it is truncated.  Raises for ρ ≥ 1 when the series does
    not converge pointwise.
    """
    if rho < 0:
        raise ValueError(f"traffic intensity must be non-negative, got {rho}")
    k_index = int(math.floor(horizon / residual.delta + 1e-9))
    limit = k_index + 1
    beta = residual.p[:limit].copy()

    accumulator = np.zeros(limit)
    accumulator[0] = 1.0
    power = np.zeros(limit)
    power[0] = 1.0
    rho_i = 1.0
    for _ in range(1, max_terms + 1):
        power = np.convolve(power, beta)[:limit]
        rho_i *= rho
        term = rho_i * power
        accumulator += term
        term_mass = float(term.sum())
        in_horizon = float(power.sum())
        if term_mass < tol:
            break
        if rho >= 1.0 and in_horizon >= 1.0 - 1e-12:
            raise ValueError(
                "waiting-time series diverges pointwise for rho >= 1 with "
                "service support inside the horizon"
            )
    else:
        raise RuntimeError("series did not converge within max_terms")
    # Allow total mass > 1: this is an unnormalised kernel.
    result = LatticePMF.__new__(LatticePMF)
    result.p = accumulator
    result.delta = residual.delta
    return result

"""Waiting-time distribution of *accepted* messages.

The paper computes only the loss probability and points to [Baccelli 81]
for "the waiting time distribution of customers entering service".  For
time-constrained applications that distribution matters too (a voice
packet accepted at the deadline's edge still needs jitter-buffer room),
so this module provides it, two independent ways:

* **series route** — the in-horizon workload density of eq. 4.4,
  ``f(w) = P(0) Σ ρ^i β^{(i)}(w)`` on ``[0, K]``, conditioned on
  acceptance (normalised by p(accept)); an arriving customer's wait is
  the workload it finds (PASTA + FCFS);
* **chain route** — the stationary distribution of the exact discrete
  workload chain restricted to levels ≤ K.

Both return a :class:`LatticePMF` over the accepted wait; the test suite
checks they agree with each other and with Monte Carlo.
"""

from __future__ import annotations

import math

import numpy as np

from .convolve import waiting_series_pmf
from .distributions import LatticePMF
from .workload_chain import solve_workload_chain

__all__ = ["accepted_wait_pmf", "accepted_wait_pmf_from_chain"]


def accepted_wait_pmf(
    arrival_rate: float,
    service: LatticePMF,
    deadline: float,
    tol: float = 1e-12,
) -> LatticePMF:
    """Conditional wait distribution of accepted customers (series route).

    Parameters
    ----------
    arrival_rate:
        Poisson rate λ of all messages.
    service:
        Service-time distribution of accepted messages.
    deadline:
        The constraint K; accepted customers have wait ≤ K by definition.

    Notes
    -----
    Valid for any offered ρ (the conditional distribution below K exists
    even when the unconditional queue would be unstable) as long as the
    series converges pointwise on [0, K], which holds whenever
    ``ρ · P(residual within K) < 1``; otherwise a ``ValueError``
    propagates from the series kernel.
    """
    if deadline < 0:
        raise ValueError(f"negative deadline: {deadline}")
    if arrival_rate < 0:
        raise ValueError(f"negative arrival rate: {arrival_rate}")
    rho = arrival_rate * service.mean()
    if rho == 0:
        return LatticePMF([1.0], service.delta)
    residual = service.residual()
    kernel = waiting_series_pmf(residual, rho, horizon=deadline, tol=tol)
    mass = kernel.p.sum()
    if mass <= 0:
        raise RuntimeError("empty waiting kernel below the deadline")
    return LatticePMF(kernel.p / mass, kernel.delta)


def accepted_wait_pmf_from_chain(
    arrival_rate: float,
    service: LatticePMF,
    deadline: float,
) -> LatticePMF:
    """Conditional wait distribution via the exact workload chain.

    Independent of the series route (different algorithm and different
    discretisation of the arrival process), hence useful as a validator
    and for offered loads where the pointwise series diverges.
    """
    solution = solve_workload_chain(arrival_rate, service, deadline)
    k_index = int(math.floor(deadline / service.delta + 1e-9))
    below = solution.pi[: k_index + 1]
    mass = below.sum()
    if mass <= 0:
        raise RuntimeError("chain places no mass below the deadline")
    return LatticePMF(np.asarray(below) / mass, service.delta)

"""Classic (loss-free) M/G/1 results.

Used for two purposes:

* the **FCFS baseline** of [Kurose 83]: the uncontrolled window protocol
  transmits *every* message in global FCFS order, so its waiting time is
  the ordinary M/G/1 FCFS waiting time and a message is lost (at the
  receiver) iff ``W > K``;
* **validation** of the impatient-customer solver in the limit K → ∞.

The waiting-time distribution uses the same Beneš/Takács series that the
paper quotes as eq. 4.4:

    P(W <= w) = (1 − ρ) Σ_i ρ^i B_e^{(i)}(w)

with ``B_e`` the equilibrium (residual) service distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .convolve import convolution_series
from .distributions import LatticePMF

__all__ = ["MG1", "pollaczek_khinchine_wait"]


def pollaczek_khinchine_wait(arrival_rate: float, service: LatticePMF) -> float:
    """Mean FCFS waiting time  ``W = λ·E[X²] / (2(1 − ρ))``.

    Raises for an unstable queue (ρ >= 1).
    """
    rho = arrival_rate * service.mean()
    if rho >= 1:
        raise ValueError(f"queue is unstable: rho = {rho:.4g} >= 1")
    return arrival_rate * service.moment(2) / (2.0 * (1.0 - rho))


@dataclass(frozen=True)
class MG1:
    """An M/G/1 queue with Poisson arrivals and lattice service times.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate λ (per unit time).
    service:
        Service-time distribution on the lattice.
    """

    arrival_rate: float
    service: LatticePMF

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError(f"negative arrival rate: {self.arrival_rate}")

    @property
    def rho(self) -> float:
        """Traffic intensity λ·x̄."""
        return self.arrival_rate * self.service.mean()

    @property
    def utilization(self) -> float:
        """Server busy probability (equals ρ when stable)."""
        rho = self.rho
        if rho >= 1:
            raise ValueError(f"queue is unstable: rho = {rho:.4g} >= 1")
        return rho

    def mean_wait(self) -> float:
        """Pollaczek–Khinchine mean FCFS waiting time."""
        return pollaczek_khinchine_wait(self.arrival_rate, self.service)

    def mean_sojourn(self) -> float:
        """Mean time in system (wait + service)."""
        return self.mean_wait() + self.service.mean()

    def mean_queue_length(self) -> float:
        """Mean number waiting (Little's law on the waiting room)."""
        return self.arrival_rate * self.mean_wait()

    def wait_cdf_at(self, w: float, tol: float = 1e-12) -> float:
        """``P(W <= w)`` for the FCFS waiting time via the Beneš series."""
        rho = self.rho
        if rho >= 1:
            raise ValueError(f"queue is unstable: rho = {rho:.4g} >= 1")
        if w < 0:
            return 0.0
        residual = self.service.residual()
        series = convolution_series(residual, w, rho, tol=tol)
        return min(1.0, (1.0 - rho) * series.z)

    def wait_survival_at(self, w: float, tol: float = 1e-12) -> float:
        """``P(W > w)`` — the FCFS-baseline receiver-loss probability."""
        return max(0.0, 1.0 - self.wait_cdf_at(w, tol=tol))

    def loss_beyond_deadline(self, deadline: float) -> float:
        """Fraction of messages missing the deadline under plain FCFS.

        This is the analytic [Kurose 83] FCFS baseline used in Figure 7:
        every message is transmitted; those with ``W > deadline`` are
        discarded at the *receiver*.
        """
        if deadline < 0:
            raise ValueError(f"negative deadline: {deadline}")
        if math.isinf(deadline):
            return 0.0
        return self.wait_survival_at(deadline)

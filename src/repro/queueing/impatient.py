"""M/G/1 queue with impatient customers — the paper's §4 performance model.

A message joins the (conceptually centralized) queue iff the unfinished
work it finds — its FCFS waiting time — does not exceed the time
constraint ``K``; otherwise it is lost (policy element 4 discards it at
the sender).  The loss probability follows the paper's eq. 4.7:

    p(loss) = 1 − z / (1 + ρ·z),
    z(K, ρ) = Σ_i ρ^i ∫₀ᴷ β^{(i)}(w) dw,

derived from the flow-conservation identity ``p(accept)·ρ = 1 − P(0)``
(eq. 4.6) and the Beneš-series form of the in-horizon workload
distribution (eq. 4.4).

Because the window protocol's *scheduling* overhead depends on how many
messages survive (§4.1, last paragraph), the service-time distribution
itself depends on ``p(loss)``.  :func:`loss_curve` reproduces the
paper's fix: start at K = 0 where the scheduling time is exactly zero,
then march K upward using the previous K's loss to set the accepted
arrival rate, optionally iterating each K to a fixed point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .convolve import SeriesResult, convolution_series
from .distributions import LatticePMF, deterministic_pmf

__all__ = [
    "ImpatientMG1",
    "ImpatientSolution",
    "LossCurvePoint",
    "loss_curve",
]

ServiceModel = Callable[[float], LatticePMF]
"""Maps an accepted arrival rate to a service-time distribution."""


@dataclass(frozen=True)
class ImpatientSolution:
    """Solved performance measures of the impatient M/G/1 queue.

    Attributes
    ----------
    loss_probability:
        Fraction of messages whose waiting time would exceed K (eq. 4.7).
    idle_probability:
        P(0), the probability the server is idle.
    accepted_rate:
        λ·p(accept), the throughput of surviving messages.
    rho:
        Offered traffic intensity λ·x̄ (may exceed 1).
    series:
        The underlying :class:`SeriesResult` for z(K, ρ).
    """

    loss_probability: float
    idle_probability: float
    accepted_rate: float
    rho: float
    series: SeriesResult


@dataclass(frozen=True)
class ImpatientMG1:
    """M/G/1 queue whose customers balk when the workload exceeds ``deadline``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate λ of *all* messages (lost and transmitted).
    service:
        Service-time distribution of accepted messages.
    deadline:
        The time constraint K.
    """

    arrival_rate: float
    service: LatticePMF
    deadline: float

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError(f"negative arrival rate: {self.arrival_rate}")
        if self.deadline < 0:
            raise ValueError(f"negative deadline: {self.deadline}")

    @property
    def rho(self) -> float:
        """Offered traffic intensity λ·x̄ (can exceed 1 — the queue still
        reaches equilibrium because of balking)."""
        return self.arrival_rate * self.service.mean()

    def solve(self, tol: float = 1e-12, max_terms: int = 100_000) -> ImpatientSolution:
        """Evaluate eq. 4.7 and the derived quantities."""
        rho = self.rho
        if rho == 0.0:
            return ImpatientSolution(
                loss_probability=0.0,
                idle_probability=1.0,
                accepted_rate=self.arrival_rate,
                rho=0.0,
                series=SeriesResult(1.0, 1, True, (1.0,)),
            )
        if math.isinf(self.deadline):
            if rho >= 1:
                raise ValueError(
                    "K = inf requires a stable queue (rho < 1); "
                    f"got rho = {rho:.4g}"
                )
            series = SeriesResult(
                z=1.0 / (1.0 - rho), terms=0, converged=True, partial_integrals=()
            )
        else:
            residual = self.service.residual()
            series = convolution_series(
                residual, self.deadline, rho, tol=tol, max_terms=max_terms
            )
        kernel = series.transformed(rho)  # z / (1 + ρz) = p(accept)
        loss = min(1.0, max(0.0, 1.0 - kernel))
        idle = 1.0 / (1.0 + rho * series.z)
        return ImpatientSolution(
            loss_probability=loss,
            idle_probability=idle,
            accepted_rate=self.arrival_rate * (1.0 - loss),
            rho=rho,
            series=series,
        )

    def loss_probability(self, tol: float = 1e-12) -> float:
        """Shortcut for :meth:`solve`'s loss probability."""
        return self.solve(tol=tol).loss_probability


@dataclass(frozen=True)
class LossCurvePoint:
    """One point of a loss-vs-deadline curve."""

    deadline: float
    loss_probability: float
    rho: float
    mean_service: float
    accepted_rate: float


def loss_curve(
    arrival_rate: float,
    deadlines: Sequence[float],
    service_model: Optional[ServiceModel] = None,
    transmission_time: Optional[float] = None,
    delta: float = 1.0,
    fixed_point: bool = True,
    fixed_point_tol: float = 1e-9,
    max_fixed_point_iter: int = 200,
    tol: float = 1e-12,
) -> list[LossCurvePoint]:
    """Loss probability across a sweep of deadlines (the paper's §4.1 iteration).

    Parameters
    ----------
    arrival_rate:
        Rate λ of all message arrivals.
    deadlines:
        Increasing values of K at which to evaluate the loss.
    service_model:
        Maps accepted arrival rate → full service-time distribution
        (scheduling + transmission).  When omitted, a constant service of
        ``transmission_time`` is used (no scheduling overhead).
    transmission_time:
        Fixed transmission component M·τ; required when ``service_model``
        is omitted.
    fixed_point:
        When true (default), iterate each deadline to a self-consistent
        loss; when false, follow the paper exactly: use the previous
        deadline's loss once.
    """
    if service_model is None:
        if transmission_time is None:
            raise ValueError("provide either service_model or transmission_time")
        constant = deterministic_pmf(transmission_time, delta)

        def service_model(_rate: float, _pmf=constant) -> LatticePMF:
            return _pmf

    previous = list(deadlines)
    if any(b < a for a, b in zip(previous, previous[1:])):
        raise ValueError("deadlines must be non-decreasing")

    points: list[LossCurvePoint] = []
    loss_estimate = 0.0  # at K = 0 the scheduling time is exactly 0 (paper §4.1)
    for index, deadline in enumerate(deadlines):
        if index == 0 and deadline == 0:
            # Scheduling time is exactly zero at K = 0; service = transmission.
            accepted = arrival_rate
        else:
            accepted = arrival_rate * (1.0 - loss_estimate)

        def evaluate(accepted_rate: float) -> ImpatientSolution:
            service = service_model(accepted_rate)
            queue = ImpatientMG1(arrival_rate, service, deadline)
            return queue.solve(tol=tol)

        solution = evaluate(accepted)
        if fixed_point:
            for _ in range(max_fixed_point_iter):
                new_accepted = arrival_rate * (1.0 - solution.loss_probability)
                if abs(new_accepted - accepted) <= fixed_point_tol * max(
                    arrival_rate, 1e-30
                ):
                    break
                accepted = new_accepted
                solution = evaluate(accepted)
        loss_estimate = solution.loss_probability
        service = service_model(arrival_rate * (1.0 - loss_estimate))
        points.append(
            LossCurvePoint(
                deadline=deadline,
                loss_probability=loss_estimate,
                rho=solution.rho,
                mean_service=service.mean(),
                accepted_rate=solution.accepted_rate,
            )
        )
    return points

"""Two-level memoisation for expensive analytic fixed points.

The analytic side of the reproduction keeps re-deriving the same
objects: eq. 4.7 loss curves (a fixed-point iteration per deadline,
re-run by every CLI invocation and bench at the same (ρ′, M) grid) and
the Theorem-1 policy-iteration solutions (a full Howard iteration per
SMDP).  Both are pure functions of a small parameter tuple, so this
module gives them a shared memo:

* an in-process LRU (bounded, always on) for repeated evaluations
  inside one run — e.g. the six Figure-7 panels sharing service pmfs;
* a disk layer under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro-kurose``) so *separate* invocations — CLI calls,
  benchmark repetitions, CI jobs — stop recomputing identical results.

Setting ``REPRO_NO_CACHE=1`` disables both layers (every call
recomputes), which the cache tests and any bit-level debugging session
rely on.  Disk entries are pickles written atomically (temp file +
rename); unreadable or corrupt entries are treated as misses, never
errors — the cache can always be deleted wholesale.

Keys are built from ``repr()`` of a caller-supplied tuple of primitives,
hashed with SHA-256 and namespaced per call site **and per cache
schema**: :data:`SCHEMA_VERSION` is mixed into every digest, so pickles
written by an older package layout can never silently satisfy a new run
— after a layout change (bump the schema) every old entry simply
becomes unreachable.  ``python -m repro cache info`` / ``cache clear``
inspect and purge the disk layer.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "cache_dir",
    "cache_enabled",
    "get_or_compute",
    "clear_memory",
    "cache_info",
    "clear_disk",
]

#: Disk-layout/semantics version, part of every digest.  Bump whenever a
#: cached computation's meaning or pickle layout changes: old entries
#: must read as misses, never as stale hits.
SCHEMA_VERSION = "repro-cache-v2"

#: In-process LRU: digest → value.  Bounded so pathological sweeps can't
#: hold every intermediate curve alive.
_memory: "OrderedDict[str, Any]" = OrderedDict()
_MEMORY_CAP = 128


def cache_enabled() -> bool:
    """Whether memoisation is active (``REPRO_NO_CACHE`` disables it)."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("1", "true", "yes")


def cache_dir() -> Path:
    """The disk-cache root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-kurose``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-kurose"


def _digest(namespace: str, key: Tuple) -> str:
    payload = f"{SCHEMA_VERSION}\x1f{namespace}\x1f{key!r}".encode()
    return hashlib.sha256(payload).hexdigest()


def clear_memory() -> None:
    """Drop the in-process layer (the disk layer is untouched)."""
    _memory.clear()


def cache_info() -> Dict[str, Any]:
    """Disk-layer inventory: path, schema, entry count, total bytes.

    Counts every ``*.pkl`` under the cache directory — including entries
    keyed by older schema versions, which current code can no longer
    reach (``clear_disk`` is how they get reclaimed).
    """
    directory = cache_dir()
    entries = 0
    total_bytes = 0
    if directory.is_dir():
        for entry in directory.glob("*.pkl"):
            try:
                total_bytes += entry.stat().st_size
                entries += 1
            except OSError:
                pass
    return {
        "path": str(directory),
        "schema": SCHEMA_VERSION,
        "enabled": cache_enabled(),
        "entries": entries,
        "bytes": total_bytes,
    }


def clear_disk() -> int:
    """Delete every disk entry (any schema); returns the count removed."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for entry in directory.glob("*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def _disk_path(digest: str) -> Path:
    return cache_dir() / f"{digest}.pkl"


def _disk_read(digest: str) -> Tuple[bool, Any]:
    path = _disk_path(digest)
    try:
        with open(path, "rb") as handle:
            return True, pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        # Missing, unreadable, truncated, or written by an incompatible
        # version: a miss, never an error.
        return False, None


def _disk_write(digest: str, value: Any) -> None:
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, _disk_path(digest))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (OSError, pickle.PicklingError):
        # Read-only filesystem, disk full, unpicklable value: computing
        # without a cache is always acceptable.
        pass


def get_or_compute(namespace: str, key: Tuple, compute: Callable[[], Any]) -> Any:
    """Return the memoised value for ``(namespace, key)``, computing on miss.

    Parameters
    ----------
    namespace:
        Call-site identifier, e.g. ``"figure7-loss-curve"``.  Include a
        version suffix when the computation's semantics change.
    key:
        Tuple of primitives (numbers, strings, nested tuples) that fully
        determine the result.  Hashed via ``repr``, so every element
        must have a stable repr.
    compute:
        Zero-argument callable producing the value; must be pure and
        return something picklable (else only the in-process layer
        retains it).
    """
    # Hit/miss accounting goes to the *installed* registry (a no-op by
    # default): get_or_compute's call sites sit deep inside analytic
    # helpers with no channel for threading a registry through, and the
    # counts are volatile anyway — cache state differs between runs.
    from .obs.metrics import global_registry

    obs = global_registry()
    if not cache_enabled():
        return compute()
    digest = _digest(namespace, key)
    if digest in _memory:
        _memory.move_to_end(digest)
        if obs is not None:
            obs.counter("cache.memory.hits", volatile=True).inc()
        return _memory[digest]
    hit, value = _disk_read(digest)
    if hit:
        if obs is not None:
            obs.counter("cache.disk.hits", volatile=True).inc()
    else:
        if obs is not None:
            obs.counter("cache.misses", volatile=True).inc()
        value = compute()
        _disk_write(digest, value)
    _memory[digest] = value
    if len(_memory) > _MEMORY_CAP:
        _memory.popitem(last=False)
    return value

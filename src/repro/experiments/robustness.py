"""Graceful-degradation experiments for the fault layer.

The paper assumes perfect ternary feedback; :mod:`repro.faults` removes
that assumption.  This module measures what the assumption was worth:

* :func:`feedback_error_sweep` — loss versus symmetric per-station
  feedback-error rate at a fixed operating point (the replica-bank
  degradation curve; the protocol should degrade smoothly, not cliff);
* :func:`protocol_degradation_sweep` — the degradation *figure*:
  fraction-late versus common-mode feedback error rate for all four
  Figure-7 protocols, running at full kernel speed on the faulted fast
  kernel (:mod:`repro.mac.kernels.faults`) with a selectable
  divergence-recovery policy;
* :func:`station_failure_scenario` — a crash/restart + deafness soak
  that must run to completion (no deadlock, no permanent divergence)
  and report the resilience telemetry.

All average over a few replications (distinct master seeds) so the
degradation trend is not an artifact of one sample path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import ControlPolicy
from ..faults import RECOVERY_POLICIES, FaultModel, FeedbackFaultModel
from ..mac import MACSimResult
from ..obs import tracing as trace
from .records import ascii_table
from .sweep import (
    MACRunSpec,
    SequentialEstimate,
    SequentialOptions,
    SweepExecutor,
    run_sequential,
)

__all__ = [
    "RobustnessConfig",
    "RobustnessPoint",
    "RobustnessReport",
    "DegradationPoint",
    "DegradationReport",
    "feedback_error_sweep",
    "point_spec",
    "protocol_arms",
    "protocol_degradation_sweep",
    "station_failure_scenario",
    "DEFAULT_ERROR_RATES",
]

#: Symmetric feedback-error rates of the headline degradation sweep.
DEFAULT_ERROR_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)


@dataclass(frozen=True)
class RobustnessConfig:
    """Operating point for the robustness experiments.

    Defaults pin the paper's central panel (ρ′ = 0.5, M = 25) with the
    constraint K = 3M, the regime where Figure 7 shows the controlled
    protocol clearly ahead of the uncontrolled disciplines.
    """

    rho_prime: float = 0.5
    message_length: int = 25
    deadline_factor: float = 3.0
    n_stations: int = 25
    horizon: float = 60_000.0
    warmup_fraction: float = 0.125
    n_seeds: int = 3
    base_seed: int = 1

    def __post_init__(self):
        if self.rho_prime <= 0:
            raise ValueError(f"offered load must be positive, got {self.rho_prime}")
        if self.message_length < 1:
            raise ValueError(
                f"message length must be at least 1, got {self.message_length}"
            )
        if self.n_seeds < 1:
            raise ValueError(f"need at least one replication, got {self.n_seeds}")

    @property
    def arrival_rate(self) -> float:
        """Message arrival rate λ = ρ′ / M."""
        return self.rho_prime / self.message_length

    @property
    def deadline(self) -> float:
        """The waiting-time constraint K."""
        return self.deadline_factor * self.message_length


@dataclass(frozen=True)
class RobustnessPoint:
    """Seed-averaged outcome at one fault setting."""

    error_rate: float
    loss_fraction: float
    loss_stderr: float
    lost_to_faults: float
    unresolved: float
    utilization: float
    resyncs: float
    cohort_splits: float
    peak_cohorts: float
    saturated: bool


@dataclass
class RobustnessReport:
    """The degradation curve plus run metadata.

    ``notes`` lists sweep-integrity annotations (quarantined
    replications, journal replays), rendered under the table so a
    degraded sweep is always explicitly marked.
    """

    config: RobustnessConfig
    points: List[RobustnessPoint] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def title(self) -> str:
        c = self.config
        return (
            f"Graceful degradation: rho'={c.rho_prime:g}, M={c.message_length}, "
            f"K={c.deadline:g}, {c.n_seeds} seeds x {c.horizon:g} slots"
        )

    def losses(self) -> List[float]:
        """The seed-averaged loss at each fault setting, sweep order."""
        return [p.loss_fraction for p in self.points]

    def to_table(self) -> str:
        """Render the degradation curve as an aligned text table."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    f"{p.error_rate:g}",
                    f"{p.loss_fraction:.4f}±{2 * p.loss_stderr:.4f}",
                    f"{p.lost_to_faults:.1f}",
                    f"{p.unresolved:.1f}",
                    f"{p.utilization:.3f}",
                    f"{p.resyncs:.0f}",
                    f"{p.cohort_splits:.0f}",
                    f"{p.peak_cohorts:.0f}",
                    "yes" if p.saturated else "",
                ]
            )
        table = ascii_table(
            [
                "error rate",
                "loss fraction",
                "fault-lost",
                "unresolved",
                "util",
                "resyncs",
                "splits",
                "peak cohorts",
                "saturated",
            ],
            rows,
            title=self.title,
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table


def point_spec(
    config: RobustnessConfig,
    fault_model: Optional[FaultModel],
    seed: int,
    policy: Optional[ControlPolicy] = None,
    backend: Optional[str] = None,
    feedback_faults: Optional[FeedbackFaultModel] = None,
) -> MACRunSpec:
    """Spec for one replication at one fault setting.

    ``stream_seed`` (not ``seed``) preserves the historical
    ``RandomStreams`` construction, whose named substreams draw traffic
    and fault randomness independently.
    """
    if policy is None:
        policy = ControlPolicy.optimal(config.deadline, config.arrival_rate)
    return MACRunSpec(
        policy=policy,
        arrival_rate=config.arrival_rate,
        transmission_slots=config.message_length,
        horizon=config.horizon,
        warmup=config.horizon * config.warmup_fraction,
        n_stations=config.n_stations,
        deadline=config.deadline,
        fault_model=fault_model,
        feedback_faults=feedback_faults,
        stream_seed=seed,
        backend=backend,
    )


def _aggregate(
    error_rate: float, results: Sequence[MACSimResult]
) -> RobustnessPoint:
    if not results:
        # Every replication of this setting was quarantined: an explicit
        # all-NaN row (flagged saturated=False) — the caller adds a note.
        nan = float("nan")
        return RobustnessPoint(
            error_rate=error_rate, loss_fraction=nan, loss_stderr=nan,
            lost_to_faults=nan, unresolved=nan, utilization=nan,
            resyncs=nan, cohort_splits=nan, peak_cohorts=nan,
            saturated=False,
        )
    losses = np.array([r.loss_fraction for r in results], dtype=float)
    return RobustnessPoint(
        error_rate=error_rate,
        loss_fraction=float(np.mean(losses)),
        loss_stderr=(
            float(np.std(losses, ddof=1) / np.sqrt(len(losses)))
            if len(losses) > 1
            else float(results[0].loss_stderr())
        ),
        lost_to_faults=float(np.mean([r.lost_to_faults for r in results])),
        unresolved=float(np.mean([r.unresolved for r in results])),
        utilization=float(np.mean([r.channel.utilization() for r in results])),
        resyncs=float(np.mean([r.faults.resyncs for r in results])),
        cohort_splits=float(np.mean([r.faults.cohort_splits for r in results])),
        peak_cohorts=float(np.mean([r.faults.peak_cohorts for r in results])),
        saturated=any(r.saturated for r in results),
    )


def _sequential_note(
    notes: List[str], estimates: Sequence[SequentialEstimate],
    options: SequentialOptions,
) -> None:
    """Append the sweep-wide sequential-replication summary note."""
    lanes_total = sum(est.lanes for est in estimates)
    notes.append(
        f"sequential replication: {lanes_total} lanes across "
        f"{len(estimates)} cells (ci_target={options.ci_target:g}, "
        f"{options.method}/{options.spending}"
        + (", crn" if options.crn else "")
        + (", antithetic" if options.antithetic else "")
        + "); fault telemetry columns not tracked in this mode"
    )


def feedback_error_sweep(
    config: Optional[RobustnessConfig] = None,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> RobustnessReport:
    """Loss versus symmetric feedback-error rate (the degradation curve).

    Every fault setting replays the *same* traffic sample paths (the
    fault stream is independent of the arrival stream), so the curve
    isolates the marginal damage of mis-observed feedback.
    """
    if config is None:
        config = RobustnessConfig()
    for error_rate in error_rates:
        if error_rate < 0:
            raise ValueError(f"error rate must be non-negative, got {error_rate}")
    report = RobustnessReport(config)
    if sequential is not None:
        # Adaptive replication: one sequential arm per error rate; the
        # unit seed derivation roots at base_seed so CRN replays the
        # same traffic paths at every fault setting.  The pooled loss
        # estimator does not carry per-run fault telemetry, so those
        # columns render as NaN and the summary note says why.
        cells = [
            (
                f"err-{error_rate:g}",
                point_spec(
                    config,
                    (
                        FaultModel.feedback_noise(error_rate)
                        if error_rate > 0
                        else FaultModel.none()
                    ),
                    config.base_seed,
                    backend=backend,
                ),
            )
            for error_rate in error_rates
        ]
        executor = SweepExecutor(
            workers, resilience, metrics=metrics, batch=batch
        )
        with trace.span(
            "robustness.feedback_errors.sequential", cells=len(cells)
        ):
            estimates = run_sequential(
                cells, sequential, executor, base_seed=config.base_seed
            )
        nan = float("nan")
        for error_rate, est in zip(error_rates, estimates):
            if est.units == 0:
                report.notes.append(
                    f"error rate {error_rate:g}: every lane quarantined "
                    "(no estimate)"
                )
            report.points.append(
                RobustnessPoint(
                    error_rate=error_rate,
                    loss_fraction=est.mean if est.units else nan,
                    loss_stderr=est.stderr() if est.units else nan,
                    lost_to_faults=nan, unresolved=nan, utilization=nan,
                    resyncs=nan, cohort_splits=nan, peak_cohorts=nan,
                    saturated=False,
                )
            )
        _sequential_note(report.notes, estimates, sequential)
        return report
    # Flat (error rate × replication) grid: one executor pass covers the
    # whole sweep, and the seeds stay pinned per replication index.
    specs = [
        point_spec(
            config,
            (
                FaultModel.feedback_noise(error_rate)
                if error_rate > 0
                else FaultModel.none()
            ),
            config.base_seed + i,
            backend=backend,
        )
        for error_rate in error_rates
        for i in range(config.n_seeds)
    ]
    executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
    with trace.span("robustness.feedback_errors", cells=len(specs)):
        results = executor.run_specs(specs)
    for row, error_rate in enumerate(error_rates):
        chunk = results[row * config.n_seeds : (row + 1) * config.n_seeds]
        survivors = [r for r in chunk if r is not None]
        if len(survivors) < len(chunk):
            report.notes.append(
                f"error rate {error_rate:g}: "
                f"{len(chunk) - len(survivors)} of {len(chunk)} "
                "replication(s) quarantined; row averages the survivors"
            )
        report.points.append(_aggregate(error_rate, survivors))
    outcome = executor.last_outcome
    if outcome is not None and (outcome.replayed or outcome.quarantined):
        report.notes.append(f"sweep: {outcome.summary()}")
    return report


@dataclass(frozen=True)
class DegradationPoint:
    """Seed-averaged outcome for one protocol at one error rate."""

    protocol: str
    error_rate: float
    loss_fraction: float
    loss_stderr: float
    lost_to_faults: float
    resyncs: float
    diverged_slots: float
    saturated: bool


@dataclass
class DegradationReport:
    """The degradation figure: fraction-late per protocol per error rate.

    The tabular sibling of Figure 7's loss panel with the x-axis swapped
    from offered load to feedback error rate: each protocol contributes
    one curve, and the gap between the controlled curve and the
    uncontrolled ones shows how much of the paper's advantage survives a
    noisy feedback channel.
    """

    config: RobustnessConfig
    recovery: str
    error_rates: Tuple[float, ...] = ()
    points: List[DegradationPoint] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def title(self) -> str:
        c = self.config
        return (
            f"Feedback-error degradation: rho'={c.rho_prime:g}, "
            f"M={c.message_length}, K={c.deadline:g}, "
            f"recovery={self.recovery}, "
            f"{c.n_seeds} seeds x {c.horizon:g} slots"
        )

    def curve(self, protocol: str) -> List[float]:
        """One protocol's fraction-late values in sweep order."""
        return [p.loss_fraction for p in self.points if p.protocol == protocol]

    def to_table(self) -> str:
        """Render the figure as an aligned text table."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.protocol,
                    f"{p.error_rate:g}",
                    f"{p.loss_fraction:.4f}±{2 * p.loss_stderr:.4f}",
                    f"{p.lost_to_faults:.1f}",
                    f"{p.resyncs:.1f}",
                    f"{p.diverged_slots:.0f}",
                    "yes" if p.saturated else "",
                ]
            )
        table = ascii_table(
            [
                "protocol",
                "error rate",
                "fraction late",
                "fault-lost",
                "resyncs",
                "diverged slots",
                "saturated",
            ],
            rows,
            title=self.title,
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table


def protocol_arms(
    config: RobustnessConfig,
) -> "List[Tuple[str, ControlPolicy]]":
    """The four Figure-7 protocol arms at the config's operating point."""
    lam = config.arrival_rate
    return [
        ("controlled", ControlPolicy.optimal(config.deadline, lam)),
        ("fcfs", ControlPolicy.uncontrolled_fcfs(lam)),
        ("lcfs", ControlPolicy.uncontrolled_lcfs(lam)),
        ("random", ControlPolicy.uncontrolled_random(lam)),
    ]


def _aggregate_degradation(
    protocol: str, error_rate: float, results: Sequence[MACSimResult]
) -> DegradationPoint:
    if not results:
        nan = float("nan")
        return DegradationPoint(
            protocol=protocol, error_rate=error_rate, loss_fraction=nan,
            loss_stderr=nan, lost_to_faults=nan, resyncs=nan,
            diverged_slots=nan, saturated=False,
        )
    losses = np.array([r.loss_fraction for r in results], dtype=float)
    # Zero-rate cells run the clean kernels (faults=None).
    resyncs = [r.faults.resyncs if r.faults else 0 for r in results]
    diverged = [r.faults.diverged_slots if r.faults else 0.0 for r in results]
    return DegradationPoint(
        protocol=protocol,
        error_rate=error_rate,
        loss_fraction=float(np.mean(losses)),
        loss_stderr=(
            float(np.std(losses, ddof=1) / np.sqrt(len(losses)))
            if len(losses) > 1
            else float(results[0].loss_stderr())
        ),
        lost_to_faults=float(np.mean([r.lost_to_faults for r in results])),
        resyncs=float(np.mean(resyncs)),
        diverged_slots=float(np.mean(diverged)),
        saturated=any(r.saturated for r in results),
    )


def protocol_degradation_sweep(
    config: Optional[RobustnessConfig] = None,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    recovery: str = "reset-to-epoch",
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> DegradationReport:
    """Fraction-late vs feedback error rate, per Figure-7 protocol.

    Drives the *common-mode* feedback-error family
    (:class:`~repro.faults.FeedbackFaultModel`), so every cell — faulted
    or not — executes on the fast kernel (``repro robustness
    --feedback-errors`` is a full-speed sweep; the perf harness holds it
    to the kernel speedup floor).  Zero-rate cells carry no fault model
    at all and reproduce today's clean kernels bit for bit.

    Every (protocol, rate) cell replays the same ``n_seeds`` traffic
    sample paths — the fault stream is seed-derived independently of the
    arrival stream — so the curves isolate the marginal damage of
    mis-observed feedback per discipline.
    """
    if config is None:
        config = RobustnessConfig()
    if recovery not in RECOVERY_POLICIES:
        raise ValueError(
            f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
        )
    for error_rate in error_rates:
        if not 0.0 <= error_rate <= 0.5:
            raise ValueError(
                f"symmetric error rate must be in [0, 0.5], got {error_rate}"
            )
    arms = protocol_arms(config)
    report = DegradationReport(
        config, recovery, error_rates=tuple(error_rates)
    )
    if sequential is not None:
        # Adaptive replication: one sequential arm per (protocol, error
        # rate) cell.  CRN shares unit seeds across every cell, so the
        # protocol gap at each rate — the quantity the figure exists to
        # show — is a paired contrast on common sample paths.
        cells = [
            (
                f"{name}.err{error_rate:g}",
                point_spec(
                    config,
                    None,
                    config.base_seed,
                    policy=policy,
                    backend=backend,
                    feedback_faults=(
                        FeedbackFaultModel.noise(error_rate, recovery=recovery)
                        if error_rate > 0
                        else None
                    ),
                ),
            )
            for name, policy in arms
            for error_rate in error_rates
        ]
        executor = SweepExecutor(
            workers, resilience, metrics=metrics, batch=batch
        )
        with trace.span(
            "robustness.protocol_degradation.sequential",
            cells=len(cells),
            recovery=recovery,
        ):
            estimates = run_sequential(
                cells, sequential, executor, base_seed=config.base_seed
            )
        nan = float("nan")
        cursor = 0
        for name, _ in arms:
            for error_rate in error_rates:
                est = estimates[cursor]
                cursor += 1
                if est.units == 0:
                    report.notes.append(
                        f"{name} at error rate {error_rate:g}: every lane "
                        "quarantined (no estimate)"
                    )
                report.points.append(
                    DegradationPoint(
                        protocol=name,
                        error_rate=error_rate,
                        loss_fraction=est.mean if est.units else nan,
                        loss_stderr=est.stderr() if est.units else nan,
                        lost_to_faults=nan,
                        resyncs=nan,
                        diverged_slots=nan,
                        saturated=False,
                    )
                )
        _sequential_note(report.notes, estimates, sequential)
        return report
    # Flat (protocol × error rate × replication) grid, one executor pass.
    specs = [
        point_spec(
            config,
            None,
            config.base_seed + i,
            policy=policy,
            backend=backend,
            feedback_faults=(
                FeedbackFaultModel.noise(error_rate, recovery=recovery)
                if error_rate > 0
                else None
            ),
        )
        for _, policy in arms
        for error_rate in error_rates
        for i in range(config.n_seeds)
    ]
    executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
    with trace.span(
        "robustness.protocol_degradation",
        cells=len(specs),
        recovery=recovery,
    ):
        results = executor.run_specs(specs)
    row = 0
    for name, _ in arms:
        for error_rate in error_rates:
            chunk = results[row : row + config.n_seeds]
            row += config.n_seeds
            survivors = [r for r in chunk if r is not None]
            if len(survivors) < len(chunk):
                report.notes.append(
                    f"{name} at error rate {error_rate:g}: "
                    f"{len(chunk) - len(survivors)} of {len(chunk)} "
                    "replication(s) quarantined; cell averages the survivors"
                )
            report.points.append(
                _aggregate_degradation(name, error_rate, survivors)
            )
    outcome = executor.last_outcome
    if outcome is not None and (outcome.replayed or outcome.quarantined):
        report.notes.append(f"sweep: {outcome.summary()}")
    return report


def station_failure_scenario(
    config: Optional[RobustnessConfig] = None,
    crash_rate: float = 5e-4,
    mean_downtime: float = 300.0,
    deaf_rate: float = 3e-4,
    mean_deaf_slots: float = 80.0,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
) -> List[MACSimResult]:
    """Crash/restart + deafness soak at the standard operating point.

    The pass criterion is liveness: every replication runs to the full
    horizon with bounded cohort count and every restarted station
    re-synchronized (the returned telemetry lets callers assert both).
    Under resilience options a quarantined replication is returned as
    ``None`` — callers must render the hole, not drop it.
    """
    if config is None:
        config = RobustnessConfig()
    model = FaultModel(
        crash_rate=crash_rate,
        mean_downtime=mean_downtime,
        deaf_rate=deaf_rate,
        mean_deaf_slots=mean_deaf_slots,
    )
    specs = [
        point_spec(config, model, config.base_seed + i, backend=backend)
        for i in range(config.n_seeds)
    ]
    with trace.span("robustness.station_failures", cells=len(specs)):
        return SweepExecutor(
            workers, resilience, metrics=metrics, batch=batch
        ).run_specs(specs)

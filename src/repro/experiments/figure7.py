"""Figure 7 regeneration: loss vs time constraint per (ρ′, M) panel.

The paper's evaluation (§4.2) plots, for
``ρ′ ∈ {0.25, 0.50, 0.75} × M ∈ {25, 100}``, the fraction of lost
messages against the time constraint K, comparing

* the **controlled** protocol (analytic, eq. 4.7 with the §4.1
  iteration; plus simulation points scored by true waiting time), and
* the **FCFS** and **LCFS** uncontrolled protocols of [Kurose 83]
  (analytic M/G/1 waiting-time tails; plus simulation points).

``ρ′`` is interpreted as the offered channel load λ·M·τ (see DESIGN.md
§2 for why), so λ = ρ′ / M per slot.  Deadlines are swept over a grid
scaled by the message length.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from ..cache import get_or_compute
from ..core.policy import ControlPolicy
from ..obs import tracing as trace
from ..crp.scheduling_time import ExactSchedulingModel, GeometricSchedulingModel
from ..crp.window_opt import optimal_window_occupancy
from ..queueing.distributions import LatticePMF
from ..queueing.impatient import loss_curve
from ..queueing.lcfs import LCFSQueue
from ..queueing.mg1 import MG1
from .records import PanelResult, Series
from .sweep import MACRunSpec, SequentialOptions, SweepExecutor, run_sequential

__all__ = ["PanelConfig", "PAPER_PANELS", "default_deadlines", "generate_panel"]


@dataclass(frozen=True)
class PanelConfig:
    """Configuration of one Figure 7 panel.

    Attributes
    ----------
    rho_prime:
        Offered channel load λ·M·τ.
    message_length:
        M in units of τ.
    scheduling:
        ``"exact"`` (exact scheduling-time pmf) or ``"geometric"`` (the
        paper's approximation).
    occupancy:
        Window occupancy target; None = heuristic optimum μ*.
    """

    rho_prime: float
    message_length: int
    scheduling: str = "exact"
    occupancy: Optional[float] = None

    def __post_init__(self):
        if self.rho_prime <= 0:
            raise ValueError(f"offered load must be positive, got {self.rho_prime}")
        if self.message_length < 1:
            raise ValueError(f"message length must be >= 1, got {self.message_length}")
        if self.scheduling not in ("exact", "geometric"):
            raise ValueError(f"unknown scheduling model: {self.scheduling!r}")

    @property
    def arrival_rate(self) -> float:
        """λ per slot implied by the offered load."""
        return self.rho_prime / self.message_length

    def target_occupancy(self) -> float:
        """The window occupancy the length heuristic aims for."""
        return (
            self.occupancy if self.occupancy is not None else optimal_window_occupancy()
        )

    def service_pmf(self) -> LatticePMF:
        """Service-time distribution (scheduling + transmission).

        Memoised per (M, scheduling, μ): eq. 4.7's fixed-point iteration
        asks for this pmf at every inner step even though it does not
        depend on the accepted rate, and all six panels share two of
        them.
        """
        return _service_pmf(
            self.message_length, self.scheduling, self.target_occupancy()
        )


@lru_cache(maxsize=64)
def _service_pmf(
    message_length: int, scheduling: str, occupancy: float
) -> LatticePMF:
    if scheduling == "exact":
        model = ExactSchedulingModel(message_length, occupancy)
    else:
        model = GeometricSchedulingModel(message_length, occupancy)
    return model.service_pmf()


#: The six panels of Figure 7.
PAPER_PANELS = tuple(
    PanelConfig(rho_prime=rho, message_length=m)
    for rho in (0.25, 0.50, 0.75)
    for m in (25, 100)
)


def default_deadlines(config: PanelConfig) -> list:
    """A deadline grid spanning the interesting range of the panel.

    Scaled by the message length so every panel covers sub-message
    constraints through to the low-loss regime.
    """
    m = config.message_length
    multipliers = (0.5, 1, 1.5, 2, 3, 4, 6, 8, 12)
    return [m * mult for mult in multipliers]


def generate_panel(
    config: PanelConfig,
    deadlines: Optional[Sequence[float]] = None,
    include_simulation: bool = False,
    include_random_baseline: bool = False,
    sim_horizon: float = 150_000.0,
    sim_warmup: float = 20_000.0,
    sim_seed: int = 1,
    sim_deadlines: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
    sim_fast: bool = True,
    sim_backend: Optional[str] = None,
    batch: bool = True,
    resilience=None,
    metrics=None,
    sequential: Optional[SequentialOptions] = None,
) -> PanelResult:
    """Produce every curve of one Figure 7 panel.

    Parameters
    ----------
    config:
        The (ρ′, M) panel.
    deadlines:
        Analytic deadline grid; defaults to :func:`default_deadlines`.
    include_simulation:
        Also run the three protocol simulations (slow) and attach their
        points.
    include_random_baseline:
        Also simulate the RANDOM discipline of [Kurose 83].
    workers:
        Fan the simulation grid over this many worker processes (None/1
        = sequential).  Results are identical for any worker count.
    sim_fast:
        Run simulations on the fast kernel (bit-identical; ``False``
        forces the reference loop).
    sim_backend:
        Explicit kernel selection per simulation run (``"auto"``,
        ``"reference"``, ``"fast"`` or ``"compiled"``); ``None`` keeps
        the historical ``sim_fast`` behaviour.  All backends are
        bit-identical.
    batch:
        Group eligible grid cells into lane-parallel batched tasks
        (bit-identical; ``False`` restores one-task-per-cell dispatch).
    resilience:
        :class:`~repro.resilience.ResilienceOptions` for the simulation
        grid: checkpoint journal, per-task timeout, retry/quarantine.
        Quarantined cells are omitted from their series and called out
        in ``result.notes`` — the panel degrades to an explicit partial
        grid instead of failing (or lying).
    metrics:
        An enabled :class:`~repro.obs.metrics.MetricsRegistry` collects
        per-run simulator metrics and sweep telemetry (see
        ``docs/observability.md``); ``None`` costs nothing.
    sequential:
        A :class:`~repro.experiments.sweep.SequentialOptions` switches
        the simulation arms to adaptive replication: each (protocol,
        deadline) cell runs lane waves until its loss CI half-width
        meets the target (``sim_seed`` roots the unit seed derivation,
        with CRN pairing protocol arms when enabled), and each point's
        stderr renders the realized half-width (±2·stderr band = the
        interval).  See ``docs/statistics.md``.
    """
    if deadlines is None:
        deadlines = default_deadlines(config)
    deadlines = sorted(deadlines)
    lam = config.arrival_rate
    result = PanelResult(rho_prime=config.rho_prime, message_length=config.message_length)

    # -- controlled protocol, analytic (eq. 4.7 + §4.1 iteration) -------------
    def service_model(accepted_rate: float) -> LatticePMF:
        # The occupancy heuristic keeps μ fixed by adapting the window
        # length to the accepted rate, so the scheduling law depends on
        # the accepted rate only through window-length clipping, which
        # the queueing model ignores.  (accepted_rate is part of the
        # ServiceModel signature for models that do use it.)
        del accepted_rate
        return config.service_pmf()

    # The §4.1 iteration is a pure function of the panel and the grid, so
    # repeated invocations (CLI, benches, CI) read it from the memo.
    with trace.span(
        "figure7.analytic", rho=config.rho_prime, m=config.message_length
    ):
        curve = get_or_compute(
            "figure7-loss-curve-v1",
            (
                config.rho_prime,
                config.message_length,
                config.scheduling,
                config.target_occupancy(),
                tuple(deadlines),
            ),
            lambda: loss_curve(lam, deadlines, service_model=service_model),
        )
    controlled = Series("controlled_analytic")
    for point in curve:
        controlled.add(point.deadline, point.loss_probability)
    result.add_series(controlled)

    # -- uncontrolled baselines, analytic --------------------------------------
    service = config.service_pmf()
    fcfs_queue = MG1(lam, service)
    lcfs_queue = LCFSQueue(lam, service.refine(2))
    fcfs = Series("fcfs_analytic")
    lcfs = Series("lcfs_analytic")
    stable = fcfs_queue.rho < 1
    for deadline in deadlines:
        if stable:
            fcfs.add(deadline, fcfs_queue.loss_beyond_deadline(deadline))
            lcfs.add(deadline, lcfs_queue.loss_beyond_deadline(deadline))
        else:
            # Saturated uncontrolled queue: every steady-state wait is
            # unbounded, so the deadline-miss probability is 1.
            fcfs.add(deadline, 1.0)
            lcfs.add(deadline, 1.0)
    result.add_series(fcfs)
    result.add_series(lcfs)

    # -- simulation arms ----------------------------------------------------------
    if include_simulation:
        sim_points = sorted(sim_deadlines) if sim_deadlines is not None else deadlines
        arms = [
            ("controlled_sim", lambda K: ControlPolicy.optimal(K, lam, config.occupancy)),
            ("fcfs_sim", lambda K: ControlPolicy.uncontrolled_fcfs(lam)),
            ("lcfs_sim", lambda K: ControlPolicy.uncontrolled_lcfs(lam)),
        ]
        if include_random_baseline:
            arms.append(("random_sim", lambda K: ControlPolicy.uncontrolled_random(lam)))
        # One flat spec list across arms × deadlines so the executor's
        # parallelism spans the whole grid, not one arm at a time.
        specs = [
            MACRunSpec(
                policy=policy_factory(deadline),
                arrival_rate=lam,
                transmission_slots=config.message_length,
                horizon=sim_horizon,
                warmup=sim_warmup,
                deadline=deadline,
                seed=sim_seed,
                fast=sim_fast,
                backend=sim_backend,
            )
            for _, policy_factory in arms
            for deadline in sim_points
        ]
        executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
        if sequential is not None:
            # Adaptive replication: every (arm, deadline) cell becomes a
            # sequential arm; the flat template list keeps CRN unit
            # seeds shared across protocol arms at every deadline.
            cells = [
                (f"{name}.k{deadline:g}", specs[arm_index * len(sim_points) + point_index])
                for arm_index, (name, _) in enumerate(arms)
                for point_index, deadline in enumerate(sim_points)
            ]
            with trace.span(
                "figure7.sequential",
                rho=config.rho_prime,
                m=config.message_length,
                cells=len(cells),
            ):
                estimates = run_sequential(
                    cells, sequential, executor, base_seed=sim_seed
                )
            lanes_total = 0
            for arm_index, (name, _) in enumerate(arms):
                series = Series(name)
                for point_index, deadline in enumerate(sim_points):
                    est = estimates[arm_index * len(sim_points) + point_index]
                    lanes_total += est.lanes
                    if est.units == 0:
                        result.notes.append(
                            f"{name} @ K={deadline:g}: every lane quarantined "
                            "(no estimate)"
                        )
                        continue
                    series.add(deadline, est.mean, stderr=est.stderr())
                result.add_series(series)
            result.notes.append(
                f"sequential replication: {lanes_total} lanes across "
                f"{len(cells)} cells (ci_target={sequential.ci_target:g}, "
                f"{sequential.method}/{sequential.spending}"
                + (", crn" if sequential.crn else "")
                + (", antithetic" if sequential.antithetic else "")
                + ")"
            )
            return result
        with trace.span(
            "figure7.sweep",
            rho=config.rho_prime,
            m=config.message_length,
            cells=len(specs),
        ):
            runs = executor.run_specs(specs)
        for arm_index, (name, _) in enumerate(arms):
            series = Series(name)
            for point_index, deadline in enumerate(sim_points):
                run = runs[arm_index * len(sim_points) + point_index]
                if run is None:
                    # Quarantined cell: an explicit hole, never a silent one.
                    result.notes.append(
                        f"{name} @ K={deadline:g}: cell quarantined "
                        "(no result; see sweep outcome)"
                    )
                    continue
                series.add(deadline, run.loss_fraction, stderr=run.loss_stderr())
            result.add_series(series)
        outcome = executor.last_outcome
        if outcome is not None and (outcome.replayed or outcome.quarantined):
            result.notes.append(f"simulation sweep: {outcome.summary()}")

    return result

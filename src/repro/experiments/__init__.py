"""The evaluation harness: Figure 7 panels, Theorem 1, and ablations."""

from .ablations import (
    AblationArm,
    ablation_table,
    arity_ablation,
    element4_ablation,
    split_rule_ablation,
    twopoint_fit_errors,
    window_length_ablation,
)
from .figure7 import PAPER_PANELS, PanelConfig, default_deadlines, generate_panel
from .records import PanelResult, Series, SeriesPoint, ascii_table
from .robustness import (
    DEFAULT_ERROR_RATES,
    DegradationPoint,
    DegradationReport,
    RobustnessConfig,
    RobustnessReport,
    feedback_error_sweep,
    point_spec,
    protocol_arms,
    protocol_degradation_sweep,
    station_failure_scenario,
)
from .runner import ReplicationResult, replicate
from .sensitivity import (
    burstiness_sensitivity,
    scheduling_model_sensitivity,
    station_count_sensitivity,
)
from .sweep import (
    MACRunSpec,
    ResilienceOptions,
    SweepExecutor,
    arm_key,
    derive_seeds,
    plan_shards,
    run_spec,
    spec_fingerprint,
)
from .theorem1 import (
    Theorem1Config,
    Theorem1Report,
    enumerate_policy_family,
    run_theorem1_experiment,
)

__all__ = [
    "PanelConfig",
    "PAPER_PANELS",
    "default_deadlines",
    "generate_panel",
    "Series",
    "SeriesPoint",
    "PanelResult",
    "ascii_table",
    "Theorem1Config",
    "Theorem1Report",
    "enumerate_policy_family",
    "run_theorem1_experiment",
    "AblationArm",
    "element4_ablation",
    "window_length_ablation",
    "split_rule_ablation",
    "arity_ablation",
    "twopoint_fit_errors",
    "ablation_table",
    "RobustnessConfig",
    "RobustnessReport",
    "DEFAULT_ERROR_RATES",
    "DegradationPoint",
    "DegradationReport",
    "feedback_error_sweep",
    "protocol_arms",
    "protocol_degradation_sweep",
    "station_failure_scenario",
    "ReplicationResult",
    "replicate",
    "station_count_sensitivity",
    "burstiness_sensitivity",
    "scheduling_model_sensitivity",
    "MACRunSpec",
    "SweepExecutor",
    "ResilienceOptions",
    "run_spec",
    "spec_fingerprint",
    "derive_seeds",
    "arm_key",
    "plan_shards",
    "point_spec",
]

"""Robustness experiments beyond the paper's evaluation.

The paper's analysis assumes an infinite population of stations and
Poisson arrivals.  These sweeps measure how the *simulated* protocol
departs from the analysis when those assumptions bend:

* :func:`station_count_sensitivity` — the protocol's control state is
  shared, so performance should be nearly independent of the population
  size; only same-station message aggregation (a station transmits one
  message per window) perturbs small populations.
* :func:`burstiness_sensitivity` — MMPP traffic with the same mean rate
  but increasing burstiness degrades time-constrained performance; the
  controlled protocol's discard keeps the degradation bounded.
* :func:`scheduling_model_sensitivity` — eq. 4.7 under the exact
  scheduling-time law vs the paper's geometric approximation (same
  mean): how much distribution shape matters.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..core.policy import ControlPolicy
from ..crp.scheduling_time import ExactSchedulingModel, GeometricSchedulingModel
from ..crp.window_opt import optimal_window_occupancy
from ..queueing.impatient import ImpatientMG1
from ..workloads.arrivals import MMPPWorkload
from ..obs import tracing as trace
from .ablations import AblationArm
from .sweep import (
    MACRunSpec,
    SequentialOptions,
    SweepExecutor,
    run_sequential,
)

__all__ = [
    "station_count_sensitivity",
    "burstiness_sensitivity",
    "scheduling_model_sensitivity",
]


def _arms(label_format, parameters, results) -> List[AblationArm]:
    """Wrap sweep results as arms; quarantined cells become explicit
    ``NaN`` arms labelled ``[quarantined]`` rather than vanishing."""
    arms = []
    for parameter, result in zip(parameters, results):
        label = label_format.format(parameter)
        if result is None:
            arms.append(AblationArm(label=f"{label} [quarantined]", loss=math.nan))
        else:
            arms.append(
                AblationArm(
                    label=label,
                    loss=result.loss_fraction,
                    stderr=result.loss_stderr(),
                )
            )
    return arms


def _sequential_arms(
    label_format, parameters, specs, workers, resilience, metrics, batch,
    sequential,
) -> List[AblationArm]:
    """Adaptive-replication variant of the sweep-then-wrap pattern."""
    labels = [label_format.format(parameter) for parameter in parameters]
    executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
    base_seed = specs[0].seed if specs else 1
    estimates = run_sequential(
        list(zip(labels, specs)), sequential, executor, base_seed=base_seed
    )
    return [
        AblationArm(
            label=f"{est.label} [quarantined]" if est.units == 0 else est.label,
            loss=est.mean if est.units else math.nan,
            stderr=est.stderr() if est.units else None,
        )
        for est in estimates
    ]


def station_count_sensitivity(
    station_counts: Sequence[int] = (4, 16, 64, 256),
    rho_prime: float = 0.75,
    message_length: int = 25,
    deadline: float = 75.0,
    horizon: float = 100_000.0,
    warmup: float = 12_000.0,
    seed: int = 41,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Loss of the controlled protocol across population sizes."""
    lam = rho_prime / message_length
    specs = [
        MACRunSpec(
            policy=ControlPolicy.optimal(deadline, lam),
            arrival_rate=lam,
            transmission_slots=message_length,
            horizon=horizon,
            warmup=warmup,
            n_stations=n_stations,
            deadline=deadline,
            seed=seed,
            backend=backend,
        )
        for n_stations in station_counts
    ]
    if sequential is not None:
        with trace.span("sensitivity.stations", cells=len(specs)):
            return _sequential_arms(
                "{0} stations", station_counts, specs, workers, resilience,
                metrics, batch, sequential,
            )
    with trace.span("sensitivity.stations", cells=len(specs)):
        results = SweepExecutor(
            workers, resilience, metrics=metrics, batch=batch
        ).run_specs(specs)
    return _arms("{0} stations", station_counts, results)


def burstiness_sensitivity(
    burst_ratios: Sequence[float] = (1.0, 3.0, 9.0),
    rho_prime: float = 0.6,
    message_length: int = 25,
    deadline: float = 100.0,
    modulation_period: float = 4_000.0,
    horizon: float = 150_000.0,
    warmup: float = 15_000.0,
    seed: int = 43,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Loss under MMPP traffic of fixed mean rate, varying peak/mean.

    ``burst_ratio`` is the high-state rate divided by the mean rate;
    1.0 degenerates to Poisson.  States alternate with equal mean
    holding time ``modulation_period / 2``.
    """
    mean_rate = rho_prime / message_length
    specs = []
    for ratio in burst_ratios:
        if ratio < 1.0:
            raise ValueError(f"burst ratio must be >= 1, got {ratio}")
        high = mean_rate * ratio
        low = max(0.0, 2.0 * mean_rate - high)  # keeps the average at mean_rate
        workload = (
            None
            if ratio == 1.0
            else MMPPWorkload(
                low_rate=low,
                high_rate=high,
                mean_low=modulation_period / 2,
                mean_high=modulation_period / 2,
            )
        )
        specs.append(
            MACRunSpec(
                policy=ControlPolicy.optimal(deadline, mean_rate),
                arrival_rate=mean_rate,
                transmission_slots=message_length,
                horizon=horizon,
                warmup=warmup,
                deadline=deadline,
                seed=seed,
                workload=workload,
                backend=backend,
            )
        )
    if sequential is not None:
        with trace.span("sensitivity.burstiness", cells=len(specs)):
            return _sequential_arms(
                "peak/mean {0:g}", burst_ratios, specs, workers, resilience,
                metrics, batch, sequential,
            )
    with trace.span("sensitivity.burstiness", cells=len(specs)):
        results = SweepExecutor(
            workers, resilience, metrics=metrics, batch=batch
        ).run_specs(specs)
    return _arms("peak/mean {0:g}", burst_ratios, results)


def scheduling_model_sensitivity(
    deadlines: Sequence[float] = (25.0, 50.0, 100.0, 200.0),
    rho_prime: float = 0.75,
    message_length: int = 25,
) -> List[List[str]]:
    """Eq. 4.7 loss rows: exact scheduling law vs geometric approximation."""
    lam = rho_prime / message_length
    mu = optimal_window_occupancy()
    exact_service = ExactSchedulingModel(message_length, mu).service_pmf()
    geo_service = GeometricSchedulingModel(message_length, mu).service_pmf()
    rows = []
    for deadline in deadlines:
        exact = ImpatientMG1(lam, exact_service, deadline).loss_probability()
        geo = ImpatientMG1(lam, geo_service, deadline).loss_probability()
        gap = abs(geo - exact) / exact if exact > 0 else 0.0
        rows.append(
            [f"{deadline:g}", f"{exact:.5f}", f"{geo:.5f}", f"{gap:.1%}"]
        )
    return rows

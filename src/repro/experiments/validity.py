"""Model-validity sweep: where does the eq. 4.7 analysis hold?

The paper's loss prediction (eq. 4.7 with the §4.1 iteration) assumes
stationary network-wide Poisson arrivals.  This driver sweeps scenario
*families* — the stationary control plus the nonstationary generators of
:mod:`repro.workloads.nonstationary` — through the simulator on the
Figure-7 grid and reports, per cell, the divergence between the
simulated fraction-late and the analytic prediction *computed as if the
traffic were Poisson at the same mean rate*.  The stationary family
validates the harness (its divergence must sit inside the golden
tolerance); the nonstationary families map the analysis's blind spots.

Every scenario is rate-matched: :func:`scenario_workload` solves each
family's parameters so ``mean_rate`` equals λ = ρ′/M exactly, so any
divergence is attributable to the arrival *shape*, never to a different
offered load.

The report is schema'd for :mod:`repro.obs.report` — ``flush_metrics``
writes one gauge per cell plus per-family roll-ups, so two validity runs
can be compared with ``repro report diff`` like any other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache import get_or_compute
from ..core.policy import ControlPolicy
from ..obs import tracing as trace
from ..obs.metrics import MetricsRegistry
from ..queueing.impatient import loss_curve
from ..workloads import (
    AdversarialWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    HeavyTailedWorkload,
    Workload,
)
from .figure7 import PanelConfig
from .records import ascii_table
from .sweep import (
    MACRunSpec,
    SequentialOptions,
    SweepExecutor,
    run_sequential,
)

__all__ = [
    "SCENARIO_FAMILIES",
    "DEFAULT_AGREEMENT_TOL",
    "scenario_workload",
    "ValidityConfig",
    "ValidityCell",
    "FamilySummary",
    "ValidityReport",
    "run_validity",
]

#: Scenario families the sweep knows how to build.  ``stationary`` is
#: the Poisson control arm — the analysis's own assumption — and must
#: agree with eq. 4.7; the rest are the nonstationary stressors.
SCENARIO_FAMILIES = (
    "stationary",
    "heavy-tailed",
    "diurnal",
    "flash-crowd",
    "adversarial",
)

#: Default |simulated − analytic| agreement tolerance.  Sized to the
#: stationary control's residual on the default grid — binomial noise at
#: the ~450 scored messages an M=100 cell yields over the default
#: horizon (stderr ≈ 0.02) plus the finite-horizon transient — while the
#: nonstationary families diverge by 0.04–0.43: unmistakable.
DEFAULT_AGREEMENT_TOL = 0.03


def scenario_workload(family: str, rate: float) -> Optional[Workload]:
    """The canonical workload of ``family``, rate-matched to ``rate``.

    Every returned workload has ``mean_rate == rate`` exactly, so the
    analytic prediction at λ = ``rate`` is the like-for-like Poisson
    counterfactual.  ``stationary`` returns None — the simulator's
    built-in Poisson path, which is the bit-for-bit control arm.
    """
    if family == "stationary":
        return None
    if family == "heavy-tailed":
        # Infinite-variance Lomax gaps: dense clumps between long lulls.
        return HeavyTailedWorkload(rate=rate, shape=1.5, family="pareto")
    if family == "diurnal":
        # A pronounced day/night cycle, slow against the protocol's
        # resolution timescale so the load genuinely dwells at the peak.
        return DiurnalWorkload(rate=rate, period=8_000.0, amplitude=0.8)
    if family == "flash-crowd":
        # 6x surges covering 8% of the cycle; the baseline is solved so
        # the long-run mean stays rate-matched.
        peak_ratio, ramp, hold, period = 6.0, 200.0, 600.0, 10_000.0
        inflation = 1.0 + (peak_ratio - 1.0) * (ramp + hold) / period
        return FlashCrowdWorkload(
            base_rate=rate / inflation,
            peak_ratio=peak_ratio,
            ramp=ramp,
            hold=hold,
            period=period,
            onset=2_000.0,
        )
    if family == "adversarial":
        # Half the load arrives as synchronized batches (guaranteed
        # collision cascades), half as Poisson background.
        burst_size = 8
        background = rate / 2.0
        return AdversarialWorkload(
            burst_size=burst_size,
            interval=burst_size / (rate - background),
            background_rate=background,
        )
    raise ValueError(
        f"unknown scenario family: {family!r} (expected one of {SCENARIO_FAMILIES})"
    )


@dataclass(frozen=True)
class ValidityConfig:
    """Grid definition for one validity sweep.

    The deadline axis is expressed as multiples of the message length
    (``deadline_factors``), mirroring Figure 7's K = factor·M grid.
    """

    rho_primes: Tuple[float, ...] = (0.25, 0.50, 0.75)
    message_lengths: Tuple[int, ...] = (25, 100)
    deadline_factors: Tuple[float, ...] = (1.0, 3.0, 6.0)
    families: Tuple[str, ...] = SCENARIO_FAMILIES
    horizon: float = 60_000.0
    warmup: float = 7_500.0
    seed: int = 7
    n_stations: int = 200
    agreement_tol: float = DEFAULT_AGREEMENT_TOL

    def __post_init__(self):
        if not self.families:
            raise ValueError("at least one scenario family is required")
        for family in self.families:
            if family not in SCENARIO_FAMILIES:
                raise ValueError(
                    f"unknown scenario family: {family!r} "
                    f"(expected one of {SCENARIO_FAMILIES})"
                )
        if not self.rho_primes or not self.message_lengths:
            raise ValueError("rho_primes and message_lengths must be non-empty")
        if not self.deadline_factors:
            raise ValueError("deadline_factors must be non-empty")
        if min(self.deadline_factors) <= 0:
            raise ValueError("deadline factors must be positive")
        if self.horizon <= 0 or self.warmup < 0:
            raise ValueError("horizon must be positive and warmup non-negative")
        if self.agreement_tol <= 0:
            raise ValueError(
                f"agreement tolerance must be positive, got {self.agreement_tol}"
            )


@dataclass(frozen=True)
class ValidityCell:
    """One (family, ρ′, M, K) point of the divergence map."""

    family: str
    rho_prime: float
    message_length: int
    deadline: float
    analytic: float
    simulated: float
    stderr: float
    saturated: bool

    @property
    def delta(self) -> float:
        """Simulated minus analytic fraction-late (positive = the
        analysis is optimistic for this traffic)."""
        return self.simulated - self.analytic

    def agrees(self, tolerance: float) -> bool:
        """Does the simulation sit within ``tolerance`` of eq. 4.7?"""
        return abs(self.delta) <= tolerance


@dataclass(frozen=True)
class FamilySummary:
    """Divergence roll-up of one scenario family across the grid."""

    family: str
    cells: int
    agreeing: int
    max_abs_delta: float
    mean_delta: float
    worst_cell: Optional[ValidityCell]

    @property
    def holds(self) -> bool:
        """Does eq. 4.7 describe this family everywhere on the grid?"""
        return self.agreeing == self.cells


@dataclass
class ValidityReport:
    """Divergence map produced by :func:`run_validity`."""

    config: ValidityConfig
    cells: List[ValidityCell] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def cell(
        self, family: str, rho_prime: float, message_length: int, deadline: float
    ) -> ValidityCell:
        for cell in self.cells:
            if (
                cell.family == family
                and cell.rho_prime == rho_prime
                and cell.message_length == message_length
                and cell.deadline == deadline
            ):
                return cell
        raise KeyError(
            f"no cell ({family}, rho'={rho_prime}, M={message_length}, K={deadline})"
        )

    def family_cells(self, family: str) -> List[ValidityCell]:
        return [cell for cell in self.cells if cell.family == family]

    def family_summaries(self) -> List[FamilySummary]:
        tol = self.config.agreement_tol
        summaries = []
        for family in self.config.families:
            cells = self.family_cells(family)
            if not cells:
                continue
            worst = max(cells, key=lambda c: abs(c.delta))
            summaries.append(
                FamilySummary(
                    family=family,
                    cells=len(cells),
                    agreeing=sum(cell.agrees(tol) for cell in cells),
                    max_abs_delta=abs(worst.delta),
                    mean_delta=sum(c.delta for c in cells) / len(cells),
                    worst_cell=worst,
                )
            )
        return summaries

    def to_table(self) -> str:
        """Per-cell divergence table plus the family verdict roll-up."""
        tol = self.config.agreement_tol
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.family,
                    f"{cell.rho_prime:g}",
                    f"{cell.message_length}",
                    f"{cell.deadline:g}",
                    f"{cell.analytic:.4f}",
                    f"{cell.simulated:.4f}",
                    f"{cell.delta:+.4f}",
                    ("ok" if cell.agrees(tol) else "BREAKS")
                    + (" [saturated]" if cell.saturated else ""),
                ]
            )
        header = ["family", "rho'", "M", "K", "eq4.7", "sim", "delta", "verdict"]
        parts = [
            ascii_table(
                header, rows, title=f"Model validity (|delta| <= {tol:g} agrees)"
            )
        ]
        summary_rows = [
            [
                s.family,
                f"{s.agreeing}/{s.cells}",
                f"{s.max_abs_delta:.4f}",
                f"{s.mean_delta:+.4f}",
                "holds" if s.holds else "breaks",
            ]
            for s in self.family_summaries()
        ]
        parts.append(
            ascii_table(
                ["family", "agree", "max |delta|", "mean delta", "eq. 4.7"],
                summary_rows,
                title="Family verdicts",
            )
        )
        parts.extend(self.notes)
        return "\n\n".join(parts)

    def to_csv(self) -> str:
        lines = ["family,rho_prime,message_length,deadline,analytic,simulated,delta,stderr,saturated"]
        for c in self.cells:
            lines.append(
                f"{c.family},{c.rho_prime:g},{c.message_length},{c.deadline:g},"
                f"{c.analytic:.6f},{c.simulated:.6f},{c.delta:+.6f},"
                f"{c.stderr:.6f},{int(c.saturated)}"
            )
        return "\n".join(lines)

    def flush_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """Record the divergence map as gauges so two validity runs diff
        cleanly under ``repro report diff``."""
        if metrics is None or not metrics.enabled:
            return
        for cell in self.cells:
            key = (
                f"validity.{cell.family}.rho{cell.rho_prime:g}"
                f".m{cell.message_length}.k{cell.deadline:g}"
            )
            metrics.gauge(f"{key}.delta").set(cell.delta)
            metrics.gauge(f"{key}.simulated").set(cell.simulated)
            metrics.gauge(f"{key}.analytic").set(cell.analytic)
        for summary in self.family_summaries():
            metrics.gauge(
                f"validity.{summary.family}.max_abs_delta"
            ).set(summary.max_abs_delta)
            metrics.counter(
                f"validity.{summary.family}.cells_breaking"
            ).inc(summary.cells - summary.agreeing)
        metrics.counter("validity.cells").inc(len(self.cells))


def _analytic_curve(
    rho_prime: float, message_length: int, deadlines: Sequence[float]
) -> Dict[float, float]:
    """Eq. 4.7 loss per deadline for one (ρ′, M) panel (memoised with
    the Figure-7 cache key: it is the identical computation)."""
    config = PanelConfig(rho_prime=rho_prime, message_length=message_length)

    def service_model(accepted_rate):
        del accepted_rate
        return config.service_pmf()

    curve = get_or_compute(
        "figure7-loss-curve-v1",
        (
            config.rho_prime,
            config.message_length,
            config.scheduling,
            config.target_occupancy(),
            tuple(deadlines),
        ),
        lambda: loss_curve(
            config.arrival_rate, deadlines, service_model=service_model
        ),
    )
    return {point.deadline: point.loss_probability for point in curve}


def run_validity(
    config: ValidityConfig = ValidityConfig(),
    workers: Optional[int] = None,
    resilience=None,
    metrics: Optional[MetricsRegistry] = None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> ValidityReport:
    """Sweep every (family, ρ′, M, K) cell and build the divergence map.

    The whole grid goes through one :class:`SweepExecutor.run_specs`
    call (batched lane-parallel by default), so the sweep inherits the
    executor's parallelism, journaling and quarantine semantics.
    Quarantined cells become explicit notes, never silent holes.

    With ``sequential`` options each grid cell becomes an adaptive-
    replication arm: lane waves run until the cell's fraction-late CI
    half-width meets the target, and the cell's stderr renders the
    realized half-width.  CRN shares unit seeds across every cell, so
    the per-family deltas against the stationary control are paired
    contrasts on common sample paths.
    """
    panels = [
        (rho, m) for rho in config.rho_primes for m in config.message_lengths
    ]
    analytic = {
        (rho, m): _analytic_curve(
            rho, m, sorted(factor * m for factor in config.deadline_factors)
        )
        for rho, m in panels
    }
    grid = [
        (family, rho, m, factor * m)
        for family in config.families
        for rho, m in panels
        for factor in sorted(config.deadline_factors)
    ]
    specs = []
    for family, rho, m, deadline in grid:
        lam = rho / m
        specs.append(
            MACRunSpec(
                policy=ControlPolicy.optimal(deadline, lam),
                arrival_rate=lam,
                transmission_slots=m,
                horizon=config.horizon,
                warmup=config.warmup,
                n_stations=config.n_stations,
                deadline=deadline,
                seed=config.seed,
                workload=scenario_workload(family, lam),
                backend=backend,
            )
        )
    executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
    if sequential is not None:
        cells = [
            (f"{family}.rho{rho:g}.m{m}.k{deadline:g}", spec)
            for (family, rho, m, deadline), spec in zip(grid, specs)
        ]
        with trace.span("validity.sequential", cells=len(cells)):
            estimates = run_sequential(
                cells, sequential, executor, base_seed=config.seed
            )
        report = ValidityReport(config=config)
        lanes_total = 0
        for (family, rho, m, deadline), est in zip(grid, estimates):
            lanes_total += est.lanes
            if est.units == 0:
                report.notes.append(
                    f"{family} @ rho'={rho:g}, M={m}, K={deadline:g}: every "
                    "lane quarantined (no estimate)"
                )
                continue
            report.cells.append(
                ValidityCell(
                    family=family,
                    rho_prime=rho,
                    message_length=m,
                    deadline=deadline,
                    analytic=analytic[(rho, m)][deadline],
                    simulated=est.mean,
                    stderr=est.stderr(),
                    # The pooled estimator does not track saturation; the
                    # verdict column simply omits the [saturated] marker.
                    saturated=False,
                )
            )
        report.notes.append(
            f"sequential replication: {lanes_total} lanes across "
            f"{len(cells)} cells (ci_target={sequential.ci_target:g}, "
            f"{sequential.method}/{sequential.spending}"
            + (", crn" if sequential.crn else "")
            + (", antithetic" if sequential.antithetic else "")
            + ")"
        )
        report.flush_metrics(metrics)
        return report
    with trace.span("validity.sweep", cells=len(specs)):
        results = executor.run_specs(specs)

    report = ValidityReport(config=config)
    for (family, rho, m, deadline), result in zip(grid, results):
        if result is None:
            report.notes.append(
                f"{family} @ rho'={rho:g}, M={m}, K={deadline:g}: cell "
                "quarantined (no result; see sweep outcome)"
            )
            continue
        report.cells.append(
            ValidityCell(
                family=family,
                rho_prime=rho,
                message_length=m,
                deadline=deadline,
                analytic=analytic[(rho, m)][deadline],
                simulated=result.loss_fraction,
                stderr=result.loss_stderr(),
                saturated=result.saturated,
            )
        )
    outcome = executor.last_outcome
    if outcome is not None and (outcome.replayed or outcome.quarantined):
        report.notes.append(f"validity sweep: {outcome.summary()}")
    report.flush_metrics(metrics)
    return report

"""Parallel sweep execution for simulation experiment grids.

Every sweep in this package — Figure 7's simulation arms, the ablation
benches, the sensitivity and robustness grids — reduces to the same
shape: a list of independent simulator runs, each fully described by a
small picklable spec, whose results are consumed in submission order.
:class:`SweepExecutor` owns that shape once:

* ``workers=None`` (or 1) runs inline — no subprocesses, no pickling
  requirements, bit-identical to the historical sequential loops;
* ``workers=N`` fans the specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
  batching.  Because every task carries its own seed and tasks share no
  state, the merged results are **independent of the worker count** —
  the determinism tests in ``tests/experiments/test_sweep.py`` hold the
  executor to that.

Seed discipline
---------------
A sweep must never derive task seeds from its worker layout.  Tasks
either carry explicit seeds (the historical grids pin them) or derive
them ahead of submission with :func:`derive_seeds`, which spawns
independent children from one ``SeedSequence`` — stable under
re-chunking, resumable, and collision-free by construction.

Crash tolerance
---------------
Both paths run under :class:`~repro.resilience.SupervisedExecutor`.
Without :class:`~repro.resilience.ResilienceOptions` the semantics are
strict (a task failure raises, as the historical loops did); with
options, the sweep checkpoints completed cells to a content-addressed
:class:`~repro.resilience.RunJournal`, retries transient failures on
fresh worker processes, survives ``BrokenProcessPool``, quarantines
poison specs, and resumes from the journal on re-invocation.  The
outcome of the last ``run_specs``/``map`` call (replay counts,
quarantine records) is kept on :attr:`SweepExecutor.last_outcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from ..core.policy import ControlPolicy
from ..des.rng import RandomStreams
from ..faults import FaultModel, FeedbackFaultModel
from ..mac.batch import batch_eligible, run_batch, run_batch_with_metrics
from ..mac.simulator import MACSimResult, WindowMACSimulator
from ..obs.metrics import MetricsRegistry
from ..resilience import (
    JournalMismatchError,
    QuarantineRecord,
    ResilienceOptions,
    RunJournal,
    SupervisedExecutor,
    SweepOutcome,
    fingerprint,
    value_digest,
)
from ..stats.sequential import SequentialConfig, WaveDecision, decide_wave

__all__ = [
    "MACRunSpec",
    "run_spec",
    "run_spec_with_metrics",
    "run_sweep_task",
    "spec_fingerprint",
    "batch_eligible",
    "SweepExecutor",
    "derive_seeds",
    "ResilienceOptions",
    "DEFAULT_BATCH_CHUNK",
    "arm_key",
    "plan_shards",
    "SequentialOptions",
    "SequentialEstimate",
    "run_sequential",
    "sequential_decision_fingerprint",
]

#: Upper bound on lanes per batched task.  Wide enough to amortise the
#: per-round NumPy dispatch across a whole 16–64-seed arm, small enough
#: that one task's arrival arrays stay cache-friendly and a parallel
#: sweep still has tasks to balance across workers.
DEFAULT_BATCH_CHUNK = 64

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class MACRunSpec:
    """One simulator run, fully described and picklable.

    Attributes mirror :class:`~repro.mac.simulator.WindowMACSimulator`'s
    constructor plus the run horizon.  ``stream_seed`` (when given)
    builds the simulator with a :class:`~repro.des.rng.RandomStreams`
    family — the construction the robustness sweeps use — while ``seed``
    is the plain single-generator construction of the historical grids;
    the two draw differently, so specs must preserve whichever the
    call site historically used.
    """

    policy: ControlPolicy
    arrival_rate: float
    transmission_slots: int
    horizon: float
    warmup: float
    n_stations: int = 200
    deadline: Optional[float] = None
    loss_definition: str = "true"
    seed: int = 0
    stream_seed: Optional[int] = None
    workload: Optional[object] = None
    fault_model: Optional[FaultModel] = None
    fast: bool = True
    backend: Optional[str] = None
    feedback_faults: Optional[FeedbackFaultModel] = None
    antithetic: bool = False

    def __post_init__(self):
        # Bad grid parameters must fail here, at spec construction, with
        # a message naming the field — not deep inside a worker process
        # where the traceback points at simulator internals.
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        if self.transmission_slots < 1:
            raise ValueError(
                f"transmission length must be >= 1 slot, "
                f"got {self.transmission_slots}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0 <= self.warmup < self.horizon:
            raise ValueError(
                f"warmup must satisfy 0 <= warmup < horizon, got "
                f"warmup={self.warmup} with horizon={self.horizon}"
            )
        if self.n_stations < 1:
            raise ValueError(
                f"need at least one station, got {self.n_stations}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.fault_model is not None and self.feedback_faults is not None:
            raise ValueError(
                "fault_model and feedback_faults are mutually exclusive "
                "on a spec (per-station replica faults vs common-mode "
                "feedback-channel errors)"
            )


def spec_fingerprint(spec: MACRunSpec, instrumented: bool = False) -> str:
    """Content-addressed identity of one run (the journal key).

    Depends only on the spec's fields — never on worker layout,
    submission order, or grid position — so a resumed, reordered or
    narrowed grid replays exactly the cells whose parameters match.
    ``instrumented`` runs journal ``(result, metrics)`` pairs, so they
    live in their own fingerprint namespace — a journal of plain results
    can never satisfy (or be corrupted by) a metrics-collecting resume.
    """
    tag = "mac-run-spec-with-metrics" if instrumented else "mac-run-spec"
    return fingerprint((tag, spec))


def _build_simulator(
    spec: MACRunSpec, metrics: Optional[MetricsRegistry] = None
) -> WindowMACSimulator:
    kwargs = dict(
        arrival_rate=spec.arrival_rate,
        transmission_slots=spec.transmission_slots,
        n_stations=spec.n_stations,
        deadline=spec.deadline,
        loss_definition=spec.loss_definition,
        workload=spec.workload,
        fault_model=spec.fault_model,
        feedback_faults=spec.feedback_faults,
        fast=spec.fast,
        backend=spec.backend,
        metrics=metrics,
        antithetic=spec.antithetic,
    )
    if spec.stream_seed is not None:
        kwargs["streams"] = RandomStreams(spec.stream_seed)
    else:
        kwargs["seed"] = spec.seed
    return WindowMACSimulator(spec.policy, **kwargs)


def run_spec(spec: MACRunSpec) -> MACSimResult:
    """Execute one spec (module-level, so worker processes can import it)."""
    simulator = _build_simulator(spec)
    return simulator.run(spec.horizon, warmup_slots=spec.warmup)


def run_spec_with_metrics(spec: MACRunSpec):
    """Execute one spec under a fresh registry; returns ``(result, state)``.

    ``state`` is ``MetricsRegistry.to_dict()`` — plain picklable data, so
    the pair crosses the process-pool boundary (and the journal) without
    dragging metric objects along.  The registry is per-task, which is
    what makes the parent-side merge independent of worker count: merge
    in submission order and the layout cancels out.
    """
    registry = MetricsRegistry()
    simulator = _build_simulator(spec, metrics=registry)
    result = simulator.run(spec.horizon, warmup_slots=spec.warmup)
    return result, registry.to_dict()


def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent seeds spawned deterministically from one root.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent and the list depends only on
    ``(base_seed, n)`` — never on worker count or chunking.
    """
    if n < 0:
        raise ValueError(f"need a non-negative count, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def run_sweep_task(task: Tuple[str, Any]):
    """Execute one scheduled sweep task (module-level, pool-picklable).

    A task is ``(kind, payload)``: ``"spec"``/``"spec+metrics"`` carry a
    single :class:`MACRunSpec` and behave exactly like :func:`run_spec`
    / :func:`run_spec_with_metrics`; ``"batch"``/``"batch+metrics"``
    carry a tuple of specs and return the per-spec result list from the
    lane-parallel kernel — bit-identical to running the members one by
    one, so batch scheduling never changes a sweep's numbers.
    """
    kind, payload = task
    if kind == "spec":
        return run_spec(payload)
    if kind == "spec+metrics":
        return run_spec_with_metrics(payload)
    if kind == "batch":
        return run_batch(list(payload))
    if kind == "batch+metrics":
        return run_batch_with_metrics(list(payload))
    raise ValueError(f"unknown sweep task kind: {kind!r}")


def arm_key(spec: MACRunSpec) -> str:
    """Content hash of a spec's *arm* — every field except the seed.

    Batched tasks group same-arm seed replications together (the shape
    every headline grid has), so one task advances one arm's whole
    cohort in lockstep.  The service's shard planner uses the same key,
    so a shard is usually one arm's seed cohort and dispatching it to
    one backend slot keeps the batched kernel fed.
    """
    return fingerprint(("mac-arm", replace(spec, seed=0)))


def plan_shards(
    specs: Sequence[MACRunSpec], shard_size: int = DEFAULT_BATCH_CHUNK
) -> List[List[int]]:
    """Partition a grid into dispatch shards, grouped by arm fingerprint.

    Returns index lists that cover ``range(len(specs))`` exactly once:
    same-arm seed replications become adjacent (one shard is usually one
    arm's cohort, the shape the batched kernel wants), and no shard
    exceeds ``shard_size`` cells.  The plan is a pure function of the
    spec list and ``shard_size`` — never of worker layout or wall-clock
    — so a restarted server re-plans a recovered job into *identical*
    shards and every shard's journal keys still match.
    """
    if shard_size < 1:
        raise ValueError(f"shard size must be >= 1, got {shard_size}")
    groups: Dict[str, List[int]] = {}
    order: List[str] = []
    for index, spec in enumerate(specs):
        key = arm_key(spec)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    ordered = [index for key in order for index in groups[key]]
    return [
        ordered[i : i + shard_size]
        for i in range(0, len(ordered), shard_size)
    ]


class SweepExecutor:
    """Runs independent sweep tasks, inline or across worker processes.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` — run inline in submission order (no
        subprocesses; callables need not be picklable).  ``N > 1`` —
        fan out over a supervised process pool; the mapped callable and
        every item must be picklable (module-level functions and frozen
        spec dataclasses qualify).
    resilience:
        ``None`` (default) — strict semantics: no checkpoint, no retry,
        the first task failure raises.  A
        :class:`~repro.resilience.ResilienceOptions` — journal replay
        and checkpointing, per-task timeouts, bounded retry and
        quarantine; quarantined tasks leave ``None`` holes in the
        returned list and are reported on :attr:`last_outcome`.
    metrics:
        An enabled :class:`~repro.obs.metrics.MetricsRegistry` turns on
        instrumentation: executor-level counters (cells executed,
        retried, wall-clock histograms) land on this registry directly,
        and ``run_specs`` switches each task to
        :func:`run_spec_with_metrics` so per-run simulator metrics are
        collected in the workers, merged in submission order, and folded
        in here too.  ``None`` or a disabled registry costs nothing.
    batch:
        ``True`` (default) — ``run_specs`` groups
        :func:`~repro.mac.batch.batch_eligible` specs into lane-parallel
        batched tasks (same-arm seed replications together, leftovers
        chunked heterogeneously) and runs the rest as single-spec tasks.
        Results, journal fingerprints, quarantine holes, and merged
        metrics are identical either way — the batched kernel is
        bit-exact — so this is purely a scheduling lever; ``False`` is
        the escape hatch that restores one-task-per-spec dispatch
        (``--verify-replay`` audits force it implicitly, since their
        contract is per-cell recomputation).
    batch_chunk:
        Lanes per batched task (default: :data:`DEFAULT_BATCH_CHUNK`,
        halved down to balance across workers in parallel runs).
    progress:
        Optional callable invoked (in this process) with a completed
        task's cell count each time a task finishes and is journaled.
        The service backend points this at its lease heartbeat, so a
        sweep that is making progress keeps its shard's lease alive and
        a hung sweep lets it expire.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        resilience: Optional[ResilienceOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
        batch: bool = True,
        batch_chunk: Optional[int] = None,
        progress: Optional[Callable[[int], None]] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        if batch_chunk is not None and batch_chunk < 1:
            raise ValueError(f"batch chunk must be >= 1, got {batch_chunk}")
        self.workers = workers
        self.resilience = resilience
        self.batch = batch
        self.batch_chunk = batch_chunk
        self.progress = progress
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        #: Outcome of the most recent ``run_specs``/``map`` call.
        self.last_outcome: Optional[SweepOutcome] = None
        #: Merged per-run simulator metrics of the last ``run_specs``
        #: call (worker-count invariant; ``None`` until an instrumented
        #: sweep has run).
        self.last_sim_metrics: Optional[MetricsRegistry] = None

    @property
    def parallel(self) -> bool:
        """Whether this executor fans out to worker processes."""
        return self.workers is not None and self.workers > 1

    def _engine(self, n_tasks: int) -> SupervisedExecutor:
        # A single task never justifies a pool (matches the historical
        # inline shortcut); the supervised inline path still journals.
        workers = self.workers if n_tasks > 1 else None
        return SupervisedExecutor(workers, self.resilience, metrics=self.metrics)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        fingerprints: Optional[Sequence[Optional[str]]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item, results in submission order.

        With resilience options, completed items are journaled under
        ``fingerprints`` (defaults to content hashes of
        ``(fn qualname, item)`` for picklable items) and quarantined
        items come back as ``None`` holes — check :attr:`last_outcome`.
        """
        items = list(items)
        if self.resilience is not None and fingerprints is None:
            try:
                fingerprints = [
                    fingerprint((fn.__module__, fn.__qualname__, item))
                    for item in items
                ]
            except (AttributeError, TypeError):
                fingerprints = None  # unfingerprintable: run without replay
        outcome = self._engine(len(items)).run(
            fn, items, fingerprints, progress=self.progress
        )
        self.last_outcome = outcome
        return outcome.results

    def run_specs(self, specs: Sequence[MACRunSpec]) -> List[MACSimResult]:
        """Run a list of :class:`MACRunSpec`, results in spec order.

        Under resilience options a quarantined spec leaves ``None`` at
        its index — callers must surface the hole (the experiment
        drivers mark it in their tables).  With batching on (the
        default), eligible specs ride lane-parallel batched tasks; the
        kernel is bit-exact, the journal keys stay per-spec, and a
        quarantined batched task holes *all* its members, so every
        caller-visible contract is unchanged.

        With a registry attached, tasks run through
        :func:`run_spec_with_metrics`; per-run registries come back with
        the results and are merged **in spec submission order** (never
        completion order), so the merged metrics are identical for any
        worker count or chunk layout — the property the
        worker-invariance tests pin.
        """
        specs = list(specs)
        instrumented = self.metrics is not None
        if self._batchable(specs):
            return self._run_specs_batched(specs, instrumented)
        fn = run_spec_with_metrics if instrumented else run_spec
        fingerprints = None
        if self.resilience is not None:
            fingerprints = [spec_fingerprint(spec, instrumented) for spec in specs]
        outcome = self._engine(len(specs)).run(
            fn, specs, fingerprints, progress=self.progress
        )
        self.last_outcome = outcome
        return self._fold_results(outcome.results, instrumented)

    def _fold_results(
        self, entries: Sequence, instrumented: bool
    ) -> List[Optional[MACSimResult]]:
        """Unpack raw task entries; merge per-run registries in order."""
        if not instrumented:
            return list(entries)
        results: List[Optional[MACSimResult]] = []
        merged = MetricsRegistry()
        for entry in entries:
            if entry is None:  # quarantine hole: keep it visible
                results.append(None)
                continue
            result, state = entry
            results.append(result)
            merged.merge_from(MetricsRegistry.from_dict(state))
        self.last_sim_metrics = merged
        self.metrics.merge_from(merged)
        return results

    # -- batch-aware scheduling ---------------------------------------------

    def _batchable(self, specs: Sequence[MACRunSpec]) -> bool:
        """Whether batched scheduling applies to this spec list."""
        if not self.batch or len(specs) < 2:
            return False
        if self.resilience is not None and self.resilience.verify_replay:
            # The audit's contract is per-cell recomputation of journaled
            # results; batched tasks would blur what was re-run.
            return False
        return any(batch_eligible(spec) for spec in specs)

    def _chunk_size(self, n_batchable: int) -> int:
        if self.batch_chunk is not None:
            return self.batch_chunk
        size = DEFAULT_BATCH_CHUNK
        if self.parallel:
            # Leave every worker something to chew on.
            per_worker = -(-n_batchable // self.workers)
            size = max(1, min(size, per_worker))
        return size

    def _chunks(
        self, indices: List[int], specs: Sequence[MACRunSpec]
    ) -> List[List[int]]:
        """Group same-arm replications, then slice into bounded chunks.

        Same-arm specs (identical but for the seed) become adjacent, so
        a chunk is usually one arm's seed cohort; trailing partial
        chunks pack heterogeneously — the kernel's lanes carry their own
        parameters, so mixed chunks cost nothing.
        """
        if not indices:
            return []
        groups: Dict[str, List[int]] = {}
        order: List[str] = []
        for index in indices:
            key = arm_key(specs[index])
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)
        ordered = [index for key in order for index in groups[key]]
        size = self._chunk_size(len(ordered))
        return [ordered[i : i + size] for i in range(0, len(ordered), size)]

    def _run_specs_batched(
        self, specs: List[MACRunSpec], instrumented: bool
    ) -> List[Optional[MACSimResult]]:
        n = len(specs)
        fps: Optional[List[str]] = None
        if self.resilience is not None:
            fps = [spec_fingerprint(spec, instrumented) for spec in specs]
        entries: List[Optional[Any]] = [None] * n

        # Per-spec journal replay *before* chunking, so resumed members
        # never re-run inside a batched task.  The fingerprints are the
        # same whether a spec ran batched or not, so a journal written
        # by either scheduling mode satisfies the other.
        replayed = 0
        if fps is not None and self.resilience.checkpoint is not None:
            if self.resilience.resume and not RunJournal.exists(
                self.resilience.checkpoint
            ):
                raise FileNotFoundError(
                    f"--resume: no journal at {self.resilience.checkpoint} "
                    "(pass --checkpoint alone to start one)"
                )
            journal = RunJournal(self.resilience.checkpoint)
            for index, fp in enumerate(fps):
                hit, value = journal.get(fp)
                if hit:
                    entries[index] = value
                    replayed += 1

        todo = [index for index in range(n) if entries[index] is None]
        singles = [k for k in todo if not batch_eligible(specs[k])]
        chunks = self._chunks(
            [k for k in todo if batch_eligible(specs[k])], specs
        )

        spec_kind = "spec+metrics" if instrumented else "spec"
        batch_kind = "batch+metrics" if instrumented else "batch"
        base_timeout = (
            self.resilience.task_timeout if self.resilience is not None else None
        )
        tasks: List[Tuple[str, Any]] = []
        task_fps: List[Optional[str]] = []
        task_subkeys: List[Optional[List[str]]] = []
        task_timeouts: List[Optional[float]] = []
        owners: List[List[int]] = []
        for k in singles:
            tasks.append((spec_kind, specs[k]))
            task_fps.append(fps[k] if fps is not None else None)
            task_subkeys.append(None)
            task_timeouts.append(None)
            owners.append([k])
        for chunk in chunks:
            if len(chunk) == 1:  # no cohort to amortise: plain task
                k = chunk[0]
                tasks.append((spec_kind, specs[k]))
                task_fps.append(fps[k] if fps is not None else None)
                task_subkeys.append(None)
                task_timeouts.append(None)
                owners.append([k])
                continue
            tasks.append((batch_kind, tuple(specs[k] for k in chunk)))
            task_fps.append(None)
            task_subkeys.append(
                [fps[k] for k in chunk] if fps is not None else None
            )
            task_timeouts.append(
                base_timeout * len(chunk) if base_timeout is not None else None
            )
            owners.append(list(chunk))

        outcome = SweepOutcome(results=[None] * n)
        outcome.replayed = replayed
        if tasks:
            engine_out = self._engine(len(tasks)).run(
                run_sweep_task, tasks, task_fps,
                subkeys=task_subkeys, timeouts=task_timeouts,
                sizes=[len(members) for members in owners],
                progress=self.progress,
            )
            outcome.retries = engine_out.retries
            outcome.timeouts = engine_out.timeouts
            outcome.pool_restarts = engine_out.pool_restarts
            holes = {record.index: record for record in engine_out.quarantined}
            for t_index, members in enumerate(owners):
                record = holes.get(t_index)
                if record is not None:
                    # A poisoned batched task holes *every* member — a
                    # visible partial grid, never a silent truncation.
                    suffix = (
                        ""
                        if len(members) == 1
                        else f" (member of a {len(members)}-spec batched task)"
                    )
                    for k in members:
                        outcome.quarantined.append(
                            QuarantineRecord(
                                index=k,
                                fingerprint=(
                                    fps[k] if fps is not None else None
                                ),
                                attempts=record.attempts,
                                reason=record.reason + suffix,
                            )
                        )
                    continue
                value = engine_out.results[t_index]
                if len(members) == 1 and tasks[t_index][0] == spec_kind:
                    entries[members[0]] = value
                else:
                    for offset, k in enumerate(members):
                        entries[k] = value[offset]
                outcome.executed += len(members)
        outcome.results = list(entries)
        self.last_outcome = outcome
        return self._fold_results(entries, instrumented)


# -- sequential replication scheduling ----------------------------------------


@dataclass(frozen=True)
class SequentialOptions:
    """Configuration for :func:`run_sequential`.

    The stopping-rule fields mirror
    :class:`~repro.stats.sequential.SequentialConfig` (and are validated
    by constructing one); the remaining fields steer seed derivation:

    Attributes
    ----------
    crn:
        Common random numbers — every arm reuses the *same*
        SeedSequence-derived seed for the same unit index, so arm deltas
        at equal index are paired and their variance drops by the
        (positive) covariance the shared draws induce.  ``False``
        derives one long seed list and slices it per arm (independent
        seeding).
    antithetic:
        Each observation unit becomes a *pair* of lanes at the same
        seed — one plain, one with the uniform stream mirrored
        (:class:`~repro.des.rng.AntitheticGenerator`) — and the unit's
        observation is the pair mean.  Halves the variance the t
        backend sees per unit when loss is monotone in the mirrored
        uniforms; the pooled-count backends see the extra lanes as
        extra trials.
    """

    ci_target: float
    level: float = 0.95
    wave_size: int = 4
    min_replications: int = 8
    max_replications: int = 64
    spending: str = "obf"
    method: str = "wilson"
    crn: bool = True
    antithetic: bool = False

    def __post_init__(self) -> None:
        self.config()  # delegate range validation to SequentialConfig

    def config(self) -> SequentialConfig:
        """The pure stopping rule this options bundle implies."""
        return SequentialConfig(
            ci_target=self.ci_target,
            level=self.level,
            wave_size=self.wave_size,
            min_replications=self.min_replications,
            max_replications=self.max_replications,
            spending=self.spending,
            method=self.method,
        )


@dataclass(frozen=True)
class SequentialEstimate:
    """Final per-arm estimate of a sequential sweep.

    ``half_width`` is the last look's half-width at its spending-
    corrected level; drivers that historically rendered ``loss ±
    2·stderr`` should pass ``stderr()`` so the rendered band *is* the
    realized interval.
    """

    label: str
    mean: float
    half_width: float
    level: float
    units: int
    lanes: int
    waves: int
    reason: str
    quarantined: int = 0
    decisions: Tuple[WaveDecision, ...] = ()

    def stderr(self) -> float:
        """Half-width rescaled to the ±2σ convention of the tables."""
        return self.half_width / 2.0


def sequential_decision_fingerprint(
    template: MACRunSpec,
    options: SequentialOptions,
    wave: int,
    base_seed: int = 1,
) -> str:
    """Journal key of one arm's wave decision.

    Content-addressed over the arm (seed-independent), the full stopping
    configuration (which carries the ``crn``/``antithetic`` derivation
    regime), the seed-derivation root, and the wave index: resuming with
    a different ``--ci-target``, spending shape, or ``--seed`` misses
    cleanly and re-decides instead of colliding with decisions taken
    under another rule or seeding regime.  ``base_seed`` defaults to 1,
    matching :func:`run_sequential`.
    """
    return fingerprint(
        ("sequential-decision", arm_key(template), options, base_seed, wave)
    )


def _unit_seeds(
    options: SequentialOptions, n_arms: int, base_seed: int
) -> List[List[int]]:
    """Per-arm unit seed lists (CRN: shared; independent: sliced)."""
    n = options.max_replications
    if options.crn:
        shared = derive_seeds(base_seed, n)
        return [list(shared) for _ in range(n_arms)]
    flat = derive_seeds(base_seed, n_arms * n)
    return [flat[i * n : (i + 1) * n] for i in range(n_arms)]


def _unit_specs(
    template: MACRunSpec, seed: int, antithetic: bool
) -> List[MACRunSpec]:
    """The lane specs of one observation unit.

    Templates carrying ``stream_seed`` (the robustness construction) get
    the unit seed there; plain templates get it as ``seed``.  With
    antithetic pairing the unit is two lanes at the same seed, mirrored
    and unmirrored.
    """
    if template.stream_seed is not None:
        plain = replace(template, stream_seed=seed, antithetic=False)
    else:
        plain = replace(template, seed=seed, antithetic=False)
    if not antithetic:
        return [plain]
    return [plain, replace(plain, antithetic=True)]


class _SequentialArm:
    """Mutable per-arm accumulation state for :func:`run_sequential`."""

    def __init__(self, index: int, label: str, template: MACRunSpec, seeds: List[int]):
        self.index = index
        self.label = label
        self.template = template
        self.seeds = seeds
        self.fractions: List[float] = []
        self.lost = 0
        self.resolved = 0
        self.units = 0          # units consumed (incl. quarantined)
        self.lanes = 0
        self.quarantined = 0
        self.previous_n = 0     # units at the previous look
        self.decisions: List[WaveDecision] = []
        self.stopped = False

    def absorb(self, unit_results: List[Optional[MACSimResult]]) -> None:
        """Fold one unit's lane results into the accumulated observations."""
        self.units += 1
        self.lanes += len(unit_results)
        usable = [r for r in unit_results if r is not None and r.resolved > 0]
        if len(usable) < len(unit_results):
            # A quarantined (or fully unresolved) lane poisons its whole
            # unit: an antithetic pair with one member missing is no
            # longer a pair, and a half-counted unit would bias the CRN
            # pairing across arms.  The lanes still count as spent.
            self.quarantined += 1
            return
        self.fractions.append(
            sum(r.loss_fraction for r in usable) / len(usable)
        )
        for r in usable:
            self.lost += r.delivered_late + r.discarded + r.lost_to_faults
            self.resolved += r.resolved


def _metric_label(label: str) -> str:
    """A metric-name-safe rendering of an arm label."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in label.lower()
    )
    while "--" in cleaned:
        cleaned = cleaned.replace("--", "-")
    return cleaned.strip("-")


def _record_decision(
    journal: Optional[RunJournal],
    template: MACRunSpec,
    options: SequentialOptions,
    decision: WaveDecision,
    verify: bool,
    base_seed: int,
) -> None:
    """Journal one wave decision; verify against an existing record.

    A decision is a pure function of the journaled lane results and the
    options, so a resumed run recomputes it bit-identically — a mismatch
    means the stopping rule (or the code behind it) changed under the
    journal, which must fail loudly rather than mix stopping regimes.
    """
    if journal is None:
        return
    fp = sequential_decision_fingerprint(template, options, decision.wave, base_seed)
    hit, recorded = journal.get(fp)
    payload = decision.to_dict()
    if hit:
        if recorded != payload and verify:
            raise JournalMismatchError(
                f"sequential wave decision diverged on replay at "
                f"{journal.record_path(fp)}: journaled "
                f"{value_digest(recorded)} != recomputed "
                f"{value_digest(payload)}"
            )
        return
    journal.record(fp, payload)


def run_sequential(
    arms: Sequence[Tuple[str, MACRunSpec]],
    options: SequentialOptions,
    executor: SweepExecutor,
    base_seed: int = 1,
) -> List[SequentialEstimate]:
    """Run labelled arms in waves until each meets the CI target.

    Each wave flattens every *unstopped* arm's next batch of observation
    units into one :meth:`SweepExecutor.run_specs` call, so the batched
    lane kernel amortises the wave across arms and same-arm cohorts
    exactly as fixed grids do — and journal/resume interop is inherited
    per lane.  After the wave, each arm takes a group-sequential look
    (:func:`repro.stats.sequential.decide_wave`); the decision is
    journaled under a content-addressed key so a resumed run provably
    stops at the identical wave.

    Returns one :class:`SequentialEstimate` per arm, in input order.
    """
    arms = list(arms)
    if not arms:
        return []
    config = options.config()
    seed_lists = _unit_seeds(options, len(arms), base_seed)
    states = [
        _SequentialArm(i, label, template, seed_lists[i])
        for i, (label, template) in enumerate(arms)
    ]

    journal: Optional[RunJournal] = None
    verify = False
    resilience = executor.resilience
    if resilience is not None and resilience.checkpoint is not None:
        journal = RunJournal(resilience.checkpoint)
        verify = resilience.verify_replay

    wave = 0
    while any(not s.stopped for s in states):
        wave += 1
        live = [s for s in states if not s.stopped]
        # Wave 1 ramps straight to the first permissible look.
        pending: List[Tuple[_SequentialArm, int]] = []
        for state in live:
            target = (
                config.min_replications
                if wave == 1
                else min(state.units + config.wave_size, config.max_replications)
            )
            for unit in range(state.units, target):
                pending.append((state, unit))
        if not pending:
            break

        specs: List[MACRunSpec] = []
        owners: List[Tuple[_SequentialArm, int, int]] = []  # (arm, unit, lanes)
        for state, unit in pending:
            unit_specs = _unit_specs(
                state.template, state.seeds[unit], options.antithetic
            )
            owners.append((state, unit, len(unit_specs)))
            specs.extend(unit_specs)

        results = executor.run_specs(specs)

        cursor = 0
        for state, _unit, n_lanes in owners:
            state.absorb(results[cursor : cursor + n_lanes])
            cursor += n_lanes

        for state in live:
            decision = decide_wave(
                config,
                wave=len(state.decisions) + 1,
                fractions=state.fractions,
                counts=(state.lost, state.resolved),
                previous_n=state.previous_n,
            )
            if not decision.stop and state.units >= config.max_replications:
                # Every seed consumed but quarantine holes kept the
                # usable count below max_replications: the arm stops
                # here, and the journaled decision must carry the real
                # cause instead of a dangling "continue".
                decision = replace(
                    decision, stop=True, reason="seed-budget-exhausted"
                )
            state.previous_n = decision.n
            state.decisions.append(decision)
            _record_decision(
                journal, state.template, options, decision, verify, base_seed
            )
            if decision.stop:
                state.stopped = True

    estimates: List[SequentialEstimate] = []
    metrics = executor.metrics
    total_lanes = 0
    for state in states:
        last = state.decisions[-1] if state.decisions else None
        estimate = SequentialEstimate(
            label=state.label,
            mean=last.mean if last else float("nan"),
            half_width=last.half_width if last else float("inf"),
            level=config.level,
            units=state.units - state.quarantined,
            lanes=state.lanes,
            waves=len(state.decisions),
            reason=last.reason if last else "no-data",
            quarantined=state.quarantined,
            decisions=tuple(state.decisions),
        )
        estimates.append(estimate)
        total_lanes += state.lanes
        if metrics is not None:
            prefix = f"stats.arm.{_metric_label(state.label)}"
            metrics.counter(f"{prefix}.lanes_spent", volatile=True).inc(
                state.lanes
            )
            metrics.gauge(f"{prefix}.stopping_wave", volatile=True).set(
                float(estimate.waves)
            )
            metrics.gauge(f"{prefix}.half_width", volatile=True).set(
                estimate.half_width
            )
    if metrics is not None:
        metrics.counter("stats.lanes_spent", volatile=True).inc(total_lanes)
        metrics.counter("stats.sequential_arms", volatile=True).inc(len(states))
    return estimates

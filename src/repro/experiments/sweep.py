"""Parallel sweep execution for simulation experiment grids.

Every sweep in this package — Figure 7's simulation arms, the ablation
benches, the sensitivity and robustness grids — reduces to the same
shape: a list of independent simulator runs, each fully described by a
small picklable spec, whose results are consumed in submission order.
:class:`SweepExecutor` owns that shape once:

* ``workers=None`` (or 1) runs inline — no subprocesses, no pickling
  requirements, bit-identical to the historical sequential loops;
* ``workers=N`` fans the specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
  batching.  Because every task carries its own seed and tasks share no
  state, the merged results are **independent of the worker count** —
  the determinism tests in ``tests/experiments/test_sweep.py`` hold the
  executor to that.

Seed discipline
---------------
A sweep must never derive task seeds from its worker layout.  Tasks
either carry explicit seeds (the historical grids pin them) or derive
them ahead of submission with :func:`derive_seeds`, which spawns
independent children from one ``SeedSequence`` — stable under
re-chunking, resumable, and collision-free by construction.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from ..core.policy import ControlPolicy
from ..des.rng import RandomStreams
from ..faults import FaultModel
from ..mac.simulator import MACSimResult, WindowMACSimulator

__all__ = ["MACRunSpec", "run_spec", "SweepExecutor", "derive_seeds"]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class MACRunSpec:
    """One simulator run, fully described and picklable.

    Attributes mirror :class:`~repro.mac.simulator.WindowMACSimulator`'s
    constructor plus the run horizon.  ``stream_seed`` (when given)
    builds the simulator with a :class:`~repro.des.rng.RandomStreams`
    family — the construction the robustness sweeps use — while ``seed``
    is the plain single-generator construction of the historical grids;
    the two draw differently, so specs must preserve whichever the
    call site historically used.
    """

    policy: ControlPolicy
    arrival_rate: float
    transmission_slots: int
    horizon: float
    warmup: float
    n_stations: int = 200
    deadline: Optional[float] = None
    loss_definition: str = "true"
    seed: int = 0
    stream_seed: Optional[int] = None
    workload: Optional[object] = None
    fault_model: Optional[FaultModel] = None
    fast: bool = True


def run_spec(spec: MACRunSpec) -> MACSimResult:
    """Execute one spec (module-level, so worker processes can import it)."""
    kwargs = dict(
        arrival_rate=spec.arrival_rate,
        transmission_slots=spec.transmission_slots,
        n_stations=spec.n_stations,
        deadline=spec.deadline,
        loss_definition=spec.loss_definition,
        workload=spec.workload,
        fault_model=spec.fault_model,
        fast=spec.fast,
    )
    if spec.stream_seed is not None:
        kwargs["streams"] = RandomStreams(spec.stream_seed)
    else:
        kwargs["seed"] = spec.seed
    simulator = WindowMACSimulator(spec.policy, **kwargs)
    return simulator.run(spec.horizon, warmup_slots=spec.warmup)


def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent seeds spawned deterministically from one root.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent and the list depends only on
    ``(base_seed, n)`` — never on worker count or chunking.
    """
    if n < 0:
        raise ValueError(f"need a non-negative count, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


class SweepExecutor:
    """Runs independent sweep tasks, inline or across worker processes.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` — run inline in submission order (no
        subprocesses; callables need not be picklable).  ``N > 1`` —
        fan out over a process pool; the mapped callable and every item
        must be picklable (module-level functions and frozen spec
        dataclasses qualify).
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers

    @property
    def parallel(self) -> bool:
        """Whether this executor fans out to worker processes."""
        return self.workers is not None and self.workers > 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving submission order.

        The parallel path chunks the task list so each worker receives a
        few large batches instead of thousands of tiny round trips.
        """
        items = list(items)
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        chunksize = max(1, math.ceil(len(items) / (self.workers * 4)))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    def run_specs(self, specs: Sequence[MACRunSpec]) -> List[MACSimResult]:
        """Run a list of :class:`MACRunSpec`, results in spec order."""
        return self.map(run_spec, specs)

"""Parallel sweep execution for simulation experiment grids.

Every sweep in this package — Figure 7's simulation arms, the ablation
benches, the sensitivity and robustness grids — reduces to the same
shape: a list of independent simulator runs, each fully described by a
small picklable spec, whose results are consumed in submission order.
:class:`SweepExecutor` owns that shape once:

* ``workers=None`` (or 1) runs inline — no subprocesses, no pickling
  requirements, bit-identical to the historical sequential loops;
* ``workers=N`` fans the specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
  batching.  Because every task carries its own seed and tasks share no
  state, the merged results are **independent of the worker count** —
  the determinism tests in ``tests/experiments/test_sweep.py`` hold the
  executor to that.

Seed discipline
---------------
A sweep must never derive task seeds from its worker layout.  Tasks
either carry explicit seeds (the historical grids pin them) or derive
them ahead of submission with :func:`derive_seeds`, which spawns
independent children from one ``SeedSequence`` — stable under
re-chunking, resumable, and collision-free by construction.

Crash tolerance
---------------
Both paths run under :class:`~repro.resilience.SupervisedExecutor`.
Without :class:`~repro.resilience.ResilienceOptions` the semantics are
strict (a task failure raises, as the historical loops did); with
options, the sweep checkpoints completed cells to a content-addressed
:class:`~repro.resilience.RunJournal`, retries transient failures on
fresh worker processes, survives ``BrokenProcessPool``, quarantines
poison specs, and resumes from the journal on re-invocation.  The
outcome of the last ``run_specs``/``map`` call (replay counts,
quarantine records) is kept on :attr:`SweepExecutor.last_outcome`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from ..core.policy import ControlPolicy
from ..des.rng import RandomStreams
from ..faults import FaultModel
from ..mac.simulator import MACSimResult, WindowMACSimulator
from ..obs.metrics import MetricsRegistry
from ..resilience import (
    ResilienceOptions,
    SupervisedExecutor,
    SweepOutcome,
    fingerprint,
)

__all__ = [
    "MACRunSpec",
    "run_spec",
    "run_spec_with_metrics",
    "spec_fingerprint",
    "SweepExecutor",
    "derive_seeds",
    "ResilienceOptions",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class MACRunSpec:
    """One simulator run, fully described and picklable.

    Attributes mirror :class:`~repro.mac.simulator.WindowMACSimulator`'s
    constructor plus the run horizon.  ``stream_seed`` (when given)
    builds the simulator with a :class:`~repro.des.rng.RandomStreams`
    family — the construction the robustness sweeps use — while ``seed``
    is the plain single-generator construction of the historical grids;
    the two draw differently, so specs must preserve whichever the
    call site historically used.
    """

    policy: ControlPolicy
    arrival_rate: float
    transmission_slots: int
    horizon: float
    warmup: float
    n_stations: int = 200
    deadline: Optional[float] = None
    loss_definition: str = "true"
    seed: int = 0
    stream_seed: Optional[int] = None
    workload: Optional[object] = None
    fault_model: Optional[FaultModel] = None
    fast: bool = True

    def __post_init__(self):
        # Bad grid parameters must fail here, at spec construction, with
        # a message naming the field — not deep inside a worker process
        # where the traceback points at simulator internals.
        if self.arrival_rate <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        if self.transmission_slots < 1:
            raise ValueError(
                f"transmission length must be >= 1 slot, "
                f"got {self.transmission_slots}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0 <= self.warmup < self.horizon:
            raise ValueError(
                f"warmup must satisfy 0 <= warmup < horizon, got "
                f"warmup={self.warmup} with horizon={self.horizon}"
            )
        if self.n_stations < 1:
            raise ValueError(
                f"need at least one station, got {self.n_stations}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")


def spec_fingerprint(spec: MACRunSpec, instrumented: bool = False) -> str:
    """Content-addressed identity of one run (the journal key).

    Depends only on the spec's fields — never on worker layout,
    submission order, or grid position — so a resumed, reordered or
    narrowed grid replays exactly the cells whose parameters match.
    ``instrumented`` runs journal ``(result, metrics)`` pairs, so they
    live in their own fingerprint namespace — a journal of plain results
    can never satisfy (or be corrupted by) a metrics-collecting resume.
    """
    tag = "mac-run-spec-with-metrics" if instrumented else "mac-run-spec"
    return fingerprint((tag, spec))


def _build_simulator(
    spec: MACRunSpec, metrics: Optional[MetricsRegistry] = None
) -> WindowMACSimulator:
    kwargs = dict(
        arrival_rate=spec.arrival_rate,
        transmission_slots=spec.transmission_slots,
        n_stations=spec.n_stations,
        deadline=spec.deadline,
        loss_definition=spec.loss_definition,
        workload=spec.workload,
        fault_model=spec.fault_model,
        fast=spec.fast,
        metrics=metrics,
    )
    if spec.stream_seed is not None:
        kwargs["streams"] = RandomStreams(spec.stream_seed)
    else:
        kwargs["seed"] = spec.seed
    return WindowMACSimulator(spec.policy, **kwargs)


def run_spec(spec: MACRunSpec) -> MACSimResult:
    """Execute one spec (module-level, so worker processes can import it)."""
    simulator = _build_simulator(spec)
    return simulator.run(spec.horizon, warmup_slots=spec.warmup)


def run_spec_with_metrics(spec: MACRunSpec):
    """Execute one spec under a fresh registry; returns ``(result, state)``.

    ``state`` is ``MetricsRegistry.to_dict()`` — plain picklable data, so
    the pair crosses the process-pool boundary (and the journal) without
    dragging metric objects along.  The registry is per-task, which is
    what makes the parent-side merge independent of worker count: merge
    in submission order and the layout cancels out.
    """
    registry = MetricsRegistry()
    simulator = _build_simulator(spec, metrics=registry)
    result = simulator.run(spec.horizon, warmup_slots=spec.warmup)
    return result, registry.to_dict()


def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` independent seeds spawned deterministically from one root.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the children are
    statistically independent and the list depends only on
    ``(base_seed, n)`` — never on worker count or chunking.
    """
    if n < 0:
        raise ValueError(f"need a non-negative count, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


class SweepExecutor:
    """Runs independent sweep tasks, inline or across worker processes.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` — run inline in submission order (no
        subprocesses; callables need not be picklable).  ``N > 1`` —
        fan out over a supervised process pool; the mapped callable and
        every item must be picklable (module-level functions and frozen
        spec dataclasses qualify).
    resilience:
        ``None`` (default) — strict semantics: no checkpoint, no retry,
        the first task failure raises.  A
        :class:`~repro.resilience.ResilienceOptions` — journal replay
        and checkpointing, per-task timeouts, bounded retry and
        quarantine; quarantined tasks leave ``None`` holes in the
        returned list and are reported on :attr:`last_outcome`.
    metrics:
        An enabled :class:`~repro.obs.metrics.MetricsRegistry` turns on
        instrumentation: executor-level counters (cells executed,
        retried, wall-clock histograms) land on this registry directly,
        and ``run_specs`` switches each task to
        :func:`run_spec_with_metrics` so per-run simulator metrics are
        collected in the workers, merged in submission order, and folded
        in here too.  ``None`` or a disabled registry costs nothing.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        resilience: Optional[ResilienceOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self.resilience = resilience
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        #: Outcome of the most recent ``run_specs``/``map`` call.
        self.last_outcome: Optional[SweepOutcome] = None
        #: Merged per-run simulator metrics of the last ``run_specs``
        #: call (worker-count invariant; ``None`` until an instrumented
        #: sweep has run).
        self.last_sim_metrics: Optional[MetricsRegistry] = None

    @property
    def parallel(self) -> bool:
        """Whether this executor fans out to worker processes."""
        return self.workers is not None and self.workers > 1

    def _engine(self, n_tasks: int) -> SupervisedExecutor:
        # A single task never justifies a pool (matches the historical
        # inline shortcut); the supervised inline path still journals.
        workers = self.workers if n_tasks > 1 else None
        return SupervisedExecutor(workers, self.resilience, metrics=self.metrics)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        fingerprints: Optional[Sequence[Optional[str]]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item, results in submission order.

        With resilience options, completed items are journaled under
        ``fingerprints`` (defaults to content hashes of
        ``(fn qualname, item)`` for picklable items) and quarantined
        items come back as ``None`` holes — check :attr:`last_outcome`.
        """
        items = list(items)
        if self.resilience is not None and fingerprints is None:
            try:
                fingerprints = [
                    fingerprint((fn.__module__, fn.__qualname__, item))
                    for item in items
                ]
            except (AttributeError, TypeError):
                fingerprints = None  # unfingerprintable: run without replay
        outcome = self._engine(len(items)).run(fn, items, fingerprints)
        self.last_outcome = outcome
        return outcome.results

    def run_specs(self, specs: Sequence[MACRunSpec]) -> List[MACSimResult]:
        """Run a list of :class:`MACRunSpec`, results in spec order.

        Under resilience options a quarantined spec leaves ``None`` at
        its index — callers must surface the hole (the experiment
        drivers mark it in their tables).

        With a registry attached, tasks run through
        :func:`run_spec_with_metrics`; per-run registries come back with
        the results and are merged **in submission order** (never
        completion order), so the merged metrics are identical for any
        worker count — the property the worker-invariance tests pin.
        """
        instrumented = self.metrics is not None
        fn = run_spec_with_metrics if instrumented else run_spec
        fingerprints = None
        if self.resilience is not None:
            fingerprints = [spec_fingerprint(spec, instrumented) for spec in specs]
        outcome = self._engine(len(specs)).run(fn, list(specs), fingerprints)
        self.last_outcome = outcome
        if not instrumented:
            return outcome.results
        results: List[Optional[MACSimResult]] = []
        merged = MetricsRegistry()
        for entry in outcome.results:
            if entry is None:  # quarantine hole: keep it visible
                results.append(None)
                continue
            result, state = entry
            results.append(result)
            merged.merge_from(MetricsRegistry.from_dict(state))
        self.last_sim_metrics = merged
        self.metrics.merge_from(merged)
        return results

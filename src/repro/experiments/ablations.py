"""Ablation experiments for the design choices DESIGN.md calls out.

* **A-EL4** — policy element 4 (sender discard): the §4.2 discussion
  attributes most of the controlled protocol's win to never spending
  channel time on messages that are already late.  Compares the full
  controlled protocol against the identical policy with discards
  disabled, at equal (ρ′, M, K).
* **A-WIN** — policy element 2 (window length): sweeps the window
  occupancy around the heuristic optimum μ*, both analytically (mean
  scheduling slots → loss via eq. 4.7) and in simulation.
* **A-SPLIT** — policy element 3: older-half-first versus
  newer-half-first versus random under the controlled protocol.
* **A-ARITY** — §5 extension: binary versus k-ary splitting.
* **A-FIT** — the [Kurose 83] two-endpoint scheduling-time fit versus
  the exact recursion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.policy import ControlPolicy, OccupancyLength, OldestFirstPosition
from ..crp.scheduling_time import ExactSchedulingModel, mean_scheduling_slots
from ..crp.twopoint import fit_two_point
from ..mac.simulator import MACSimResult
from ..obs import tracing as trace
from ..queueing.impatient import ImpatientMG1
from .records import ascii_table
from .sweep import MACRunSpec, SequentialOptions, SweepExecutor, run_sequential

__all__ = [
    "AblationArm",
    "element4_ablation",
    "window_length_ablation",
    "split_rule_ablation",
    "arity_ablation",
    "twopoint_fit_errors",
]


@dataclass(frozen=True)
class AblationArm:
    """One arm of an ablation: a label and its measured loss."""

    label: str
    loss: float
    stderr: Optional[float] = None

    def row(self) -> list:
        """Table row representation."""
        cell = f"{self.loss:.4f}"
        if self.stderr is not None:
            cell += f" ± {2 * self.stderr:.4f}"
        return [self.label, cell]


def _spec(
    policy: ControlPolicy, lam, m, deadline, horizon, warmup, seed,
    backend=None,
) -> MACRunSpec:
    return MACRunSpec(
        policy=policy, arrival_rate=lam, transmission_slots=m, horizon=horizon,
        warmup=warmup, deadline=deadline, seed=seed, backend=backend,
    )


def _arms_from(
    labels, specs, workers, resilience=None, metrics=None, batch=True,
    sequential: Optional[SequentialOptions] = None,
) -> "List[AblationArm]":
    """Run the arm specs through the sweep executor and wrap the losses.

    A quarantined arm (resilience options with a poison spec) comes back
    as an explicit ``NaN`` arm labelled ``[quarantined]`` — the table
    keeps its shape and the hole is visible, never silently dropped.

    With ``sequential`` options, each spec becomes an adaptive-
    replication arm (the spec's own seed roots the unit seed
    derivation; CRN pairs the arms unit-for-unit) and the arm's stderr
    renders the realized CI half-width.
    """
    executor = SweepExecutor(workers, resilience, metrics=metrics, batch=batch)
    if sequential is not None:
        base_seed = specs[0].seed if specs else 1
        with trace.span("ablation.sequential", cells=len(specs)):
            estimates = run_sequential(
                list(zip(labels, specs)), sequential, executor,
                base_seed=base_seed,
            )
        return [
            AblationArm(
                label=(
                    f"{est.label} [quarantined]" if est.units == 0 else est.label
                ),
                loss=est.mean if est.units else math.nan,
                stderr=est.stderr() if est.units else None,
            )
            for est in estimates
        ]
    with trace.span("ablation.sweep", cells=len(specs)):
        results: List[Optional[MACSimResult]] = executor.run_specs(specs)
    arms = []
    for label, r in zip(labels, results):
        if r is None:
            arms.append(AblationArm(label=f"{label} [quarantined]", loss=math.nan))
        else:
            arms.append(
                AblationArm(label=label, loss=r.loss_fraction, stderr=r.loss_stderr())
            )
    return arms


def element4_ablation(
    rho_prime: float = 0.75,
    message_length: int = 25,
    deadline: float = 75.0,
    horizon: float = 150_000.0,
    warmup: float = 20_000.0,
    seed: int = 5,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Controlled protocol with and without the sender discard (A-EL4)."""
    lam = rho_prime / message_length
    with_discard = ControlPolicy.optimal(deadline, lam)
    without_discard = replace(with_discard, discard_deadline=None, name="no_discard")
    policies = (with_discard, without_discard)
    return _arms_from(
        [policy.name for policy in policies],
        [
            _spec(policy, lam, message_length, deadline, horizon, warmup, seed,
                  backend)
            for policy in policies
        ],
        workers,
        resilience,
        metrics,
        batch,
        sequential,
    )


def window_length_ablation(
    occupancies: Sequence[float] = (0.25, 0.5, 1.0886, 2.0, 4.0),
    rho_prime: float = 0.75,
    message_length: int = 25,
    deadline: float = 75.0,
    simulate: bool = False,
    horizon: float = 120_000.0,
    warmup: float = 15_000.0,
    seed: int = 6,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Loss versus window occupancy around the heuristic optimum (A-WIN).

    The analytic arm feeds each occupancy's exact scheduling law into
    eq. 4.7; the optional simulation arm runs the MAC simulator with the
    corresponding window length.
    """
    lam = rho_prime / message_length
    labels = [
        f"mu={occupancy:g} (E[T]={mean_scheduling_slots(occupancy):.2f})"
        for occupancy in occupancies
    ]
    if simulate:
        specs = [
            _spec(
                ControlPolicy(
                    position=OldestFirstPosition(),
                    length=OccupancyLength(lam, occupancy),
                    split="older",
                    discard_deadline=deadline,
                    name=f"controlled_mu_{occupancy:g}",
                ),
                lam, message_length, deadline, horizon, warmup, seed,
                backend,
            )
            for occupancy in occupancies
        ]
        return _arms_from(labels, specs, workers, resilience, metrics, batch,
                          sequential)
    arms = []
    for label, occupancy in zip(labels, occupancies):
        service = ExactSchedulingModel(message_length, occupancy).service_pmf()
        analytic = ImpatientMG1(lam, service, deadline).loss_probability()
        arms.append(AblationArm(label=label, loss=analytic))
    return arms


def split_rule_ablation(
    rho_prime: float = 0.75,
    message_length: int = 25,
    deadline: float = 75.0,
    horizon: float = 150_000.0,
    warmup: float = 20_000.0,
    seed: int = 7,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Split-order comparison under the controlled protocol (A-SPLIT)."""
    lam = rho_prime / message_length
    base = ControlPolicy.optimal(deadline, lam)
    splits = ("older", "newer", "random")
    return _arms_from(
        list(splits),
        [
            _spec(
                replace(base, split=split, name=f"split_{split}"),
                lam, message_length, deadline, horizon, warmup, seed,
                backend,
            )
            for split in splits
        ],
        workers,
        resilience,
        metrics,
        batch,
        sequential,
    )


def arity_ablation(
    arities: Sequence[int] = (2, 3, 4),
    rho_prime: float = 0.75,
    message_length: int = 25,
    deadline: float = 75.0,
    horizon: float = 150_000.0,
    warmup: float = 20_000.0,
    seed: int = 8,
    workers: Optional[int] = None,
    resilience=None,
    metrics=None,
    batch: bool = True,
    backend: Optional[str] = None,
    sequential: Optional[SequentialOptions] = None,
) -> List[AblationArm]:
    """Binary versus k-ary window splitting (§5 extension, A-ARITY)."""
    lam = rho_prime / message_length
    base = ControlPolicy.optimal(deadline, lam)
    return _arms_from(
        [f"arity {arity}" for arity in arities],
        [
            _spec(
                replace(base, split_arity=arity, name=f"arity_{arity}"),
                lam, message_length, deadline, horizon, warmup, seed,
                backend,
            )
            for arity in arities
        ],
        workers,
        resilience,
        metrics,
        batch,
        sequential,
    )


def twopoint_fit_errors(
    mu_low: float = 0.7,
    mu_high: float = 2.5,
    probes: Sequence[float] = (0.9, 1.0886, 1.3, 1.7, 2.1),
) -> str:
    """Relative error of the [Kurose 83] endpoint fit vs the exact law (A-FIT).

    The default endpoints bracket the protocol's realistic operating
    range around μ* (E[T](μ) is non-monotone, so endpoints far outside
    that range make *any* two-point fit hopeless — an observation worth
    keeping in mind when reading [Kurose 83]'s approximation)."""
    rows = []
    for kind in ("linear", "exponential"):
        fit = fit_two_point(mu_low, mu_high, kind=kind)
        for mu in probes:
            rows.append(
                [kind, f"{mu:g}", f"{mean_scheduling_slots(mu):.4f}",
                 f"{fit.mean_scheduling(mu):.4f}", f"{fit.relative_error(mu):.2%}"]
            )
    return ascii_table(
        ["fit", "mu", "exact E[T]", "fitted E[T]", "rel. error"], rows,
        title=f"Two-endpoint fit ({mu_low:g}..{mu_high:g}) vs exact recursion",
    )


def ablation_table(arms: List[AblationArm], title: str) -> str:
    """Render a list of arms as a table."""
    return ascii_table(["arm", "loss"], [arm.row() for arm in arms], title=title)

"""Result records and plain-text rendering for the experiment harness.

The paper's evaluation is a set of curves (Figure 7); the harness
produces them as :class:`Series` of (K, loss) points grouped into
:class:`PanelResult` objects, renderable as aligned ASCII tables and CSV
(no plotting dependencies are available offline).
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SeriesPoint", "Series", "PanelResult", "ascii_table"]


@dataclass(frozen=True)
class SeriesPoint:
    """One (deadline, loss) point, with optional simulation error bar."""

    deadline: float
    loss: float
    stderr: Optional[float] = None


@dataclass
class Series:
    """A named loss-vs-deadline curve."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, deadline: float, loss: float, stderr: Optional[float] = None) -> None:
        """Append a point (deadlines should be added in increasing order)."""
        self.points.append(SeriesPoint(deadline, loss, stderr))

    def deadlines(self) -> List[float]:
        """The K values of the curve."""
        return [p.deadline for p in self.points]

    def losses(self) -> List[float]:
        """The loss values of the curve."""
        return [p.loss for p in self.points]

    def loss_at(self, deadline: float) -> float:
        """Loss at an exact deadline present in the curve."""
        for point in self.points:
            if math.isclose(point.deadline, deadline):
                return point.loss
        raise KeyError(f"series {self.name!r} has no point at K = {deadline}")


@dataclass
class PanelResult:
    """All curves of one Figure 7 panel (one (ρ′, M) pair).

    ``notes`` carries explicit annotations about the panel's integrity —
    quarantined simulation cells, journal replay counts — rendered at
    the foot of both the table and the CSV so a degraded (partial) grid
    can never pass for a complete one.
    """

    rho_prime: float
    message_length: int
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def title(self) -> str:
        """Panel heading matching the paper's labels."""
        return f"rho' = {self.rho_prime:.2f}, M = {self.message_length}"

    def add_series(self, series: Series) -> None:
        """Attach a curve to the panel."""
        if series.name in self.series:
            raise ValueError(f"duplicate series {series.name!r}")
        self.series[series.name] = series

    def _deadline_grid(self) -> List[float]:
        """The sorted union of every series' deadlines.

        Series may use different grids (simulation arms are typically
        sparser than the analytic ones); missing cells render blank.
        """
        grid = sorted({p.deadline for s in self.series.values() for p in s.points})
        return grid

    def to_table(self) -> str:
        """Render the panel as an aligned text table."""
        names = list(self.series)
        lookup = {
            name: {p.deadline: p for p in series.points}
            for name, series in self.series.items()
        }
        rows = []
        for deadline in self._deadline_grid():
            row = [f"{deadline:g}"]
            for name in names:
                point = lookup[name].get(deadline)
                if point is None:
                    row.append("")
                    continue
                cell = f"{point.loss:.4f}"
                if point.stderr is not None:
                    cell += f"±{2 * point.stderr:.4f}"
                row.append(cell)
            rows.append(row)
        table = ascii_table(["K"] + names, rows, title=self.title)
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table

    def to_csv(self) -> str:
        """Render the panel as CSV (one row per deadline in the union grid)."""
        names = list(self.series)
        lookup = {
            name: {p.deadline: p for p in series.points}
            for name, series in self.series.items()
        }
        out = io.StringIO()
        out.write("deadline," + ",".join(names) + "\n")
        for deadline in self._deadline_grid():
            cells = []
            for name in names:
                point = lookup[name].get(deadline)
                cells.append("" if point is None else f"{point.loss:.6g}")
            out.write(f"{deadline:g}," + ",".join(cells) + "\n")
        for note in self.notes:
            out.write(f"# note: {note}\n")
        return out.getvalue()


def ascii_table(
    header: Sequence[str], rows: Sequence[Sequence[str]], title: Optional[str] = None
) -> str:
    """Render rows as an aligned monospace table."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must match the header width")
    widths = [
        max(len(str(header[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[c]) for c, h in enumerate(header)))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[c]) for c, cell in enumerate(row)))
    return "\n".join(lines)

"""Replication control for simulation experiments.

Simulation points in Figure 7 (and the ablations) are noisy; this module
runs independent replications with derived seeds and reduces them to a
mean with a t-confidence interval.  Replications fan out through
:class:`~repro.experiments.sweep.SweepExecutor`, so callers opt into
process-level parallelism by passing an executor (or a worker count)
without changing the statistics: the seed list depends only on
``(base_seed, n_replications)``, never on the worker layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..stats.intervals import ConfidenceInterval, t_interval
from .sweep import SweepExecutor

__all__ = ["ReplicationResult", "replicate"]


@dataclass(frozen=True)
class ReplicationResult:
    """Replicated estimate of a scalar simulation output."""

    values: tuple
    interval: ConfidenceInterval

    @property
    def mean(self) -> float:
        """Replication mean."""
        return self.interval.mean


def replicate(
    run: Callable[[int], float],
    n_replications: int = 5,
    base_seed: int = 1000,
    level: float = 0.95,
    executor: Optional[Union[SweepExecutor, int]] = None,
) -> ReplicationResult:
    """Run ``run(seed)`` for derived seeds and form a t-interval.

    Parameters
    ----------
    run:
        Maps a seed to a scalar estimate (e.g. a loss fraction).  With a
        parallel executor, ``run`` must be picklable (a module-level
        function or functools.partial of one — not a lambda).
    n_replications:
        Independent runs (>= 2 for an interval).
    base_seed:
        Seeds are ``base_seed + 7919 * i`` (a prime stride keeps seeds
        well separated even for sequential experiment grids).
    executor:
        A :class:`SweepExecutor` (or a plain worker count) to fan the
        replications out; ``None`` runs them inline.  The values are
        identical either way.
    """
    if n_replications < 2:
        raise ValueError(f"need at least two replications, got {n_replications}")
    if executor is None:
        executor = SweepExecutor()
    elif isinstance(executor, int):
        executor = SweepExecutor(executor)
    seeds = [base_seed + 7919 * i for i in range(n_replications)]
    values: List[float] = executor.map(run, seeds)
    outcome = getattr(executor, "last_outcome", None)
    if outcome is not None and outcome.quarantined:
        # A t-interval over a grid with holes is statistically
        # meaningless — unlike a sweep table there is no way to "mark"
        # the hole, so a lost replication is a hard error.
        details = "; ".join(q.describe() for q in outcome.quarantined)
        raise RuntimeError(
            f"{len(outcome.quarantined)} replication(s) quarantined — "
            f"cannot form a confidence interval: {details}"
        )
    return ReplicationResult(values=tuple(values), interval=t_interval(values, level))

"""Numerical verification of Theorem 1 (experiment E-T1).

Theorem 1 states that *within the family {Pʷ} of policies sharing the
same window-length rule*, placing the initial window at the oldest
instant not exceeding K in the past (element 1) and always taking the
older half first (element 3) minimises message loss — and that this
choice is independent of the length rule (element 2).

The experiment checks this three ways:

1. **Exhaustive evaluation** — for a small-K SMDP, every
   (position, split) combination in {Pʷ} is evaluated through the
   Appendix-A equations; the minimum-slack policy must attain the lowest
   gain (average pseudo-loss rate).
2. **Policy iteration** — started from the worst member of {Pʷ}, Howard
   iteration must terminate at a policy using the oldest placement and
   older-first split in every state (ties allowed where the window spans
   the whole backlog).
3. **Monte-Carlo pseudo-time simulation** — the loss ranking of
   placement/split variants is reproduced on exact sample paths, free of
   the SMDP's Assumption-1 approximation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cache import get_or_compute
from ..smdp.model import SMDP
from ..smdp.policy_iteration import evaluate_policy, policy_iteration
from ..smdp.protocol_model import (
    NEWER,
    OLDER,
    WAIT,
    build_protocol_smdp,
    pseudo_loss_fraction,
)
from ..smdp.pseudo_sim import make_window_policy, simulate_pseudo_protocol
from ..obs import tracing as trace
from .records import ascii_table

__all__ = [
    "Theorem1Config",
    "PolicyVariantResult",
    "enumerate_policy_family",
    "run_theorem1_experiment",
    "Theorem1Report",
]


@dataclass(frozen=True)
class Theorem1Config:
    """Parameters of the Theorem 1 verification.

    Small K keeps the exhaustive sweep tractable (the paper's point that
    the decision model is "too computationally expensive to be of
    practical use" is about realistic K).
    """

    arrival_rate: float = 0.15
    deadline: int = 10
    transmission: int = 4
    window_length: int = 4  # the shared element 2 of the {P^w} family
    depth: int = 8


@dataclass(frozen=True)
class PolicyVariantResult:
    """Evaluated loss of one (placement, split) member of {Pʷ}."""

    placement: str
    split: str
    loss: float


def _family_policy(
    model: SMDP, window_length: int, placement: str, split: str
) -> Dict:
    """Build the {Pʷ} member with the given placement and split."""
    policy = {}
    for state in model.states():
        if state == 0:
            policy[state] = WAIT
            continue
        w = min(window_length, state)
        slack = state - w
        if placement == "oldest":
            offset = slack
        elif placement == "newest":
            offset = 0
        elif placement == "middle":
            offset = slack // 2
        else:
            raise ValueError(f"unknown placement: {placement!r}")
        policy[state] = ("win", w, offset, split)
    return policy


def enumerate_policy_family(
    model: SMDP, config: Theorem1Config
) -> List[PolicyVariantResult]:
    """Evaluate every (placement, split) member of {Pʷ} via eq. A1."""
    results = []
    for placement, split in itertools.product(
        ("oldest", "middle", "newest"), (OLDER, NEWER)
    ):
        policy = _family_policy(model, config.window_length, placement, split)
        evaluation = evaluate_policy(model, policy)
        results.append(
            PolicyVariantResult(
                placement=placement,
                split=split,
                loss=pseudo_loss_fraction(evaluation.gain, config.arrival_rate),
            )
        )
    return sorted(results, key=lambda r: r.loss)


@dataclass
class Theorem1Report:
    """Everything the E-T1 bench prints."""

    config: Theorem1Config
    family: List[PolicyVariantResult]
    optimal_gain_loss: float
    iteration_policy: Dict
    simulated: Optional[List[PolicyVariantResult]] = None

    @property
    def best_variant(self) -> PolicyVariantResult:
        """The family member with the lowest analytic loss."""
        return self.family[0]

    def minimum_slack_is_best(self) -> bool:
        """Whether (oldest, older) won the exhaustive sweep."""
        best = self.best_variant
        return best.placement == "oldest" and best.split == OLDER

    def iteration_uses_theorem_elements(self) -> bool:
        """Whether policy iteration's fixed point obeys Theorem 1.

        For every state with a window action, the window's old edge must
        touch the oldest backlog (offset + length = state).  The split
        order is checked only when it matters (window shorter than the
        backlog — otherwise both orders resolve the same content and tie).
        """
        for state, label in self.iteration_policy.items():
            if label == WAIT:
                continue
            _, length, offset, split = label
            if offset + length != state:
                return False
            if length < state and split != OLDER:
                return False
        return True

    def to_table(self) -> str:
        """Render the family sweep as text."""
        rows = [
            [r.placement, r.split, f"{r.loss:.6f}"] for r in self.family
        ]
        text = ascii_table(
            ["placement", "split", "pseudo-loss"], rows,
            title=(
                f"Theorem 1 sweep (K={self.config.deadline}, "
                f"M={self.config.transmission}, w={self.config.window_length}, "
                f"lambda={self.config.arrival_rate})"
            ),
        )
        if self.simulated:
            sim_rows = [
                [r.placement, r.split, f"{r.loss:.6f}"] for r in self.simulated
            ]
            text += "\n" + ascii_table(
                ["placement", "split", "simulated loss"], sim_rows,
                title="Monte-Carlo pseudo-time cross-check",
            )
        return text


def run_theorem1_experiment(
    config: Theorem1Config = Theorem1Config(),
    simulate: bool = False,
    sim_horizon: float = 300_000.0,
    sim_seed: int = 11,
) -> Theorem1Report:
    """Run the full E-T1 experiment (see module docstring)."""
    model = build_protocol_smdp(
        config.arrival_rate,
        config.deadline,
        config.transmission,
        window_lengths=lambda i: [min(config.window_length, i)],
        positions="endpoints",
        depth=config.depth,
    )
    with trace.span(
        "theorem1.family",
        K=config.deadline,
        w=config.window_length,
    ):
        family = enumerate_policy_family(model, config)

    worst = _family_policy(
        model, config.window_length, family[-1].placement, family[-1].split
    )
    # Howard iteration is a pure function of (config, starting member);
    # repeated bench/CLI invocations read the solution from the memo.
    with trace.span("theorem1.policy_iteration", K=config.deadline):
        iteration = get_or_compute(
            "theorem1-policy-iteration-v1",
            (
                config.arrival_rate,
                config.deadline,
                config.transmission,
                config.window_length,
                config.depth,
                family[-1].placement,
                family[-1].split,
            ),
            lambda: policy_iteration(model, worst),
        )

    simulated = None
    if simulate:
        simulated = []
        for placement, split in itertools.product(
            ("oldest", "newest"), ("older", "newer")
        ):
            rng = np.random.default_rng(sim_seed)
            policy = make_window_policy(
                float(config.window_length), placement=placement, split=split
            )
            run = simulate_pseudo_protocol(
                config.arrival_rate,
                float(config.deadline),
                config.transmission,
                policy,
                horizon_slots=sim_horizon,
                rng=rng,
                warmup_slots=sim_horizon * 0.05,
            )
            simulated.append(
                PolicyVariantResult(placement=placement, split=split, loss=run.loss_fraction)
            )
        simulated.sort(key=lambda r: r.loss)

    return Theorem1Report(
        config=config,
        family=family,
        optimal_gain_loss=pseudo_loss_fraction(iteration.gain, config.arrival_rate),
        iteration_policy=iteration.policy,
        simulated=simulated,
    )

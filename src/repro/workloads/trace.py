"""Trace-replay workload.

The paper's applications come with real traffic (voice frames, sensor
telemetry).  When a captured trace is available, :class:`TraceWorkload`
replays it through the simulator; traces round-trip through a simple
two-column CSV (`time,station`) so experiments are shareable.  Traces
longer than the simulated horizon are truncated; shorter ones can
optionally be tiled periodically.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .arrivals import Workload

__all__ = ["TraceWorkload"]


@dataclass(frozen=True)
class TraceWorkload(Workload):
    """Replay a fixed sequence of (time, station) arrivals.

    Parameters
    ----------
    times:
        Arrival instants in τ-slot units, sorted ascending.
    stations:
        Originating station per arrival (wrapped modulo the simulated
        station count at generation time).
    tile:
        When true, repeat the trace with its own duration as the period
        to fill any horizon; otherwise arrivals beyond the trace end are
        simply absent.
    """

    times: Tuple[float, ...]
    stations: Tuple[int, ...]
    tile: bool = False

    def __post_init__(self):
        if len(self.times) != len(self.stations):
            raise ValueError("times and stations must have equal length")
        if not self.times:
            raise ValueError("a trace needs at least one arrival")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("trace times must be sorted ascending")
        if self.times[0] < 0:
            raise ValueError("trace times must be non-negative")
        if any(s < 0 for s in self.stations):
            raise ValueError("station ids must be non-negative")

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_arrays(cls, times, stations, tile: bool = False) -> "TraceWorkload":
        """Build from array-likes."""
        return cls(
            times=tuple(float(t) for t in times),
            stations=tuple(int(s) for s in stations),
            tile=tile,
        )

    @classmethod
    def from_csv(cls, source: Union[str, Path, io.TextIOBase],
                 tile: bool = False) -> "TraceWorkload":
        """Load a `time,station` CSV (header optional)."""
        if isinstance(source, (str, Path)):
            text = Path(source).read_text()
        else:
            text = source.read()
        times = []
        stations = []
        for line_number, line in enumerate(text.strip().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            cells = line.split(",")
            if len(cells) != 2:
                raise ValueError(f"line {line_number}: expected 'time,station'")
            if line_number == 1 and not _is_number(cells[0]):
                continue  # header row
            times.append(float(cells[0]))
            stations.append(int(cells[1]))
        return cls.from_arrays(times, stations, tile=tile)

    def to_csv(self) -> str:
        """Serialise as a `time,station` CSV with header."""
        out = io.StringIO()
        out.write("time,station\n")
        for t, s in zip(self.times, self.stations):
            out.write(f"{t:.9g},{s}\n")
        return out.getvalue()

    # -- Workload interface -------------------------------------------------------

    @property
    def duration(self) -> float:
        """Trace span used as the tiling period (last arrival + one gap)."""
        if len(self.times) > 1:
            mean_gap = (self.times[-1] - self.times[0]) / (len(self.times) - 1)
        else:
            mean_gap = max(self.times[0], 1.0)
        return self.times[-1] + mean_gap

    @property
    def mean_rate(self) -> float:
        return len(self.times) / self.duration

    def generate(self, horizon, n_stations, rng):
        del rng  # replay is deterministic
        times = np.asarray(self.times)
        stations = np.asarray(self.stations) % n_stations
        if not self.tile:
            keep = times < horizon
            return times[keep], stations[keep]
        period = self.duration
        reps = int(np.ceil(horizon / period))
        tiled_t = np.concatenate([times + k * period for k in range(reps)])
        tiled_s = np.concatenate([stations] * reps)
        keep = tiled_t < horizon
        return tiled_t[keep], tiled_s[keep]


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True

"""Nonstationary arrival generators that stress the eq. 4.7 analysis.

The paper's delay/loss model assumes stationary network-wide Poisson
arrivals.  Its motivating applications do not behave that way: voice and
sensor traffic is bursty, loads follow daily cycles, and contention
resolution is known to degrade under adversarial injection (Hradovich et
al., arXiv:1808.02216).  The generators here open that scenario axis —
each keeps the :class:`~repro.workloads.arrivals.Workload` contract
(sorted times in ``[0, horizon)``, uniform-ish station assignment, an
honest :attr:`mean_rate`) so every kernel consumes them unchanged, and
:mod:`repro.experiments.validity` can map where the 1983 analysis holds
and where it breaks.

Families
--------
* :class:`HeavyTailedWorkload` — renewal process with Pareto (Lomax) or
  Weibull interarrival gaps: same mean rate as Poisson, far heavier
  tail / burstier clumping.
* :class:`DiurnalWorkload` — inhomogeneous Poisson with a sinusoidal
  ρ'(t) day/night cycle.
* :class:`FlashCrowdWorkload` — recurring trapezoidal ramp-up / hold /
  ramp-down rate surges over a quiet baseline.
* :class:`AdversarialWorkload` — synchronized batch injection at fixed
  intervals (the worst case for a window protocol: simultaneous arrivals
  guarantee collisions) over optional Poisson background.

The time-varying families share :func:`thin_inhomogeneous`, a
Lewis–Shedler thinning sampler with a fixed draw order (candidate count,
candidate times, acceptance uniforms, station labels) so same-seed runs
are reproducible bit for bit on every backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from .arrivals import Workload

__all__ = [
    "HeavyTailedWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "AdversarialWorkload",
    "thin_inhomogeneous",
]


def thin_inhomogeneous(
    rate_fn: Callable[[np.ndarray], np.ndarray],
    peak_rate: float,
    horizon: float,
    n_stations: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample an inhomogeneous Poisson process by thinning.

    ``rate_fn`` must be vectorised and satisfy ``rate_fn(t) <= peak_rate``
    for all ``t`` in ``[0, horizon)``; candidates are drawn at the peak
    rate and kept with probability ``rate_fn(t) / peak_rate``.
    """
    n = rng.poisson(peak_rate * horizon)
    candidates = np.sort(rng.uniform(0.0, horizon, size=n))
    accepted = rng.random(n) * peak_rate < rate_fn(candidates)
    times = candidates[accepted]
    stations = rng.integers(0, n_stations, size=times.size)
    return times, stations


@dataclass(frozen=True)
class HeavyTailedWorkload(Workload):
    """Renewal arrivals with heavy-tailed interarrival gaps.

    ``family="pareto"`` uses Lomax gaps (``shape > 1`` so the mean
    exists; ``shape < 2`` gives infinite variance — the regime where
    long quiet stretches alternate with dense clumps).  ``family=
    "weibull"`` with ``shape < 1`` gives a stretched-exponential tail;
    ``shape = 1`` degenerates to Poisson.  The scale is solved so the
    long-run rate equals ``rate`` exactly.
    """

    rate: float
    shape: float = 1.5
    family: str = "pareto"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.family not in ("pareto", "weibull"):
            raise ValueError(
                f"unknown interarrival family: {self.family!r} "
                "(expected 'pareto' or 'weibull')"
            )
        if self.family == "pareto" and self.shape <= 1.0:
            raise ValueError(
                f"pareto shape must exceed 1 for a finite mean, got {self.shape}"
            )
        if self.family == "weibull" and self.shape <= 0.0:
            raise ValueError(f"weibull shape must be positive, got {self.shape}")

    @property
    def mean_rate(self) -> float:
        return self.rate

    @property
    def _gap_scale(self) -> float:
        # Mean gap 1/rate: Lomax mean = scale/(shape-1); Weibull mean =
        # scale * Gamma(1 + 1/shape).
        if self.family == "pareto":
            return (self.shape - 1.0) / self.rate
        return 1.0 / (self.rate * math.gamma(1.0 + 1.0 / self.shape))

    def generate(self, horizon, n_stations, rng):
        scale = self._gap_scale
        expected = self.rate * horizon
        chunk = max(64, int(expected + 4.0 * math.sqrt(expected + 1.0)))
        pieces = []
        clock = 0.0
        while clock < horizon:
            if self.family == "pareto":
                gaps = rng.pareto(self.shape, size=chunk)
            else:
                gaps = rng.weibull(self.shape, size=chunk)
            block = clock + np.cumsum(gaps * scale)
            pieces.append(block)
            clock = float(block[-1])
        times = np.concatenate(pieces)
        times = times[times < horizon]
        stations = rng.integers(0, n_stations, size=times.size)
        return times, stations


@dataclass(frozen=True)
class DiurnalWorkload(Workload):
    """Inhomogeneous Poisson with a sinusoidal daily load cycle.

    Instantaneous rate ``rate * (1 + amplitude * sin(2π t / period +
    phase))``; ``amplitude`` in ``[0, 1]`` keeps it non-negative, and
    the long-run mean over whole periods is exactly ``rate``.
    """

    rate: float
    period: float
    amplitude: float = 0.5
    phase: float = 0.0

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(
                f"amplitude must lie in [0, 1], got {self.amplitude}"
            )

    @property
    def mean_rate(self) -> float:
        return self.rate

    def rate_at(self, t):
        """Instantaneous arrival rate at time(s) ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        return self.rate * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period + self.phase)
        )

    def generate(self, horizon, n_stations, rng):
        peak = self.rate * (1.0 + self.amplitude)
        return thin_inhomogeneous(self.rate_at, peak, horizon, n_stations, rng)


@dataclass(frozen=True)
class FlashCrowdWorkload(Workload):
    """Recurring flash-crowd surges over a quiet baseline.

    Every ``period`` slots (starting at ``onset``) the rate ramps
    linearly from ``base_rate`` to ``base_rate * peak_ratio`` over
    ``ramp`` slots, holds the peak for ``hold`` slots, then ramps back
    down over another ``ramp`` slots.  Before ``onset`` the rate is the
    baseline.
    """

    base_rate: float
    peak_ratio: float
    ramp: float
    hold: float
    period: float
    onset: float = 0.0

    def __post_init__(self):
        if self.base_rate <= 0:
            raise ValueError(
                f"base rate must be positive, got {self.base_rate}"
            )
        if self.peak_ratio < 1.0:
            raise ValueError(
                f"peak ratio must be >= 1, got {self.peak_ratio}"
            )
        if self.ramp <= 0 or self.hold < 0:
            raise ValueError("ramp must be positive and hold non-negative")
        if self.period <= 2.0 * self.ramp + self.hold:
            raise ValueError(
                "period must exceed the surge footprint "
                f"2*ramp + hold = {2.0 * self.ramp + self.hold:g}, "
                f"got {self.period}"
            )
        if self.onset < 0:
            raise ValueError(f"onset must be non-negative, got {self.onset}")

    @property
    def mean_rate(self) -> float:
        # Trapezoid area per period: ramps average half the lift.
        surge = (self.ramp + self.hold) / self.period
        return self.base_rate * (1.0 + (self.peak_ratio - 1.0) * surge)

    def rate_at(self, t):
        """Instantaneous arrival rate at time(s) ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        s = np.mod(t - self.onset, self.period)
        lift = np.clip(
            np.minimum(s / self.ramp, (2.0 * self.ramp + self.hold - s) / self.ramp),
            0.0,
            1.0,
        )
        lift = np.where(t < self.onset, 0.0, lift)
        return self.base_rate * (1.0 + (self.peak_ratio - 1.0) * lift)

    def generate(self, horizon, n_stations, rng):
        peak = self.base_rate * self.peak_ratio
        return thin_inhomogeneous(self.rate_at, peak, horizon, n_stations, rng)


@dataclass(frozen=True)
class AdversarialWorkload(Workload):
    """Synchronized batch injection: the window protocol's worst case.

    ``burst_size`` messages arrive near-simultaneously every
    ``interval`` slots, spread over ``spread`` slots, over an optional
    Poisson background.  A burst lands inside one window and must be
    resolved by repeated splitting, so each burst forces a collision
    cascade the Poisson analysis never prices in.

    ``spread`` must be positive: the protocol resolves contention by
    splitting windows on arrival *instants*, so exactly coincident
    arrivals at distinct stations are indistinguishable at any split
    depth (the reference loop raises once splitting hits double
    precision).  The default one-slot spread is the resolvable worst
    case.
    """

    burst_size: int
    interval: float
    background_rate: float = 0.0
    offset: float = 0.0
    spread: float = 1.0

    def __post_init__(self):
        if self.burst_size < 1:
            raise ValueError(f"burst size must be >= 1, got {self.burst_size}")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.background_rate < 0:
            raise ValueError(
                f"background rate must be non-negative, got {self.background_rate}"
            )
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if not 0.0 < self.spread < self.interval:
            raise ValueError(
                f"spread must lie in (0, interval), got {self.spread} "
                "(coincident arrivals are unresolvable: windows split "
                "on arrival instants)"
            )

    @property
    def mean_rate(self) -> float:
        return self.burst_size / self.interval + self.background_rate

    def generate(self, horizon, n_stations, rng):
        instants = np.arange(self.offset, horizon, self.interval)
        times = np.repeat(instants, self.burst_size)
        times = times + rng.uniform(0.0, self.spread, size=times.size)
        stations = rng.integers(0, n_stations, size=times.size)
        if self.background_rate > 0.0:
            n = rng.poisson(self.background_rate * horizon)
            times = np.concatenate(
                [times, rng.uniform(0.0, horizon, size=n)]
            )
            stations = np.concatenate(
                [stations, rng.integers(0, n_stations, size=n)]
            )
        keep = times < horizon
        times, stations = times[keep], stations[keep]
        # Stable so coincident burst arrivals keep their injection order.
        order = np.argsort(times, kind="stable")
        return times[order], stations[order]

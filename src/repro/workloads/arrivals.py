"""Arrival-process generators for the MAC simulator.

The paper's analysis assumes network-wide Poisson arrivals
(:class:`PoissonWorkload`).  The motivating applications are bursty —
packetized voice [Cohen 77] and distributed sensor networks [DSN 82] —
so this package also provides a Markov-modulated Poisson process and the
domain workloads in :mod:`repro.workloads.voice` and
:mod:`repro.workloads.sensor`, all conforming to the :class:`Workload`
interface the simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Workload", "PoissonWorkload", "MMPPWorkload"]


class Workload:
    """Interface: generate network-wide arrivals over a horizon.

    Implementations return arrival instants (sorted, in τ-slot units)
    and the originating station of each arrival.
    """

    def generate(
        self, horizon: float, n_stations: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, stations)`` for arrivals in ``[0, horizon)``."""
        raise NotImplementedError

    @property
    def mean_rate(self) -> float:
        """Long-run arrivals per slot (used by window-length heuristics)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonWorkload(Workload):
    """Homogeneous Poisson arrivals, stations assigned uniformly."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")

    @property
    def mean_rate(self) -> float:
        return self.rate

    def generate(self, horizon, n_stations, rng):
        n = rng.poisson(self.rate * horizon)
        times = np.sort(rng.uniform(0.0, horizon, size=n))
        stations = rng.integers(0, n_stations, size=n)
        return times, stations


@dataclass(frozen=True)
class MMPPWorkload(Workload):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The modulating chain alternates between a *low* and a *high* state
    with exponential holding times; arrivals are Poisson at the state's
    rate.  Stations are assigned uniformly.

    Parameters
    ----------
    low_rate / high_rate:
        Arrival rates in the two states (per slot).
    mean_low / mean_high:
        Mean holding times of the two states (slots).
    """

    low_rate: float
    high_rate: float
    mean_low: float
    mean_high: float

    def __post_init__(self):
        if min(self.low_rate, self.high_rate) < 0 or self.high_rate <= 0:
            raise ValueError("rates must be non-negative with high_rate > 0")
        if min(self.mean_low, self.mean_high) <= 0:
            raise ValueError("holding times must be positive")

    @property
    def mean_rate(self) -> float:
        weight_low = self.mean_low / (self.mean_low + self.mean_high)
        return weight_low * self.low_rate + (1.0 - weight_low) * self.high_rate

    def generate(self, horizon, n_stations, rng):
        times = []
        clock = 0.0
        # Start in a state drawn from the stationary distribution.
        in_high = rng.random() < self.mean_high / (self.mean_low + self.mean_high)
        while clock < horizon:
            hold = rng.exponential(self.mean_high if in_high else self.mean_low)
            end = min(clock + hold, horizon)
            rate = self.high_rate if in_high else self.low_rate
            if rate > 0:
                n = rng.poisson(rate * (end - clock))
                times.append(rng.uniform(clock, end, size=n))
            clock = end
            in_high = not in_high
        all_times = np.sort(np.concatenate(times)) if times else np.empty(0)
        stations = rng.integers(0, n_stations, size=all_times.size)
        return all_times, stations

"""Distributed-sensor-network traffic ([DSN 82], the paper's second
motivating application).

Two components:

* **periodic reports** — every sensor reports once per cycle at a fixed
  phase with small jitter (measurements are only useful while fresh —
  the time-constrained requirement);
* **event bursts** — a Poisson process of detection events, each causing
  a cluster of nearby sensors to report almost simultaneously.  Bursts
  are what stress the collision-resolution machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arrivals import Workload

__all__ = ["SensorWorkload"]


@dataclass(frozen=True)
class SensorWorkload(Workload):
    """Periodic sensor reports plus Poisson event bursts.

    Parameters
    ----------
    n_sensors:
        Number of sensors (mapped to stations round-robin).
    report_period:
        Slots between successive reports of one sensor.
    report_jitter:
        Uniform jitter applied to each report instant (slots).
    event_rate:
        Poisson rate of detection events (per slot); 0 disables bursts.
    burst_size:
        Mean number of sensors reporting per event (Poisson, ≥1 forced).
    burst_spread:
        Event reports fall uniformly within this many slots of the event.
    """

    n_sensors: int
    report_period: float
    report_jitter: float = 1.0
    event_rate: float = 0.0
    burst_size: float = 5.0
    burst_spread: float = 4.0

    def __post_init__(self):
        if self.n_sensors < 1:
            raise ValueError(f"need at least one sensor, got {self.n_sensors}")
        if self.report_period <= 0:
            raise ValueError("report period must be positive")
        if self.report_jitter < 0 or self.report_jitter >= self.report_period:
            raise ValueError("jitter must be in [0, report_period)")
        if self.event_rate < 0:
            raise ValueError("event rate must be non-negative")
        if self.burst_spread <= 0 or self.burst_size <= 0:
            raise ValueError("burst parameters must be positive")

    @property
    def mean_rate(self) -> float:
        """Aggregate arrivals per slot (reports + burst traffic)."""
        periodic = self.n_sensors / self.report_period
        bursty = self.event_rate * self.burst_size
        return periodic + bursty

    def generate(self, horizon, n_stations, rng):
        times = []
        stations = []

        # Periodic reports with random phases.
        for sensor in range(self.n_sensors):
            station = sensor % n_stations
            phase = rng.uniform(0.0, self.report_period)
            t = phase
            while t < horizon:
                instant = t + (
                    rng.uniform(0.0, self.report_jitter) if self.report_jitter else 0.0
                )
                if instant < horizon:
                    times.append(instant)
                    stations.append(station)
                t += self.report_period

        # Event bursts.
        if self.event_rate > 0:
            n_events = rng.poisson(self.event_rate * horizon)
            for event_time in rng.uniform(0.0, horizon, size=n_events):
                n_reports = max(1, rng.poisson(self.burst_size))
                reporters = rng.choice(
                    self.n_sensors, size=min(n_reports, self.n_sensors), replace=False
                )
                for sensor in reporters:
                    instant = event_time + rng.uniform(0.0, self.burst_spread)
                    if instant < horizon:
                        times.append(instant)
                        stations.append(int(sensor) % n_stations)

        order = np.argsort(times) if times else np.empty(0, dtype=int)
        return (
            np.asarray(times, dtype=float)[order],
            np.asarray(stations, dtype=int)[order],
        )

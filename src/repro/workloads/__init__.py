"""Traffic-generation substrate: Poisson, MMPP, voice and sensor models."""

from .arrivals import MMPPWorkload, PoissonWorkload, Workload
from .sensor import SensorWorkload
from .trace import TraceWorkload
from .voice import VoiceWorkload

__all__ = [
    "Workload",
    "PoissonWorkload",
    "MMPPWorkload",
    "VoiceWorkload",
    "SensorWorkload",
    "TraceWorkload",
]

"""Traffic-generation substrate: Poisson, MMPP, voice, sensor, trace and
nonstationary (heavy-tailed / diurnal / flash-crowd / adversarial)
models, all behind the :class:`Workload` interface."""

from .arrivals import MMPPWorkload, PoissonWorkload, Workload
from .nonstationary import (
    AdversarialWorkload,
    DiurnalWorkload,
    FlashCrowdWorkload,
    HeavyTailedWorkload,
    thin_inhomogeneous,
)
from .sensor import SensorWorkload
from .trace import TraceWorkload
from .voice import VoiceWorkload

__all__ = [
    "Workload",
    "PoissonWorkload",
    "MMPPWorkload",
    "VoiceWorkload",
    "SensorWorkload",
    "TraceWorkload",
    "HeavyTailedWorkload",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "AdversarialWorkload",
    "thin_inhomogeneous",
]

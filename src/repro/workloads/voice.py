"""Packetized-voice traffic ([Cohen 77], the paper's motivating example).

Each voice source alternates between *talkspurts* and *silences*
(exponentially distributed, the classic Brady on/off model).  During a
talkspurt the vocoder emits one packet every ``packet_interval`` slots.
Time-constrained delivery is exactly the paper's setting: a voice packet
older than the playout deadline K is useless and a few percent of loss
is tolerable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arrivals import Workload

__all__ = ["VoiceWorkload"]


@dataclass(frozen=True)
class VoiceWorkload(Workload):
    """Superposition of independent on/off voice sources.

    Parameters
    ----------
    n_sources:
        Number of simultaneously active voice calls (one per station; the
        simulator maps source ``i`` to station ``i % n_stations``).
    packet_interval:
        Slots between packets within a talkspurt (vocoder frame time in
        units of τ).
    mean_talkspurt:
        Mean talkspurt duration in slots (classically ~1 s).
    mean_silence:
        Mean silence duration in slots (classically ~1.35 s).
    jitter:
        Uniform per-packet jitter in slots, so packets from distinct
        sources do not collide at identical instants.
    """

    n_sources: int
    packet_interval: float
    mean_talkspurt: float
    mean_silence: float
    jitter: float = 0.25

    def __post_init__(self):
        if self.n_sources < 1:
            raise ValueError(f"need at least one source, got {self.n_sources}")
        if self.packet_interval <= 0:
            raise ValueError("packet interval must be positive")
        if min(self.mean_talkspurt, self.mean_silence) <= 0:
            raise ValueError("talkspurt and silence means must be positive")
        if not 0 <= self.jitter < self.packet_interval:
            raise ValueError("jitter must be in [0, packet_interval)")

    @property
    def activity_factor(self) -> float:
        """Fraction of time a source is talking."""
        return self.mean_talkspurt / (self.mean_talkspurt + self.mean_silence)

    @property
    def mean_rate(self) -> float:
        """Aggregate packets per slot across all sources."""
        return self.n_sources * self.activity_factor / self.packet_interval

    def generate(self, horizon, n_stations, rng):
        times = []
        stations = []
        for source in range(self.n_sources):
            station = source % n_stations
            clock = 0.0
            # Stationary start: talking with probability = activity factor.
            talking = rng.random() < self.activity_factor
            while clock < horizon:
                if talking:
                    spurt_end = min(clock + rng.exponential(self.mean_talkspurt), horizon)
                    t = clock
                    while t < spurt_end:
                        instant = t + (rng.uniform(0.0, self.jitter) if self.jitter else 0.0)
                        if instant < horizon:
                            times.append(instant)
                            stations.append(station)
                        t += self.packet_interval
                    clock = spurt_end
                else:
                    clock += rng.exponential(self.mean_silence)
                talking = not talking
        order = np.argsort(times) if times else np.empty(0, dtype=int)
        return (
            np.asarray(times, dtype=float)[order],
            np.asarray(stations, dtype=int)[order],
        )

"""Small summary-statistics helpers shared by experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "describe", "relative_error", "monotone_fraction"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def describe(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot describe an empty sample")
    return Summary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        median=float(np.median(data)),
        maximum=float(data.max()),
    )


def relative_error(estimate: float, reference: float) -> float:
    """|estimate − reference| / |reference| (absolute error at reference 0)."""
    if reference == 0:
        return abs(estimate)
    return abs(estimate - reference) / abs(reference)


def monotone_fraction(values: Sequence[float], decreasing: bool = True) -> float:
    """Fraction of consecutive pairs ordered the expected way.

    Used to check curve shapes (e.g. loss falls with K) while tolerating
    simulation noise: 1.0 means perfectly monotone.
    """
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two values")
    diffs = np.diff(data)
    good = (diffs <= 0) if decreasing else (diffs >= 0)
    return float(good.mean())

"""Confidence intervals and batch-means analysis for simulation output.

Steady-state simulation estimates need honest uncertainty: independent
replications (each with its own warm-up) or batch means over one long
run.  Both are provided, together with a plain t-interval for iid
observations (used on per-replication loss fractions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "ConfidenceInterval",
    "t_interval",
    "batch_means",
    "proportion_interval",
    "wilson_interval",
    "jeffreys_interval",
    "binomial_interval",
    "BINOMIAL_METHODS",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric two-sided confidence interval.

    Attributes
    ----------
    mean:
        Point estimate.
    half_width:
        Distance from the mean to either bound.
    level:
        Confidence level (e.g. 0.95).
    n:
        Observations (or batches) behind the estimate.
    """

    mean: float
    half_width: float
    level: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.3g} ({self.level:.0%}, n={self.n})"


def t_interval(observations: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Student-t interval for the mean of iid observations."""
    data = np.asarray(observations, dtype=float)
    if data.size < 2:
        raise ValueError(f"need at least two observations, got {data.size}")
    if not 0 < level < 1:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    mean = float(data.mean())
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    critical = float(sps.t.ppf(0.5 + level / 2.0, df=data.size - 1))
    return ConfidenceInterval(mean=mean, half_width=critical * sem, level=level, n=data.size)


def batch_means(
    series: Sequence[float], n_batches: int = 20, level: float = 0.95
) -> ConfidenceInterval:
    """Batch-means interval for the mean of a correlated stationary series.

    The series is cut into ``n_batches`` equal batches whose means are
    treated as approximately iid; a t-interval is formed on them.  Series
    length must be at least ``2 · n_batches``.
    """
    data = np.asarray(series, dtype=float)
    if n_batches < 2:
        raise ValueError(f"need at least two batches, got {n_batches}")
    if data.size < 2 * n_batches:
        raise ValueError(
            f"series of length {data.size} too short for {n_batches} batches"
        )
    batch_size = data.size // n_batches
    trimmed = data[: batch_size * n_batches]
    means = trimmed.reshape(n_batches, batch_size).mean(axis=1)
    return t_interval(means, level=level)


def _check_counts(successes: float, trials: float, level: float) -> None:
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    if not 0 < level < 1:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")


def wilson_interval(
    successes: float, trials: float, level: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion (robust near 0/1).

    Unlike the t-interval on per-replication fractions, the width never
    collapses to zero at ``successes`` of exactly 0 or ``trials``: the
    score centre is pulled away from the boundary by ``z²/2n`` and the
    half-width stays strictly positive, so a sequential stopping rule
    keyed on the half-width cannot terminate spuriously on an all-zero
    first wave.  Bounds are clamped to [0, 1].

    Counts may be fractional: the sequential engine passes *effective*
    counts — pooled counts deflated by a cluster design effect — and
    the score formula is continuous in them.
    """
    _check_counts(successes, trials, level)
    z = float(sps.norm.ppf(0.5 + level / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    )
    return _clamped_unit_interval(center, half, level, trials)


def jeffreys_interval(
    successes: float, trials: float, level: float = 0.95
) -> ConfidenceInterval:
    """Jeffreys (Beta(s+½, n−s+½) equal-tailed) binomial interval.

    The Bayesian counterpart of Wilson under the Jeffreys prior; like
    Wilson it keeps a strictly positive width at 0/1 boundaries.  The
    conventional boundary adjustment applies: at ``successes == 0`` the
    lower bound is exactly 0, at ``successes == trials`` the upper bound
    is exactly 1.  Returned as the (midpoint, half-width) form of the
    equal-tailed credible interval, clamped to [0, 1].  Fractional
    (design-effect-deflated) counts are accepted, as for
    :func:`wilson_interval`.
    """
    _check_counts(successes, trials, level)
    alpha = 1.0 - level
    dist = sps.beta(successes + 0.5, trials - successes + 0.5)
    low = 0.0 if successes == 0 else float(dist.ppf(alpha / 2.0))
    high = 1.0 if successes == trials else float(dist.ppf(1.0 - alpha / 2.0))
    center = (low + high) / 2.0
    half = (high - low) / 2.0
    return _clamped_unit_interval(center, half, level, trials)


def _clamped_unit_interval(
    center: float, half: float, level: float, n: float
) -> ConfidenceInterval:
    """Clamp a symmetric interval on a proportion into [0, 1]."""
    low = max(0.0, center - half)
    high = min(1.0, center + half)
    return ConfidenceInterval(
        mean=(low + high) / 2.0,
        half_width=(high - low) / 2.0,
        level=level,
        n=int(n),
    )


#: Binomial interval backends selectable by name (the ``--ci-method``
#: axis of the sequential engine; ``"t"`` is handled separately because
#: it consumes per-observation fractions, not pooled counts).
BINOMIAL_METHODS = {
    "wilson": wilson_interval,
    "jeffreys": jeffreys_interval,
}


def binomial_interval(
    successes: float, trials: float, level: float = 0.95, method: str = "wilson"
) -> ConfidenceInterval:
    """Dispatch to a named binomial interval backend."""
    try:
        backend = BINOMIAL_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown binomial interval method {method!r}; "
            f"expected one of {sorted(BINOMIAL_METHODS)}"
        ) from None
    return backend(successes, trials, level=level)


def proportion_interval(
    successes: int, trials: int, level: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion (robust near 0/1)."""
    return wilson_interval(successes, trials, level=level)

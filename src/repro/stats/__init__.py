"""Output-analysis substrate: confidence intervals and summaries."""

from .intervals import ConfidenceInterval, batch_means, proportion_interval, t_interval
from .summaries import Summary, describe, monotone_fraction, relative_error

__all__ = [
    "ConfidenceInterval",
    "t_interval",
    "batch_means",
    "proportion_interval",
    "Summary",
    "describe",
    "relative_error",
    "monotone_fraction",
]

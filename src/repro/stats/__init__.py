"""Output-analysis substrate: confidence intervals and summaries."""

from .intervals import (
    BINOMIAL_METHODS,
    ConfidenceInterval,
    batch_means,
    binomial_interval,
    jeffreys_interval,
    proportion_interval,
    t_interval,
    wilson_interval,
)
from .sequential import (
    SPENDING_FUNCTIONS,
    SequentialConfig,
    WaveDecision,
    cumulative_alpha,
    decide_wave,
    design_effect,
    look_level,
)
from .summaries import Summary, describe, monotone_fraction, relative_error

__all__ = [
    "ConfidenceInterval",
    "t_interval",
    "batch_means",
    "proportion_interval",
    "wilson_interval",
    "jeffreys_interval",
    "binomial_interval",
    "BINOMIAL_METHODS",
    "SequentialConfig",
    "WaveDecision",
    "SPENDING_FUNCTIONS",
    "cumulative_alpha",
    "design_effect",
    "look_level",
    "decide_wave",
    "Summary",
    "describe",
    "relative_error",
    "monotone_fraction",
]

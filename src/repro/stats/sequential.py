"""Group-sequential stopping rules for replicated simulation arms.

Fixed replication counts waste most of a production sweep: arms whose
loss-rate CI converged after a handful of lanes keep burning lanes so
the slowest arm can catch up.  The sequential engine instead runs each
arm in *waves* and stops as soon as the confidence-interval half-width
on fraction-late reaches a target.

Peeking at a confidence interval after every wave inflates the error
rate — an interval that covers at 95% on one look does not cover at 95%
over ten looks.  The classical fix is **alpha spending** (Lan & DeMets):
a monotone function :math:`\\alpha(t)` allocates the total error budget
over information fractions :math:`t_k = n_k / n_{\\max}`, and look *k*
is only allowed to spend :math:`\\alpha(t_k) - \\alpha(t_{k-1})`.  Each
look's interval is therefore computed at level
:math:`1 - (\\alpha(t_k) - \\alpha(t_{k-1}))`, which keeps simultaneous
coverage at :math:`\\ge 1 - \\alpha` by the union bound no matter how
many waves actually run.  Two standard spending shapes are provided:

* ``"obf"`` — O'Brien–Fleming-shaped, :math:`2(1 - \\Phi(z_{\\alpha/2}
  / \\sqrt{t}))`: spends almost nothing early, so early stops require
  overwhelmingly tight intervals and the final look runs near the
  nominal level.
* ``"pocock"`` — Pocock-shaped, :math:`\\alpha \\ln(1 + (e-1)t)`:
  spends more evenly, stopping earlier at the price of a wider final
  look.

The pooled binomial backends carry one further correction.  Messages
inside one simulation run are **not** independent Bernoulli trials —
losses cluster under contention, so the between-replication variance of
the loss fraction can sit far above what pooled counts suggest.  Every
pooled-count look therefore estimates a cluster **design effect**
(:func:`design_effect`: the ratio of the measured between-unit variance
of the mean to the binomial variance the pooled interval assumes) and
deflates the pooled counts to Kish's effective sample size
``n_eff = n / deff`` before forming the interval.  The factor is
clamped at 1, which keeps the plain Wilson/Jeffreys width as the
*floor* — exactly the boundary guard those backends exist for at
p̂ ∈ {0, 1}, where the between-unit variance degenerates to zero.

Every decision here is a **pure function** of the accumulated
observations and the configuration — no clocks, no hidden state — so a
resumed sweep replays the identical wave-by-wave stopping sequence from
its journal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from scipy import stats as sps

from .intervals import BINOMIAL_METHODS, ConfidenceInterval, binomial_interval, t_interval

__all__ = [
    "SPENDING_FUNCTIONS",
    "SequentialConfig",
    "WaveDecision",
    "cumulative_alpha",
    "design_effect",
    "look_level",
    "decide_wave",
]


def _obf_spending(alpha: float, t: float) -> float:
    """O'Brien–Fleming-shaped cumulative spend at information fraction t."""
    z = float(sps.norm.ppf(1.0 - alpha / 2.0))
    return 2.0 * (1.0 - float(sps.norm.cdf(z / math.sqrt(t))))


def _pocock_spending(alpha: float, t: float) -> float:
    """Pocock-shaped cumulative spend at information fraction t."""
    return alpha * math.log(1.0 + (math.e - 1.0) * t)


SPENDING_FUNCTIONS = {
    "obf": _obf_spending,
    "pocock": _pocock_spending,
}


def cumulative_alpha(spending: str, alpha: float, t: float) -> float:
    """Cumulative error budget spent by information fraction ``t``.

    ``t`` is clamped into (0, 1]; ``alpha`` is the total two-sided
    budget (e.g. 0.05 for 95% simultaneous coverage).
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    try:
        shape = SPENDING_FUNCTIONS[spending]
    except KeyError:
        raise ValueError(
            f"unknown spending function {spending!r}; "
            f"expected one of {sorted(SPENDING_FUNCTIONS)}"
        ) from None
    t = min(1.0, max(1e-12, t))
    return shape(alpha, t)


@dataclass(frozen=True)
class SequentialConfig:
    """Stopping rule for one sequential sweep.

    Attributes
    ----------
    ci_target:
        Stop an arm once its half-width on fraction-late is ≤ this.
    level:
        Simultaneous confidence level across all looks (default 0.95).
    wave_size:
        Observation units added per wave (antithetic pairs count as one
        unit each — two lanes).
    min_replications:
        Units required before the first look; no stopping decision is
        taken on fewer.
    max_replications:
        Hard cap per arm; the information-fraction denominator of the
        spending function.
    spending:
        ``"obf"`` or ``"pocock"`` (see module docstring).
    method:
        Interval backend: ``"wilson"`` / ``"jeffreys"`` pool per-run
        loss counts, deflated by the cluster :func:`design_effect`
        (robust at 0/1, honest under within-run loss clustering);
        ``"t"`` forms a Student-t interval over per-unit loss
        fractions, which captures the clustering directly.
    """

    ci_target: float
    level: float = 0.95
    wave_size: int = 4
    min_replications: int = 8
    max_replications: int = 64
    spending: str = "obf"
    method: str = "wilson"

    def __post_init__(self) -> None:
        if not self.ci_target > 0:
            raise ValueError(f"ci_target must be positive, got {self.ci_target}")
        if not 0 < self.level < 1:
            raise ValueError(f"level must be in (0, 1), got {self.level}")
        if self.wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {self.wave_size}")
        if self.min_replications < 2:
            raise ValueError(
                f"min_replications must be >= 2, got {self.min_replications}"
            )
        if self.max_replications < self.min_replications:
            raise ValueError(
                f"max_replications {self.max_replications} below "
                f"min_replications {self.min_replications}"
            )
        if self.spending not in SPENDING_FUNCTIONS:
            raise ValueError(
                f"unknown spending function {self.spending!r}; "
                f"expected one of {sorted(SPENDING_FUNCTIONS)}"
            )
        if self.method not in ("t",) + tuple(sorted(BINOMIAL_METHODS)):
            raise ValueError(
                f"unknown interval method {self.method!r}; expected 't', "
                + " or ".join(repr(m) for m in sorted(BINOMIAL_METHODS))
            )


@dataclass(frozen=True)
class WaveDecision:
    """One look of the group-sequential rule — journaled verbatim.

    A decision is a deterministic function of ``(config, wave,
    accumulated observations)``; resumed runs recompute it and must land
    on a bit-identical record.  ``design_effect`` is the cluster
    variance-inflation factor the pooled-count backends applied at this
    look (1.0 for the t backend, which needs no correction).
    """

    wave: int
    n: int
    mean: float
    half_width: float
    look_level: float
    stop: bool
    reason: str
    design_effect: float = 1.0

    def to_dict(self) -> dict:
        return {
            "wave": self.wave,
            "n": self.n,
            "mean": self.mean,
            "half_width": self.half_width,
            "look_level": self.look_level,
            "stop": self.stop,
            "reason": self.reason,
            "design_effect": self.design_effect,
        }


def look_level(config: SequentialConfig, n: int, previous_n: int) -> float:
    """Per-look confidence level after accumulating ``n`` of ``max`` units.

    The look spends only the *increment* of the cumulative spending
    function between the previous look's information fraction and this
    one's, so the sum over all looks never exceeds ``1 - level``.
    """
    alpha = 1.0 - config.level
    t_now = n / config.max_replications
    spent_now = cumulative_alpha(config.spending, alpha, t_now)
    if previous_n > 0:
        t_prev = previous_n / config.max_replications
        spent_prev = cumulative_alpha(config.spending, alpha, t_prev)
    else:
        spent_prev = 0.0
    increment = max(spent_now - spent_prev, alpha * 1e-6)
    return 1.0 - min(increment, alpha)


def design_effect(fractions: Sequence[float], counts: Tuple[int, int]) -> float:
    """Cluster design effect of pooled per-message loss counts.

    Messages within one replication share a sample path, so their
    losses are correlated — under contention, heavily so — and treating
    the pooled ``(lost, resolved)`` counts as that many independent
    Bernoulli trials understates the sampling variance of the arm mean.
    The survey-sampling correction is the **design effect**: the ratio
    of the measured between-replication variance of the estimator
    (``s²/k`` over the per-unit loss fractions) to the binomial
    variance the pooled interval assumes (``p̂(1−p̂)/N`` over the ``N``
    pooled messages).  Dividing the pooled counts by this factor yields
    Kish's effective sample size — the number of genuinely independent
    trials the data carries.

    Clamped to ≥ 1: with fewer than two units, or at a degenerate
    p̂ ∈ {0, 1} where the between-unit variance collapses, the pooled
    interval is used as-is — the boundary regime Wilson/Jeffreys exist
    to guard.
    """
    lost, resolved = counts
    k = len(fractions)
    if k < 2 or resolved <= 0:
        return 1.0
    p = lost / resolved
    binomial_var = p * (1.0 - p) / resolved
    if binomial_var <= 0.0:
        return 1.0
    mean = sum(fractions) / k
    s2 = sum((f - mean) ** 2 for f in fractions) / (k - 1)
    return max(1.0, (s2 / k) / binomial_var)


def _interval(
    config: SequentialConfig,
    fractions: Sequence[float],
    counts: Tuple[int, int],
    level: float,
    deff: float = 1.0,
) -> ConfidenceInterval:
    if config.method == "t":
        return t_interval(fractions, level=level)
    lost, resolved = counts
    if resolved <= 0:
        raise ValueError("binomial interval backends need at least one resolved message")
    # Deflate pooled counts to the effective independent-trial count;
    # p-hat is unchanged, the width widens by ~sqrt(deff).
    return binomial_interval(
        lost / deff, resolved / deff, level=level, method=config.method
    )


def decide_wave(
    config: SequentialConfig,
    wave: int,
    fractions: Sequence[float],
    counts: Tuple[int, int],
    previous_n: int = 0,
) -> WaveDecision:
    """The stopping decision after ``wave`` with the data seen so far.

    Parameters
    ----------
    config:
        The stopping rule.
    wave:
        1-based wave index (for the journal record only).
    fractions:
        Per-observation-unit loss fractions accumulated so far.
    counts:
        Pooled ``(lost, resolved)`` message counts across the same
        units — the binomial backends consume these.
    previous_n:
        Units held at the previous *look* (0 before the first look);
        sets the spending increment.
    """
    n = len(fractions)
    deff = 1.0 if config.method == "t" else design_effect(fractions, counts)
    if n < config.min_replications:
        level = look_level(config, n, previous_n)
        ci = _interval(config, fractions, counts, level, deff) if n >= 2 else None
        return WaveDecision(
            wave=wave,
            n=n,
            mean=ci.mean if ci else (fractions[0] if fractions else math.nan),
            half_width=ci.half_width if ci else math.inf,
            look_level=level,
            stop=False,
            reason="below-min-replications",
            design_effect=deff,
        )
    level = look_level(config, n, previous_n)
    ci = _interval(config, fractions, counts, level, deff)
    if ci.half_width <= config.ci_target:
        return WaveDecision(
            wave=wave,
            n=n,
            mean=ci.mean,
            half_width=ci.half_width,
            look_level=level,
            stop=True,
            reason="ci-target",
            design_effect=deff,
        )
    if n >= config.max_replications:
        return WaveDecision(
            wave=wave,
            n=n,
            mean=ci.mean,
            half_width=ci.half_width,
            look_level=level,
            stop=True,
            reason="max-replications",
            design_effect=deff,
        )
    return WaveDecision(
        wave=wave,
        n=n,
        mean=ci.mean,
        half_width=ci.half_width,
        look_level=level,
        stop=False,
        reason="continue",
        design_effect=deff,
    )

"""Supervised task execution: timeouts, retries, pool recovery, quarantine.

``ProcessPoolExecutor.map`` is all-or-nothing: one OOM-killed worker
raises :class:`~concurrent.futures.process.BrokenProcessPool` and throws
away every completed cell of the sweep.  :class:`SupervisedExecutor`
replaces the bulk map with per-task futures under a watchdog:

* each task gets a **wall-clock timeout** (in-flight submission is
  capped at the worker count, so submission time is start time);
* a failed task is **retried** with exponential backoff, always on a
  fresh worker process (crashes and timeouts kill the pool; respawning
  it is what gives the retry a clean process);
* a broken pool (worker SIGKILLed / OOMed mid-task) is **respawned**
  and only the unfinished tasks are resubmitted — completed results are
  kept (and already journaled);
* a task that exhausts its retries is **quarantined**: recorded in the
  outcome with its fingerprint and final error, its result slot left as
  an explicit hole.  The sweep completes as a partial grid — degraded,
  reported, never silently truncated.

With a :class:`~repro.resilience.journal.RunJournal`, completed results
are checkpointed *as they finish* and replayed on the next invocation,
which is all "resume" is: re-run the same grid with the same journal.
Because every task carries its own seed, a retried or resumed task
reproduces the original result bit-for-bit; ``verify_replay`` turns
that assumption into a checked invariant by re-running journaled cells
and comparing.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.metrics import DURATION_BUCKETS_S, MetricsRegistry
from .journal import JournalMismatchError, RunJournal, value_digest

__all__ = [
    "ResilienceOptions",
    "QuarantineRecord",
    "SweepOutcome",
    "SupervisedExecutor",
    "backoff_delay",
]

_UNSET = object()


@dataclass(frozen=True)
class ResilienceOptions:
    """Caller-facing knobs of the resilience layer (all primitives, so
    drivers and the CLI can pass one frozen object around).

    Attributes
    ----------
    checkpoint:
        Journal directory (``None`` = no checkpointing).  Completed
        results are recorded as they finish and replayed by fingerprint
        on the next invocation with the same path.
    resume:
        Require that ``checkpoint`` already holds a journal — a guard
        against resuming from a mistyped path (a fresh run with
        ``checkpoint`` set resumes implicitly anyway).
    task_timeout:
        Per-task wall-clock budget in seconds (parallel runs only; an
        inline run cannot preempt its own task).  A task over budget is
        killed with its worker and retried.
    max_retries:
        Failed attempts allowed per task beyond the first; a task that
        fails ``max_retries + 1`` times is quarantined.
    backoff_base:
        First retry delay in seconds; doubles per subsequent attempt.
    backoff_jitter:
        Bounded multiplicative jitter on every retry delay: the delay is
        stretched by a factor in ``[1, 1 + backoff_jitter]``, drawn
        deterministically from ``(backoff_seed, task fingerprint,
        attempt)``.  Simultaneous failures (every task caught in one
        ``BrokenProcessPool``) then back off at *different* moments
        instead of thundering-herd-ing the respawned pool — yet the
        whole retry schedule is still a pure function of the options
        and the task identities, so a re-run reproduces it exactly.
    backoff_seed:
        Seed of the jitter draw (see ``backoff_jitter``).
    verify_replay:
        Re-run journaled cells and require bit-identical results
        (determinism audit; defeats the time savings of resume).
    """

    checkpoint: Optional[str] = None
    resume: bool = False
    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_jitter: float = 0.25
    backoff_seed: int = 0
    verify_replay: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(f"backoff base must be >= 0, got {self.backoff_base}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff jitter must lie in [0, 1], got {self.backoff_jitter}"
            )
        if self.resume and self.checkpoint is None:
            raise ValueError("resume requires a checkpoint path")


def backoff_delay(
    options: "ResilienceOptions", key: Optional[str], attempt: int
) -> float:
    """Retry delay for a task's ``attempt``-th failure (attempts count
    from 1).

    Exponential in the attempt number, stretched by the options'
    bounded jitter.  The jitter fraction is a hash of
    ``(backoff_seed, key, attempt)`` — no RNG state, so the schedule is
    deterministic per task and distinct *across* tasks, which is what
    de-synchronises a herd of simultaneous ``BrokenProcessPool``
    retries without sacrificing reproducibility.
    """
    if attempt < 1:
        raise ValueError(f"attempts count from 1, got {attempt}")
    delay = options.backoff_base * (2 ** (attempt - 1))
    if delay > 0 and options.backoff_jitter > 0:
        draw = hashlib.sha256(
            f"{options.backoff_seed}\x1f{key or ''}\x1f{attempt}".encode()
        ).digest()
        unit = int.from_bytes(draw[:8], "big") / 2**64  # uniform [0, 1)
        delay *= 1.0 + options.backoff_jitter * unit
    return delay


@dataclass(frozen=True)
class QuarantineRecord:
    """One poison task: where it sat in the grid and why it was dropped."""

    index: int
    fingerprint: Optional[str]
    attempts: int
    reason: str

    def describe(self) -> str:
        """Human-readable one-liner for tables and logs."""
        fp = f" [{self.fingerprint[:12]}]" if self.fingerprint else ""
        return (
            f"task #{self.index}{fp} quarantined after "
            f"{self.attempts} attempt(s): {self.reason}"
        )


@dataclass
class SweepOutcome:
    """Everything a supervised sweep produced, holes included.

    ``results`` is index-aligned with the submitted tasks; a quarantined
    task leaves ``None`` at its index and a :class:`QuarantineRecord` in
    ``quarantined`` — callers must treat the hole explicitly (the
    experiment drivers mark it in their tables), never drop it silently.
    """

    results: List[Optional[Any]] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    replayed: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0

    @property
    def complete(self) -> bool:
        """Whether every task produced a result (no quarantine holes)."""
        return not self.quarantined

    def holes(self) -> List[int]:
        """Indices of quarantined (missing) results."""
        return sorted(record.index for record in self.quarantined)

    def summary(self) -> str:
        """One-line account of the sweep (for CLI/report footers)."""
        parts = [f"{self.executed} executed"]
        if self.replayed:
            parts.append(f"{self.replayed} replayed from journal")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restart(s)")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        return ", ".join(parts)


def _backoff_key(task: "_Task") -> str:
    """Content-derived seed key for a task's retry-backoff jitter.

    Batched composite tasks carry ``fingerprint=None`` (their members own
    the journal keys), and their ``index`` depends on how the chunker
    packed the grid for the current worker count — seeding jitter from it
    would make retry timing (and thus journal write order under races)
    vary with ``--workers``.  Keying on the first member fingerprint
    keeps the draw content-addressed wherever a fingerprint exists; the
    index fallback only remains for unjournaled singleton sweeps, where
    no content key exists at all.
    """
    if task.fingerprint is not None:
        return task.fingerprint
    if task.subkeys:
        return task.subkeys[0]
    return f"task-{task.index}"


@dataclass
class _Task:
    index: int
    item: Any
    fingerprint: Optional[str]
    subkeys: Optional[Sequence[str]] = None
    timeout: Optional[float] = None  # None → options.task_timeout
    size: int = 1  # cells this task completes (batched tasks: members)
    attempts: int = 0
    not_before: float = 0.0
    expected: Any = _UNSET  # journaled value under verify_replay
    last_error: Optional[BaseException] = None


class _TaskFailure(Exception):
    """Internal wrapper carrying a failure reason across retry handling."""

    def __init__(self, reason: str, cause: Optional[BaseException] = None):
        super().__init__(reason)
        self.reason = reason
        self.cause = cause


class SupervisedExecutor:
    """Runs independent tasks inline or across supervised worker processes.

    Parameters
    ----------
    workers:
        ``None`` / ``1`` — inline, sequential, in index order (callables
        need not be picklable; timeouts are not enforced).  ``N > 1`` —
        per-task futures on a process pool under the watchdog.
    options:
        :class:`ResilienceOptions`; ``None`` means *strict legacy
        semantics*: no journal, no retry, the first task failure is
        re-raised (exactly what the pre-resilience executor did, minus
        the loss of completed work).
    metrics:
        An enabled :class:`~repro.obs.metrics.MetricsRegistry` receives
        the executor's own telemetry — cell counts, retries, per-cell
        wall-clock and queue-wait histograms.  All of it is marked
        *volatile* (wall-clock and scheduling differ between identical
        runs by nature), so ``repro report diff`` ignores it by default.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        options: Optional[ResilienceOptions] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self.strict = options is None
        self.options = options or ResilienceOptions(max_retries=0)
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        self._progress: Optional[Callable[[int], None]] = None
        self.journal: Optional[RunJournal] = None
        if self.options.checkpoint is not None:
            if self.options.resume and not RunJournal.exists(self.options.checkpoint):
                raise FileNotFoundError(
                    f"--resume: no journal at {self.options.checkpoint} "
                    "(pass --checkpoint alone to start one)"
                )
            self.journal = RunJournal(self.options.checkpoint)

    @property
    def parallel(self) -> bool:
        """Whether tasks fan out to worker processes."""
        return self.workers is not None and self.workers > 1

    # -- entry point --------------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        fingerprints: Optional[Sequence[Optional[str]]] = None,
        subkeys: Optional[Sequence[Optional[Sequence[str]]]] = None,
        timeouts: Optional[Sequence[Optional[float]]] = None,
        sizes: Optional[Sequence[int]] = None,
        progress: Optional[Callable[[int], None]] = None,
    ) -> SweepOutcome:
        """Apply ``fn`` to every item; results index-aligned with ``items``.

        ``fingerprints`` (when given) keys the journal: items whose
        fingerprint is already recorded are replayed, the rest executed
        and recorded as they complete.

        ``subkeys`` (when given) journals *composite* tasks member-wise:
        a task whose entry is a sequence of keys must produce a sequence
        value, and each element is checkpointed under its own key as the
        task finishes — so a batched task crash-resumes at per-member
        granularity.  Composite tasks are never replayed at this level
        (their members carry the fingerprints); the caller pre-filters
        journaled members before chunking.

        ``timeouts`` (when given) overrides ``options.task_timeout`` per
        task — a composite task's budget scales with its member count.

        ``sizes`` (when given) is how many *cells* each task completes
        (a batched task's member count, default 1) — it keeps the
        ``executed`` account and its telemetry counter invariant to how
        cells were packed into tasks.

        ``progress`` (when given) is called in the *parent* with the
        task's cell count each time a task completes and is journaled —
        the liveness signal the service layer turns into lease
        heartbeats.  It is never called for replayed or quarantined
        tasks.
        """
        self._progress = progress
        items = list(items)
        if fingerprints is None:
            fingerprints = [None] * len(items)
        if len(fingerprints) != len(items):
            raise ValueError("fingerprints must align with items")
        if subkeys is None:
            subkeys = [None] * len(items)
        if len(subkeys) != len(items):
            raise ValueError("subkeys must align with items")
        if timeouts is None:
            timeouts = [None] * len(items)
        if len(timeouts) != len(items):
            raise ValueError("timeouts must align with items")
        if sizes is None:
            sizes = [1] * len(items)
        if len(sizes) != len(items):
            raise ValueError("sizes must align with items")
        outcome = SweepOutcome(results=[None] * len(items))
        tasks: List[_Task] = []
        for index, (item, fp, keys, budget, size) in enumerate(
            zip(items, fingerprints, subkeys, timeouts, sizes)
        ):
            task = _Task(
                index=index, item=item, fingerprint=fp,
                subkeys=keys, timeout=budget, size=size,
            )
            if self.journal is not None and fp is not None:
                hit, value = self.journal.get(fp)
                if hit:
                    if self.options.verify_replay:
                        task.expected = value
                    else:
                        outcome.results[index] = value
                        outcome.replayed += 1
                        continue
            tasks.append(task)
        if tasks:
            if self.parallel:
                self._run_parallel(fn, tasks, outcome)
            else:
                self._run_inline(fn, tasks, outcome)
        if self.metrics is not None:
            self._flush_outcome(outcome)
        return outcome

    def _flush_outcome(self, outcome: SweepOutcome) -> None:
        # All volatile: journal state, crashes and scheduling make these
        # legitimately differ between two same-seed runs.
        obs = self.metrics
        obs.counter("sweep.cells.executed", volatile=True).inc(outcome.executed)
        obs.counter("sweep.cells.replayed", volatile=True).inc(outcome.replayed)
        obs.counter("sweep.cells.retried", volatile=True).inc(outcome.retries)
        obs.counter("sweep.cells.timed_out", volatile=True).inc(outcome.timeouts)
        obs.counter("sweep.cells.quarantined", volatile=True).inc(
            len(outcome.quarantined)
        )
        obs.counter("sweep.pool.restarts", volatile=True).inc(
            outcome.pool_restarts
        )

    def _wall_histogram(self):
        return self.metrics.histogram(
            "sweep.cell.wall_s", DURATION_BUCKETS_S, unit="s", volatile=True
        )

    # -- completion / failure bookkeeping -----------------------------------------

    def _complete(self, task: _Task, value: Any, outcome: SweepOutcome) -> None:
        if task.expected is not _UNSET and value != task.expected:
            where = (
                str(self.journal.record_path(task.fingerprint))
                if self.journal is not None and task.fingerprint is not None
                else "<unknown record>"
            )
            raise JournalMismatchError(
                f"replay of task #{task.index} "
                f"[{(task.fingerprint or '?')[:12]}] diverged from the "
                f"journaled result at {where}: journaled value digest "
                f"{value_digest(task.expected)}, recomputed "
                f"{value_digest(value)} — non-deterministic task or a "
                "journal written by different code"
            )
        outcome.results[task.index] = value
        # A batched task completes ``size`` cells at once, so the cells-
        # executed account stays scheduling-invariant.
        outcome.executed += task.size
        if self.journal is not None:
            if task.fingerprint is not None:
                self.journal.record(task.fingerprint, value)
            if task.subkeys is not None:
                for key, member in zip(task.subkeys, value):
                    self.journal.record(key, member)
        if self._progress is not None:
            self._progress(task.size)

    def _register_failure(
        self,
        task: _Task,
        failure: _TaskFailure,
        pending: "deque[_Task]",
        outcome: SweepOutcome,
    ) -> None:
        """Charge one failed attempt: retry with backoff or quarantine."""
        task.attempts += 1
        task.last_error = failure.cause
        if task.attempts > self.options.max_retries:
            if self.strict and failure.cause is not None:
                raise failure.cause
            if self.strict:
                raise RuntimeError(failure.reason)
            outcome.quarantined.append(
                QuarantineRecord(
                    index=task.index,
                    fingerprint=task.fingerprint,
                    attempts=task.attempts,
                    reason=failure.reason,
                )
            )
            return
        outcome.retries += 1
        task.not_before = time.monotonic() + backoff_delay(
            self.options, _backoff_key(task), task.attempts
        )
        pending.append(task)

    # -- inline path --------------------------------------------------------------

    def _run_inline(
        self, fn: Callable[[Any], Any], tasks: List[_Task], outcome: SweepOutcome
    ) -> None:
        """Sequential supervision: retries and the journal, no preemption.

        ``KeyboardInterrupt`` (and other non-``Exception`` interrupts)
        propagate immediately — completed results are already journaled,
        so an interrupted inline sweep resumes exactly like a crashed
        parallel one.
        """
        wall_hist = self._wall_histogram() if self.metrics is not None else None
        pending = deque(tasks)
        while pending:
            task = pending.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            begun = time.perf_counter()
            try:
                value = fn(task.item)
            except Exception as error:
                self._register_failure(
                    task,
                    _TaskFailure(f"{type(error).__name__}: {error}", error),
                    pending,
                    outcome,
                )
                continue
            if wall_hist is not None:
                wall_hist.observe(time.perf_counter() - begun)
            self._complete(task, value, outcome)

    # -- parallel path ------------------------------------------------------------

    def _run_parallel(
        self, fn: Callable[[Any], Any], tasks: List[_Task], outcome: SweepOutcome
    ) -> None:
        wall_hist = queue_hist = None
        if self.metrics is not None:
            wall_hist = self._wall_histogram()
            queue_hist = self.metrics.histogram(
                "sweep.cell.queue_s", DURATION_BUCKETS_S, unit="s", volatile=True
            )
        queue_origin = time.monotonic()
        pending: "deque[_Task]" = deque(tasks)
        inflight: Dict[Any, _Task] = {}
        started: Dict[Any, float] = {}
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while pending or inflight:
                now = time.monotonic()
                self._submit_eligible(
                    fn, pool, pending, inflight, started, now,
                    queue_hist=queue_hist, queue_origin=queue_origin,
                )
                if not inflight:
                    # Everything pending is in a backoff window.
                    wakeup = min(task.not_before for task in pending)
                    time.sleep(max(0.0, wakeup - time.monotonic()))
                    continue
                done, _ = wait(
                    set(inflight), timeout=0.1, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    task = inflight.pop(future)
                    begun = started.pop(future)
                    error = future.exception()
                    if error is None:
                        if wall_hist is not None:
                            wall_hist.observe(time.monotonic() - begun)
                        self._complete(task, future.result(), outcome)
                    elif isinstance(error, BrokenProcessPool):
                        # The culprit is unknowable from the parent side, so
                        # every task caught in the broken pool is charged one
                        # attempt: innocents succeed on retry, the poison
                        # task keeps breaking pools until quarantined.
                        broken = True
                        self._register_failure(
                            task,
                            _TaskFailure(
                                "worker process died mid-task "
                                "(BrokenProcessPool)",
                                error,
                            ),
                            pending,
                            outcome,
                        )
                    else:
                        self._register_failure(
                            task,
                            _TaskFailure(f"{type(error).__name__}: {error}", error),
                            pending,
                            outcome,
                        )
                if broken:
                    pool = self._respawn(pool, pending, inflight, started, outcome)
                    continue
                overdue = self._overdue(inflight, started)
                if overdue:
                    outcome.timeouts += len(overdue)
                    for future in overdue:
                        task = inflight.pop(future)
                        started.pop(future)
                        budget = (
                            task.timeout
                            if task.timeout is not None
                            else self.options.task_timeout
                        )
                        self._register_failure(
                            task,
                            _TaskFailure(
                                f"exceeded task timeout of {budget:g}s"
                            ),
                            pending,
                            outcome,
                        )
                    # A pool cannot cancel a running call: killing the
                    # workers is the only preemption there is.  Innocent
                    # in-flight neighbours are requeued without an attempt
                    # charge.
                    pool = self._respawn(pool, pending, inflight, started, outcome)
        except BaseException:
            _kill_pool(pool)
            raise
        pool.shutdown(wait=True)

    def _submit_eligible(
        self, fn, pool, pending, inflight, started, now,
        queue_hist=None, queue_origin=0.0,
    ) -> None:
        """Fill the pool with backoff-eligible tasks, up to the worker count.

        In-flight submissions are capped at ``workers`` so every
        submitted task starts (almost) immediately — which is what makes
        submission time an honest proxy for start time in the watchdog.
        """
        for _ in range(len(pending)):
            if len(inflight) >= (self.workers or 1):
                break
            task = pending.popleft()
            if task.not_before > now:
                pending.append(task)  # rotate: try the next one
                continue
            future = pool.submit(fn, task.item)
            inflight[future] = task
            started[future] = time.monotonic()
            if queue_hist is not None:
                queue_hist.observe(started[future] - queue_origin)

    def _overdue(self, inflight, started) -> List[Any]:
        now = time.monotonic()
        overdue = []
        for future, task in inflight.items():
            budget = (
                task.timeout
                if task.timeout is not None
                else self.options.task_timeout
            )
            if (
                budget is not None
                and not future.done()
                and now - started[future] > budget
            ):
                overdue.append(future)
        return overdue

    def _respawn(self, pool, pending, inflight, started, outcome):
        """Kill the pool, requeue survivors un-charged, start a fresh pool."""
        for task in sorted(inflight.values(), key=lambda t: t.index, reverse=True):
            pending.appendleft(task)
        inflight.clear()
        started.clear()
        _kill_pool(pool)
        outcome.pool_restarts += 1
        return ProcessPoolExecutor(max_workers=self.workers)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: SIGKILL its workers, then tear down the plumbing."""
    processes = dict(getattr(pool, "_processes", None) or {})
    for process in processes.values():
        try:
            process.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass

"""Runtime invariant guards for the simulator hot loops.

A crashed worker is loud; *corrupted* partial state is quiet — a fast
path that drops a message, a clock that stalls, a window of negative
measure would surface only as a subtly wrong number three tables
downstream.  These guards put the detection at the source.

They are gated by ``REPRO_CHECK_INVARIANTS`` (off by default: the checks
sit on the per-slot hot path) and raise :class:`InvariantViolation` —
deliberately *not* ``AssertionError``, so ``python -O`` cannot strip
them and the supervised executor treats a violation like any other task
failure (retry, then quarantine the cell rather than record a corrupt
result).

The simulator enforces three families of invariants when enabled:

* **message conservation** — every measured arrival ends the run in
  exactly one bucket: delivered on time, delivered late, discarded,
  lost to a fault, or still unresolved;
* **monotone clock** — each outer iteration of the slot loop advances
  the channel clock;
* **window non-negativity** — no windowing step may produce a span of
  negative measure, and the idle fast-forward may never leave a negative
  unresolved backlog.
"""

from __future__ import annotations

import os

__all__ = ["INVARIANTS_ENV", "InvariantViolation", "invariants_enabled", "require"]

#: Environment flag enabling the hot-loop checks.
INVARIANTS_ENV = "REPRO_CHECK_INVARIANTS"


class InvariantViolation(RuntimeError):
    """A simulator invariant failed: the run's state is corrupt."""


def invariants_enabled() -> bool:
    """Whether ``REPRO_CHECK_INVARIANTS`` requests the hot-loop guards."""
    return os.environ.get(INVARIANTS_ENV, "") in ("1", "true", "yes")


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` with ``message`` unless ``condition``."""
    if not condition:
        raise InvariantViolation(message)

"""The run journal: an atomic, content-addressed sweep checkpoint.

A journal is a directory::

    <path>/
        manifest.json        # {"schema": ..., "package": ...}
        records/<fp>.pkl     # one completed result per task fingerprint

Each record is written with the :mod:`repro.cache` discipline — temp
file in the same directory, then :func:`os.replace` — so a record either
exists completely or not at all.  A worker SIGKILL, an OOM, or a Ctrl-C
in the parent can never leave a half-written record: the journal a crash
leaves behind is always valid, and re-invoking the sweep with the same
journal replays exactly the cells that finished.

Records are keyed by :func:`~repro.resilience.fingerprint.fingerprint`
of the task spec, so replay is content-addressed: a grid can be
reordered, extended, or narrowed between invocations and still hit
every record that still describes one of its cells.  Corrupt or
unreadable records are treated as misses (the cell simply re-runs);
a manifest with a different schema is an *error* — stale layouts must
never silently satisfy new runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalSchemaError",
    "JournalMismatchError",
    "RunJournal",
    "value_digest",
]

#: Journal layout version; bump when the record format changes.
JOURNAL_SCHEMA = "repro-journal-v1"


class JournalSchemaError(RuntimeError):
    """The directory holds a journal written under a different schema."""


class JournalMismatchError(RuntimeError):
    """A replay-verification run disagreed with the journaled result.

    Raised only under ``verify_replay``: the sweep is *supposed* to be
    deterministic, so a mismatch means either non-deterministic task
    code or a journal from a different code version — both worth a loud
    failure rather than a silently mixed grid.
    """


def value_digest(value: Any, length: int = 12) -> str:
    """Short content digest of a journaled (or journalable) value.

    Error messages quote it for *both* sides of a replay mismatch so a
    multi-journal service operator can see at a glance whether two
    divergent records carry the same payload — without dumping the
    payloads themselves into a log line.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(payload).hexdigest()[:length]


def _package_version() -> str:
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - circular-import safety net
        return "unknown"


class RunJournal:
    """Checkpoint store for one (or many) sweep invocations.

    Parameters
    ----------
    path:
        Journal directory; created (with a manifest) if absent.

    Raises
    ------
    JournalSchemaError:
        ``path`` contains a manifest written under a different schema —
        delete the directory (or pick another) rather than mixing
        layouts.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._records = self.path / "records"
        manifest = self.path / "manifest.json"
        if manifest.exists():
            try:
                with open(manifest, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise JournalSchemaError(
                    f"unreadable journal manifest at {manifest}: {error}"
                ) from error
            schema = meta.get("schema")
            if schema != JOURNAL_SCHEMA:
                raise JournalSchemaError(
                    f"journal manifest {manifest} declares schema "
                    f"{schema!r}, this package writes {JOURNAL_SCHEMA!r}; "
                    "delete the journal or point --checkpoint elsewhere"
                )
        else:
            self._records.mkdir(parents=True, exist_ok=True)
            self._atomic_write(
                manifest,
                json.dumps(
                    {"schema": JOURNAL_SCHEMA, "package": _package_version()},
                    indent=2,
                ).encode(),
            )
        self._records.mkdir(parents=True, exist_ok=True)

    # -- introspection -----------------------------------------------------------

    @staticmethod
    def exists(path) -> bool:
        """Whether ``path`` already holds a journal (manifest present)."""
        return (Path(path) / "manifest.json").exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._records.glob("*.pkl"))

    def __contains__(self, fp: str) -> bool:
        return (self._records / f"{fp}.pkl").exists()

    def fingerprints(self) -> Iterator[str]:
        """Fingerprints of every recorded result."""
        for entry in sorted(self._records.glob("*.pkl")):
            yield entry.stem

    def record_path(self, fp: str) -> Path:
        """On-disk path of a fingerprint's record (existing or not).

        Error messages name it so "which journal file disagreed?" has
        an immediate answer when a service juggles many journals.
        """
        return self._records / f"{fp}.pkl"

    # -- record I/O ---------------------------------------------------------------

    def _atomic_write(self, target: Path, payload: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def record(self, fp: str, value: Any) -> None:
        """Checkpoint one completed result (atomic, idempotent)."""
        self._atomic_write(
            self._records / f"{fp}.pkl",
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get(self, fp: str) -> Tuple[bool, Optional[Any]]:
        """``(hit, value)`` for a fingerprint; corrupt records are misses."""
        path = self._records / f"{fp}.pkl"
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return False, None

    def clear(self) -> int:
        """Delete every record (the manifest stays); returns the count."""
        removed = 0
        for entry in self._records.glob("*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

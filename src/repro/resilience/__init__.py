"""Crash tolerance for the experiment pipeline.

PR 2 routed every experiment grid through one executor; this package
makes that executor survive the faults a long sweep actually meets —
OOM-killed workers, hung tasks, poison parameter cells, a Ctrl-C three
hours in — the same way the protocol under measurement survives
*channel* faults: degrade gracefully, never corrupt, always resumable.

Four cooperating pieces:

* :mod:`~repro.resilience.fingerprint` — a content-addressed identity
  for any picklable task spec (stable across processes and runs, unlike
  ``repr`` of objects with default identity reprs);
* :mod:`~repro.resilience.journal` — :class:`RunJournal`, an atomic
  on-disk checkpoint keyed by fingerprint: results are recorded as they
  complete (temp-file + rename, the :mod:`repro.cache` discipline), so
  an interrupted sweep leaves a valid journal and a re-invocation
  replays the completed cells and runs only the remainder;
* :mod:`~repro.resilience.supervisor` — :class:`SupervisedExecutor`,
  per-task futures under a watchdog: wall-clock timeouts, bounded retry
  with exponential backoff on fresh worker processes,
  ``BrokenProcessPool`` recovery that respawns the pool and resubmits
  only the unfinished specs, and a quarantine list for poison tasks
  (reported, not fatal — the sweep degrades to a partial grid with
  explicit holes);
* :mod:`~repro.resilience.invariants` — runtime guards for the
  simulator hot loop (message conservation, monotone clock, window
  non-negativity) behind ``REPRO_CHECK_INVARIANTS``, so corrupted
  partial state is caught at the source rather than in a merged table.

See ``docs/resilience.md`` for the journal format, resume semantics and
the quarantine policy.
"""

from .fingerprint import FingerprintError, fingerprint
from .invariants import InvariantViolation, invariants_enabled, require
from .journal import (
    JOURNAL_SCHEMA,
    JournalMismatchError,
    JournalSchemaError,
    RunJournal,
    value_digest,
)
from .supervisor import (
    QuarantineRecord,
    ResilienceOptions,
    SupervisedExecutor,
    SweepOutcome,
    backoff_delay,
)

__all__ = [
    "fingerprint",
    "FingerprintError",
    "RunJournal",
    "JOURNAL_SCHEMA",
    "JournalMismatchError",
    "JournalSchemaError",
    "SupervisedExecutor",
    "SweepOutcome",
    "QuarantineRecord",
    "ResilienceOptions",
    "backoff_delay",
    "value_digest",
    "invariants_enabled",
    "require",
    "InvariantViolation",
]

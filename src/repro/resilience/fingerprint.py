"""Content-addressed identity for sweep task specs.

The run journal (:mod:`repro.resilience.journal`) keys completed results
by *what the task is*, not *when it ran* — so a resumed sweep can
recognise its own completed cells and a reordered or re-chunked grid
still hits the same records.  That needs a digest that is stable across
processes, which rules out ``repr`` (strategy objects like
``OldestFirstPosition`` carry the default ``<... object at 0x...>``
repr) and ``hash`` (salted per process for strings).

:func:`fingerprint` canonicalises a value structurally instead:
primitives by exact repr, containers recursively, dataclasses and plain
objects as ``QualName(field=canon, ...)`` over their declared fields.
Two specs that compare equal field-for-field fingerprint identically;
any object whose identity leaks into the serialisation (a default repr
with a memory address) is rejected loudly rather than silently producing
an unstable digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

__all__ = ["fingerprint", "FingerprintError"]

#: Bump when the canonical form changes: old journals must read as
#: misses, never as silently-wrong hits.
_FINGERPRINT_SCHEMA = "repro-fp-v1"


class FingerprintError(TypeError):
    """A value cannot be canonicalised stably (identity-based repr)."""


def _canon(value: Any) -> str:
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, (int, float, complex, str, bytes)):
        # repr is exact for these (shortest round-trip repr for floats).
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, (list, tuple)):
        tag = "t" if isinstance(value, tuple) else "l"
        return tag + "[" + ",".join(_canon(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "s{" + ",".join(sorted(_canon(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted((_canon(k), _canon(v)) for k, v in value.items())
        return "d{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__module__}.{type(value).__qualname__}({fields})"
    if hasattr(value, "__dict__"):
        # Plain strategy objects (position rules, workloads): class
        # identity plus instance attributes, sorted for stability.
        fields = ",".join(
            f"{name}={_canon(attr)}"
            for name, attr in sorted(vars(value).items())
            if not name.startswith("_")
        )
        return f"{type(value).__module__}.{type(value).__qualname__}({fields})"
    rendered = repr(value)
    if " object at 0x" in rendered:
        raise FingerprintError(
            f"cannot fingerprint {type(value).__qualname__}: its repr is "
            "identity-based and would change across processes"
        )
    return f"{type(value).__qualname__}:{rendered}"


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``value``.

    Deterministic across processes and machines for the spec shapes the
    sweeps use (primitives, containers, dataclasses, plain objects whose
    state lives in instance attributes).  Raises
    :class:`FingerprintError` for values whose canonical form would be
    unstable.
    """
    payload = f"{_FINGERPRINT_SCHEMA}\x1f{_canon(value)}".encode()
    return hashlib.sha256(payload).hexdigest()

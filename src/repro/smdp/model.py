"""A generic finite semi-Markov decision process.

The paper (§3, Appendix A) models the window protocol as an SMDP in
Howard's formulation: upon entering state ``s`` a decision ``k`` is
made, incurring an expected cost ``r_s^k`` (the one-step pseudo loss),
occupying the system for an expected sojourn ``τ_s^k``, and moving it to
state ``j`` with probability ``p_sj^k``.  The objective is to minimise
the long-run average cost per unit time (the *gain* ``g`` of eq. A1).

This module holds the model container; the solvers live in
:mod:`repro.smdp.policy_iteration` and :mod:`repro.smdp.value_iteration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Tuple

__all__ = ["ActionData", "SMDP"]

State = Hashable
ActionLabel = Hashable


@dataclass(frozen=True)
class ActionData:
    """The data of one (state, action) pair.

    Attributes
    ----------
    transitions:
        Mapping next-state → probability; must sum to 1.
    sojourn:
        Expected time until the next decision, τ > 0.
    cost:
        Expected cost accrued over the transition (one-step pseudo loss
        in the protocol model).
    """

    transitions: Mapping[State, float]
    sojourn: float
    cost: float

    def validate(self) -> None:
        """Raise if probabilities are invalid or the sojourn non-positive."""
        total = 0.0
        for state, prob in self.transitions.items():
            if prob < -1e-12:
                raise ValueError(f"negative transition probability to {state!r}")
            total += prob
        if abs(total - 1.0) > 1e-8:
            raise ValueError(f"transition probabilities sum to {total}, not 1")
        if self.sojourn <= 0:
            raise ValueError(f"sojourn time must be positive, got {self.sojourn}")


@dataclass
class SMDP:
    """A finite semi-Markov decision process.

    Build incrementally with :meth:`add_action`; every state must have at
    least one action before solving.

    Example
    -------
    >>> mdp = SMDP()
    >>> mdp.add_action("idle", "wait", {"idle": 1.0}, sojourn=1.0, cost=0.0)
    >>> mdp.states()
    ['idle']
    """

    _actions: Dict[State, Dict[ActionLabel, ActionData]] = field(default_factory=dict)

    def add_action(
        self,
        state: State,
        label: ActionLabel,
        transitions: Mapping[State, float],
        sojourn: float,
        cost: float,
    ) -> None:
        """Register an action available in ``state``."""
        data = ActionData(transitions=dict(transitions), sojourn=sojourn, cost=cost)
        data.validate()
        self._actions.setdefault(state, {})
        if label in self._actions[state]:
            raise ValueError(f"duplicate action {label!r} in state {state!r}")
        self._actions[state][label] = data

    def states(self) -> list:
        """All states, in insertion order."""
        return list(self._actions)

    def actions(self, state: State) -> Dict[ActionLabel, ActionData]:
        """The action set of ``state``."""
        try:
            return self._actions[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r}") from None

    def action(self, state: State, label: ActionLabel) -> ActionData:
        """The data of one (state, action) pair."""
        actions = self.actions(state)
        try:
            return actions[label]
        except KeyError:
            raise KeyError(f"state {state!r} has no action {label!r}") from None

    def validate(self) -> None:
        """Check the model is closed: every transition target has actions."""
        known = set(self._actions)
        if not known:
            raise ValueError("SMDP has no states")
        for state, actions in self._actions.items():
            if not actions:
                raise ValueError(f"state {state!r} has no actions")
            for label, data in actions.items():
                for target in data.transitions:
                    if target not in known:
                        raise ValueError(
                            f"action {label!r} in state {state!r} leads to "
                            f"unknown state {target!r}"
                        )

    def policy_from(self, chooser) -> Dict[State, ActionLabel]:
        """Build a policy by applying ``chooser(state, actions) -> label``."""
        return {
            state: chooser(state, actions) for state, actions in self._actions.items()
        }

    def uniform_sojourn_bound(self) -> Tuple[float, float]:
        """(min, max) sojourn across all state-action pairs."""
        sojourns = [
            data.sojourn
            for actions in self._actions.values()
            for data in actions.values()
        ]
        return min(sojourns), max(sojourns)

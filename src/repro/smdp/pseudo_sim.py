"""Monte-Carlo simulation of the protocol in pseudo time.

An independent check on both the SMDP numerics and Theorem 1: the
protocol is simulated directly on the compressed (pseudo-time) axis of
§3.1 with *actual* message arrivals, under an arbitrary window-control
policy — any window position, any splitting order.

Loss accounting follows the paper's definitions carefully, because they
diverge for non-optimal policies (Lemma 1):

* a message's **pseudo delay** is its position on the compressed axis;
  it *decreases* whenever younger time is resolved out from under it,
  which happens under newest-first window placement;
* a message's **actual delay** is real elapsed time since its arrival;
* a message is **actually lost** when it is not transmitted with actual
  delay ≤ K — either because policy element 4 discarded it (its pseudo
  delay crossed K) or because it was transmitted too late (the receiver
  discards it).

Under the minimum-slack elements (oldest placement, older-half-first)
resolution always removes the *oldest prefix* of the backlog, so no
compression gaps form, pseudo = actual delay (Lemma 2), and late
transmissions cannot occur.  Other policies can show small pseudo loss
yet large actual loss — scoring the actual loss is what makes the
Theorem 1 ranking come out on sample paths.

Dynamics per decision (cf. the protocol walk-through of Figure 4):

1. the policy picks a window ``[a, a + w]`` inside the backlog ``[0, i]``
   (delay coordinates, larger = older) and a split order;
2. the windowing process runs on the real message positions — idle /
   success / collision per examined sub-window, one slot each for idle
   and collision outcomes — until one message is transmitted (σ = slots
   + M) or the window proves empty (σ = 1);
3. the resolved chunk is removed (compressing older delays down), all
   delays age by σ, fresh Poisson arrivals fill ``[0, σ)``, and content
   whose pseudo delay crosses K is discarded.

Unlike the SMDP (which invokes Assumption 1), this simulation keeps the
exact conditional arrival statistics, so agreement validates both the
model and the assumption; disagreement quantifies the assumption's cost.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["PseudoSimResult", "WindowPolicy", "make_window_policy", "simulate_pseudo_protocol"]

# A policy maps the backlog extent to (window length, young-edge offset,
# split order), or None to wait one slot.
WindowPolicy = Callable[[float], Optional[Tuple[float, float, str]]]

_MAX_SPLIT_DEPTH = 60  # beyond float resolution; forces capture of ties


@dataclass(frozen=True)
class PseudoSimResult:
    """Counts from a pseudo-time protocol simulation.

    Attributes
    ----------
    arrivals:
        Messages generated after warm-up.
    aged_out:
        Messages discarded when their pseudo delay crossed K (element 4).
    late_transmissions:
        Messages transmitted with *actual* delay above K (lost at the
        receiver; zero under the minimum-slack policy by Lemma 2).
    on_time_transmissions:
        Messages transmitted with actual delay ≤ K.
    elapsed_slots:
        Simulated measurement time, in τ slots.
    """

    arrivals: int
    aged_out: int
    late_transmissions: int
    on_time_transmissions: int
    elapsed_slots: float

    @property
    def losses(self) -> int:
        """Total actually-lost messages (aged out + transmitted late)."""
        return self.aged_out + self.late_transmissions

    @property
    def transmissions(self) -> int:
        """All transmissions, on time or not."""
        return self.on_time_transmissions + self.late_transmissions

    @property
    def loss_fraction(self) -> float:
        """Fraction of messages actually lost (NaN when no arrivals)."""
        return self.losses / self.arrivals if self.arrivals else float("nan")

    @property
    def pseudo_loss_fraction(self) -> float:
        """Fraction lost by pseudo-delay aging only (Lemma 1's lower bound)."""
        return self.aged_out / self.arrivals if self.arrivals else float("nan")

    @property
    def throughput(self) -> float:
        """Transmissions per slot."""
        return self.transmissions / self.elapsed_slots if self.elapsed_slots else 0.0


def make_window_policy(
    window_length: float,
    placement: str = "oldest",
    split: str = "older",
    rng: Optional[np.random.Generator] = None,
) -> WindowPolicy:
    """Build a stationary window policy.

    Parameters
    ----------
    window_length:
        Desired initial window length (clipped to the backlog).
    placement:
        ``"oldest"`` (Theorem 1 element 1), ``"newest"`` or ``"random"``.
    split:
        ``"older"`` (Theorem 1 element 3) or ``"newer"``.
    rng:
        Required for random placement.
    """
    if placement not in ("oldest", "newest", "random"):
        raise ValueError(f"unknown placement: {placement!r}")
    if split not in ("older", "newer"):
        raise ValueError(f"unknown split: {split!r}")
    if placement == "random" and rng is None:
        raise ValueError("random placement needs an rng")

    def policy(extent: float) -> Optional[Tuple[float, float, str]]:
        if extent <= 0:
            return None
        w = min(window_length, extent)
        if placement == "oldest":
            offset = extent - w
        elif placement == "newest":
            offset = 0.0
        else:
            offset = rng.uniform(0.0, extent - w)
        return (w, offset, split)

    return policy


def _run_windowing(
    delays: list,
    lo: float,
    hi: float,
    split: str,
) -> Tuple[int, float, float, Optional[int]]:
    """Run one windowing process on the sorted pseudo-delay list.

    Returns ``(slots, chunk_lo, chunk_hi, transmitted_index)`` where the
    chunk is the resolved delay interval and ``transmitted_index`` points
    into ``delays`` (None when the window was empty).  ``slots`` counts
    idle and collision slots only; the success slot starts the
    transmission itself.
    """
    left = bisect.bisect_left(delays, lo)
    right = bisect.bisect_right(delays, hi)
    count = right - left
    if count == 0:
        return 1, lo, hi, None
    if count == 1:
        return 0, lo, hi, left

    # Collision on the initial window: one detection slot, then split.
    slots = 1
    cur_lo, cur_hi = lo, hi
    for _ in range(_MAX_SPLIT_DEPTH):
        mid = 0.5 * (cur_lo + cur_hi)
        if split == "older":
            exam_lo, exam_hi = mid, cur_hi
            other_lo, other_hi = cur_lo, mid
        else:
            exam_lo, exam_hi = cur_lo, mid
            other_lo, other_hi = mid, cur_hi

        e_left = bisect.bisect_left(delays, exam_lo)
        e_right = bisect.bisect_right(delays, exam_hi)
        in_exam = e_right - e_left
        if in_exam == 1:
            if split == "older":
                # Everything from mid up to the window's old edge resolved.
                return slots, mid, hi, e_left
            # Mirror image: everything from the window's young edge up to
            # the success sub-window's old edge (= mid) is resolved.
            return slots, lo, exam_hi, e_left
        if in_exam == 0:
            # Idle slot; the other half holds >= 2 and is split immediately.
            slots += 1
            cur_lo, cur_hi = other_lo, other_hi
        else:
            # Collision slot; recurse into the examined half.
            slots += 1
            cur_lo, cur_hi = exam_lo, exam_hi

    # Ties beyond float resolution: force-transmit the appropriate edge
    # message of the unresolvable interval (capture effect).
    left = bisect.bisect_left(delays, cur_lo)
    right = bisect.bisect_right(delays, cur_hi)
    index = right - 1 if split == "older" else left
    if split == "older":
        return slots, cur_lo, hi, index
    return slots, lo, cur_hi, index


def simulate_pseudo_protocol(
    arrival_rate: float,
    deadline: float,
    transmission: int,
    policy: WindowPolicy,
    horizon_slots: float,
    rng: np.random.Generator,
    warmup_slots: float = 0.0,
) -> PseudoSimResult:
    """Simulate the protocol on the pseudo-time axis under ``policy``.

    Parameters
    ----------
    arrival_rate:
        λ in messages per slot (all messages).
    deadline:
        K in slots (both the element-4 discard age and the receiver
        deadline).
    transmission:
        M in slots.
    horizon_slots:
        Measured simulation length (after ``warmup_slots``).
    """
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    if horizon_slots <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_slots}")

    delays: list = []  # sorted pseudo delays, ascending (index 0 youngest)
    born: list = []  # parallel: arrival clock time of each message
    extent = 0.0
    clock = 0.0
    measuring = warmup_slots <= 0.0
    arrivals = aged_out = late = on_time = 0
    measured_start = warmup_slots

    while clock < warmup_slots + horizon_slots:
        decision = policy(extent)
        if decision is None:
            sigma = 1.0
            chunk: Optional[Tuple[float, float]] = None
            transmitted = None
        else:
            w, offset, split = decision
            if w <= 0 or offset < -1e-12 or offset + w > extent + 1e-9:
                raise ValueError(
                    f"policy returned window ({w}, {offset}) outside backlog {extent}"
                )
            slots, chunk_lo, chunk_hi, transmitted = _run_windowing(
                delays, offset, offset + w, split
            )
            sigma = 1.0 if transmitted is None else float(slots + transmission)
            chunk = (chunk_lo, chunk_hi)

        if transmitted is not None:
            # The paper's waiting time: arrival -> start of the windowing
            # process that transmits the message (= current clock).
            actual_delay = clock - born[transmitted]
            delays.pop(transmitted)
            born.pop(transmitted)
            if measuring:
                if actual_delay > deadline + 1e-9:
                    late += 1
                else:
                    on_time += 1

        # Remove the resolved chunk: delays older than it compress down.
        if chunk is not None:
            chunk_lo, chunk_hi = chunk
            width = chunk_hi - chunk_lo
            cut = bisect.bisect_right(delays, chunk_hi)
            for k in range(cut, len(delays)):
                delays[k] -= width
            extent -= width

        # Age everything by sigma and admit fresh arrivals in [0, sigma).
        n_new = rng.poisson(arrival_rate * sigma)
        if n_new:
            offsets = np.sort(rng.uniform(0.0, sigma, size=n_new))
            new_delays = [float(d) for d in offsets]
            # offset d means the message arrived d slots before clock+sigma
            new_born = [clock + sigma - d for d in new_delays]
        else:
            new_delays, new_born = [], []
        delays = new_delays + [d + sigma for d in delays]
        born = new_born + born
        extent += sigma
        if measuring:
            arrivals += n_new

        # Element 4: discard anything whose pseudo delay exceeds K.
        if extent > deadline:
            first_drop = bisect.bisect_right(delays, deadline)
            dropped = len(delays) - first_drop
            if dropped:
                del delays[first_drop:]
                del born[first_drop:]
                if measuring:
                    aged_out += dropped
            extent = deadline

        clock += sigma
        if not measuring and clock >= measured_start:
            measuring = True

    return PseudoSimResult(
        arrivals=arrivals,
        aged_out=aged_out,
        late_transmissions=late,
        on_time_transmissions=on_time,
        elapsed_slots=clock - measured_start,
    )

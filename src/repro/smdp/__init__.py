"""Semi-Markov decision process substrate.

A generic average-cost SMDP with Howard policy iteration (the paper's
Appendix A machinery) and a value-iteration cross-check, plus the
pseudo-time protocol model of section 3 and a Monte-Carlo pseudo-time
protocol simulator used to verify Theorem 1 empirically.
"""

from .model import ActionData, SMDP
from .policy_iteration import (
    PolicyEvaluation,
    PolicyIterationResult,
    evaluate_policy,
    policy_iteration,
)
from .protocol_model import (
    NEWER,
    OLDER,
    WAIT,
    WindowAction,
    build_protocol_smdp,
    lcfs_like_policy,
    minimum_slack_policy,
    pseudo_loss_fraction,
)
from .pseudo_sim import (
    PseudoSimResult,
    make_window_policy,
    simulate_pseudo_protocol,
)
from .value_iteration import ValueIterationResult, relative_value_iteration

__all__ = [
    "SMDP",
    "ActionData",
    "evaluate_policy",
    "policy_iteration",
    "PolicyEvaluation",
    "PolicyIterationResult",
    "relative_value_iteration",
    "ValueIterationResult",
    "build_protocol_smdp",
    "minimum_slack_policy",
    "lcfs_like_policy",
    "pseudo_loss_fraction",
    "WindowAction",
    "WAIT",
    "OLDER",
    "NEWER",
    "PseudoSimResult",
    "make_window_policy",
    "simulate_pseudo_protocol",
]

"""Relative value iteration for average-cost SMDPs (cross-check solver).

Policy iteration (the paper's method) is validated against an
independent algorithm: the Schweitzer data transformation converts the
SMDP into a discrete-time MDP with the *same* optimal average cost per
unit time,

    c̃(i,a)   = c(i,a) / τ(i,a)
    p̃(j|i,a) = (η/τ(i,a)) · (p(j|i,a) − δ_ij) + δ_ij

for any aperiodicity constant 0 < η < min τ, after which standard
relative value iteration applies:

    v_{n+1}(i) = min_a [ c̃(i,a) + Σ_j p̃(j|i,a) v_n(j) ] − shift

with the span of successive differences as the stopping criterion; the
average cost is the limiting per-stage increment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable

import numpy as np

from .model import SMDP

__all__ = ["ValueIterationResult", "relative_value_iteration"]

State = Hashable


@dataclass(frozen=True)
class ValueIterationResult:
    """Outcome of relative value iteration.

    Attributes
    ----------
    gain:
        Optimal average cost per unit time.
    policy:
        A greedy policy attaining it.
    values:
        Final relative values (transformed chain).
    iterations:
        Sweeps performed.
    span:
        Final span of the value-difference vector (convergence measure).
    """

    gain: float
    policy: Dict
    values: Dict[State, float]
    iterations: int
    span: float


def relative_value_iteration(
    model: SMDP,
    tol: float = 1e-10,
    max_iterations: int = 1_000_000,
) -> ValueIterationResult:
    """Solve the average-cost problem by transformed value iteration."""
    model.validate()
    states = model.states()
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    min_sojourn, _ = model.uniform_sojourn_bound()
    eta = 0.5 * min_sojourn  # strictly inside (0, min τ) for aperiodicity

    # Precompute transformed costs and transition rows per (state, action).
    compiled = []
    for state in states:
        rows = []
        for label, data in model.actions(state).items():
            cost = data.cost / data.sojourn
            row = np.zeros(n)
            scale = eta / data.sojourn
            for target, prob in data.transitions.items():
                row[index[target]] += scale * prob
            i = index[state]
            row[i] += 1.0 - scale
            rows.append((label, cost, row))
        compiled.append(rows)

    v = np.zeros(n)
    policy = [None] * n
    span = np.inf
    for iteration in range(1, max_iterations + 1):
        new_v = np.empty(n)
        for i, rows in enumerate(compiled):
            best = np.inf
            best_label = None
            for label, cost, row in rows:
                candidate = cost + float(row @ v)
                if candidate < best:
                    best = candidate
                    best_label = label
            new_v[i] = best
            policy[i] = best_label
        diff = new_v - v
        span = float(diff.max() - diff.min())
        gain_per_stage = float(diff.mean())
        v = new_v - new_v[0]  # keep values bounded
        if span < tol:
            # Average cost per stage of the transformed chain equals the
            # original average cost per unit time.
            return ValueIterationResult(
                gain=gain_per_stage,
                policy={state: policy[index[state]] for state in states},
                values={state: float(v[index[state]]) for state in states},
                iterations=iteration,
                span=span,
            )
    raise RuntimeError(
        f"value iteration did not reach span {tol} in {max_iterations} sweeps "
        f"(span = {span:.3e})"
    )

"""Howard policy iteration for average-cost semi-Markov decision processes.

This is the algorithm of [Howard 71] used by the paper's Appendix A.
For a fixed policy P, the *value-determination* step solves eq. A1,

    v_i + g·τ_i = r_i + Σ_j p_ij v_j,      v_ref = 0,

for the gain ``g`` (average cost per unit time) and relative values
``v``.  The *policy-improvement* step then evaluates each alternative
decision k through its test quantity (eq. A2, written as a cost to be
minimised)

    Γ_i^k = ( r_i^k − g·τ_i^k + Σ_j p_ij^k v_j − v_i ) / τ_i^k

and switches to any strictly better action.  Iteration terminates when
no state can improve — exactly the condition the paper exploits to prove
no policy iteration can leave its candidate optimum (Lemma 4).

Assumes a unichain model (every stationary policy yields a single
recurrent class), which holds for the protocol model: state 0 is
reachable from everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from .model import SMDP

__all__ = ["PolicyEvaluation", "PolicyIterationResult", "evaluate_policy", "policy_iteration"]

State = Hashable
ActionLabel = Hashable
Policy = Dict[State, ActionLabel]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Gain and relative values of a fixed policy (solution of eq. A1)."""

    gain: float
    values: Dict[State, float]


@dataclass(frozen=True)
class PolicyIterationResult:
    """Outcome of policy iteration.

    Attributes
    ----------
    policy:
        The final (optimal) policy.
    gain:
        Its average cost per unit time.
    values:
        Relative values of the final policy.
    iterations:
        Number of improvement rounds performed.
    history:
        The gain after each value-determination step (monotone
        non-increasing for a minimisation problem).
    """

    policy: Policy
    gain: float
    values: Dict[State, float]
    iterations: int
    history: tuple


def evaluate_policy(
    model: SMDP, policy: Policy, reference: Optional[State] = None
) -> PolicyEvaluation:
    """Solve the value-determination equations (A1) for a fixed policy."""
    states = model.states()
    if set(policy) != set(states):
        raise ValueError("policy must assign an action to every state")
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    if reference is None:
        reference = states[0]
    ref = index[reference]

    # Unknowns: v_0..v_{n-1} with v_ref eliminated, plus g (at column ref).
    a = np.zeros((n, n))
    b = np.zeros(n)
    for state in states:
        i = index[state]
        data = model.action(state, policy[state])
        row = np.zeros(n)
        row_v = np.zeros(n)
        row_v[i] += 1.0
        for target, prob in data.transitions.items():
            row_v[index[target]] -= prob
        # v_i + g τ_i − Σ p v_j = r_i;  substitute column ref with g.
        row[:] = row_v
        row[ref] = data.sojourn  # overwrite the (eliminated) v_ref column with g
        # careful: if row_v[ref] != 0 it multiplies v_ref = 0, so dropping it
        # is sound.
        a[i] = row
        b[i] = data.cost
    solution = np.linalg.solve(a, b)
    gain = float(solution[ref])
    values = {state: float(solution[index[state]]) for state in states}
    values[reference] = 0.0
    return PolicyEvaluation(gain=gain, values=values)


def policy_iteration(
    model: SMDP,
    initial_policy: Optional[Policy] = None,
    reference: Optional[State] = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
) -> PolicyIterationResult:
    """Minimise the long-run average cost per unit time.

    Parameters
    ----------
    model:
        The SMDP (validated on entry).
    initial_policy:
        Starting policy; defaults to the first action of every state.
    tol:
        An alternative action replaces the incumbent only when its test
        quantity improves by more than ``tol`` (prevents cycling between
        equally good actions).
    """
    model.validate()
    states = model.states()
    if initial_policy is None:
        policy = {state: next(iter(model.actions(state))) for state in states}
    else:
        policy = dict(initial_policy)

    history = []
    for iteration in range(1, max_iterations + 1):
        evaluation = evaluate_policy(model, policy, reference=reference)
        history.append(evaluation.gain)
        values = evaluation.values
        gain = evaluation.gain

        improved = False
        for state in states:
            incumbent = model.action(state, policy[state])
            best_label = policy[state]
            best_test = _test_quantity(incumbent, gain, values, state)
            for label, data in model.actions(state).items():
                if label == policy[state]:
                    continue
                test = _test_quantity(data, gain, values, state)
                if test < best_test - tol:
                    best_test = test
                    best_label = label
            if best_label != policy[state]:
                policy[state] = best_label
                improved = True

        if not improved:
            return PolicyIterationResult(
                policy=policy,
                gain=gain,
                values=values,
                iterations=iteration,
                history=tuple(history),
            )
    raise RuntimeError(f"policy iteration did not converge in {max_iterations} rounds")


def _test_quantity(data, gain: float, values: Dict[State, float], state: State) -> float:
    """Eq. A2 as a per-unit-time improvement test (lower is better)."""
    expected_value = sum(prob * values[t] for t, prob in data.transitions.items())
    return (data.cost - gain * data.sojourn + expected_value - values[state]) / data.sojourn

"""The pseudo-time SMDP of the controlled window protocol (§3).

States are the pseudo-time backlog ``i ∈ {0, 1, …, K}`` — the amount of
past time that may still contain untransmitted, undiscarded message
arrivals (§3.1, eq. 3.2).  A decision chooses the initial window: its
length ``w``, its position (the pseudo-delay ``a`` of its young edge;
``a = i − w`` is the paper's oldest-first placement), and the splitting
order.  ``WAIT`` (let one slot elapse) is also offered so the solver can
demonstrate it is dominated.

Transition and cost data come from the exact windowing-process law of
:mod:`repro.crp.joint`:

* a window with occupancy μ = λ·w is empty with probability e^{−μ}
  (sojourn 1 slot, whole window resolved), else yields a success after
  ``t`` extra slots with resolved fraction ``f`` and success sub-window
  width ``s`` (sojourn ``t + M`` slots);
* the successor backlog is ``i′ = min(K, i − f·w + σ)`` — resolved
  pseudo time leaves, elapsed real time σ enters, anything beyond K is
  discarded (policy element 4); fractional backlogs are split
  stochastically between neighbouring lattice states, preserving the
  mean;
* the one-step cost is the paper's one-step pseudo loss (Lemma 3): the
  expected number of messages aging past K during the transition.  With
  content density λ per slot of backlog, that is λ times the length of
  ``(K − σ, i]`` minus its overlap with the resolved chunk — the chunk
  carries no lost messages (it is empty except for the transmitted
  message, which is saved).  Unresolved window remainders are treated at
  density λ (Assumption 1).

The long-run average cost per slot, divided by λ, is the model's
pseudo-loss fraction — comparable to the queueing model's p(loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..crp.joint import WindowProcessDistribution, windowing_process_outcomes
from .model import SMDP

__all__ = [
    "WAIT",
    "WindowAction",
    "build_protocol_smdp",
    "minimum_slack_policy",
    "lcfs_like_policy",
    "pseudo_loss_fraction",
]

WAIT = ("wait",)

OLDER = "older"
NEWER = "newer"


@dataclass(frozen=True)
class WindowAction:
    """A window decision: length, young-edge position and split order.

    ``offset`` is the pseudo-delay of the window's *young* edge, so the
    window covers pseudo-delays ``[offset, offset + length]``; the
    paper's optimal placement (Theorem 1 element 1) is
    ``offset = i − length``.
    """

    length: int
    offset: int
    split: str

    def label(self) -> tuple:
        """Hashable action label used inside the SMDP."""
        return ("win", self.length, self.offset, self.split)


def _resolved_chunk(action: WindowAction, f: float) -> Tuple[float, float]:
    """Pseudo-delay extent of the resolved chunk for resolved fraction f."""
    a, w = action.offset, action.length
    if action.split == OLDER:
        return a + w * (1.0 - f), a + float(w)
    if action.split == NEWER:
        return float(a), a + w * f
    raise ValueError(f"unknown split order: {action.split!r}")


def _one_step_loss(
    arrival_rate: float,
    backlog: int,
    deadline: int,
    sigma: float,
    chunk: Optional[Tuple[float, float]],
) -> float:
    """λ · |(K − σ, i] \\ resolved chunk| — the expected messages aging out."""
    critical_lo = max(0.0, deadline - sigma)
    critical_len = max(0.0, backlog - critical_lo)
    if critical_len <= 0.0:
        return 0.0
    overlap = 0.0
    if chunk is not None:
        lo = max(chunk[0], critical_lo)
        hi = min(chunk[1], float(backlog))
        overlap = max(0.0, hi - lo)
    return arrival_rate * (critical_len - overlap)


def _lattice_split(value: float, deadline: int) -> Dict[int, float]:
    """Distribute a fractional backlog onto neighbouring lattice states."""
    value = min(float(deadline), max(0.0, value))
    lower = int(value)
    frac = value - lower
    if frac < 1e-12 or lower >= deadline:
        return {min(lower, deadline): 1.0}
    return {lower: 1.0 - frac, lower + 1: frac}


def build_protocol_smdp(
    arrival_rate: float,
    deadline: int,
    transmission: int,
    window_lengths: Optional[Callable[[int], Iterable[int]]] = None,
    positions: str = "endpoints",
    splits: Sequence[str] = (OLDER, NEWER),
    include_wait: bool = True,
    depth: int = 8,
) -> SMDP:
    """Construct the protocol SMDP over states 0..K.

    Parameters
    ----------
    arrival_rate:
        λ, in messages per slot (*all* messages; discarded ones are the
        loss being minimised).
    deadline:
        K in slots; must be ≥ 1.
    transmission:
        M in slots.
    window_lengths:
        Maps backlog i → iterable of candidate window lengths (each
        clipped to ≤ i).  Default: every length 1..i.
    positions:
        ``"endpoints"`` offers the oldest-first, newest-first and middle
        placements per (i, w); ``"all"`` offers every lattice offset
        (cubic blow-up — keep K small).
    splits:
        Which splitting orders to offer.
    include_wait:
        Offer the (dominated) WAIT action in every state.
    depth:
        Splitting-depth truncation passed to the windowing-process law.
    """
    if deadline < 1:
        raise ValueError(f"deadline must be at least 1 slot, got {deadline}")
    if transmission < 1:
        raise ValueError(f"transmission must be at least 1 slot, got {transmission}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    if positions not in ("endpoints", "all"):
        raise ValueError(f"unknown positions mode: {positions!r}")
    for split in splits:
        if split not in (OLDER, NEWER):
            raise ValueError(f"unknown split order: {split!r}")

    @lru_cache(maxsize=None)
    def law(length: int) -> WindowProcessDistribution:
        return windowing_process_outcomes(arrival_rate * length, depth=depth)

    model = SMDP()
    for backlog in range(deadline + 1):
        if include_wait or backlog == 0:
            wait_target = _lattice_split(backlog + 1.0, deadline)
            wait_cost = arrival_rate * max(0.0, backlog + 1.0 - deadline)
            model.add_action(backlog, WAIT, wait_target, sojourn=1.0, cost=wait_cost)
        if backlog == 0:
            continue

        lengths = (
            range(1, backlog + 1)
            if window_lengths is None
            else sorted({min(backlog, w) for w in window_lengths(backlog) if w >= 1})
        )
        for w in lengths:
            if positions == "all":
                offsets = range(backlog - w + 1)
            else:
                oldest = backlog - w
                offsets = sorted({0, oldest // 2, oldest})
            for offset in offsets:
                for split in splits:
                    action = WindowAction(length=w, offset=offset, split=split)
                    _add_window_action(
                        model, action, backlog, deadline, transmission,
                        arrival_rate, law(w),
                    )
    return model


def _add_window_action(
    model: SMDP,
    action: WindowAction,
    backlog: int,
    deadline: int,
    transmission: int,
    arrival_rate: float,
    law: WindowProcessDistribution,
) -> None:
    """Aggregate the windowing-process law into one SMDP action."""
    transitions: Dict[int, float] = {}
    expected_cost = 0.0
    expected_sojourn = 0.0
    total_mass = 0.0

    def accumulate(probability: float, sigma: float, resolved: float,
                   chunk: Optional[Tuple[float, float]]) -> None:
        nonlocal expected_cost, expected_sojourn, total_mass
        total_mass += probability
        expected_sojourn += probability * sigma
        expected_cost += probability * _one_step_loss(
            arrival_rate, backlog, deadline, sigma, chunk
        )
        successor = backlog - resolved + sigma
        for state, weight in _lattice_split(successor, deadline).items():
            key = state
            transitions[key] = transitions.get(key, 0.0) + probability * weight

    # Empty window: one slot, the whole window resolved, no transmission.
    # The chunk spans the full window (it is known message-free).
    empty_chunk = (float(action.offset), float(action.offset + action.length))
    accumulate(law.empty_probability, 1.0, float(action.length), empty_chunk)

    for (t, f, _s), probability in law.success_outcomes:
        sigma = float(t + transmission)
        resolved = f * action.length
        chunk = _resolved_chunk(action, f)
        accumulate(probability, sigma, resolved, chunk)

    # Assign the (tiny) Poisson-truncation remainder to the most common
    # success outcome shape so probabilities sum to one.
    remainder = 1.0 - total_mass
    if remainder > 1e-15:
        accumulate(remainder, float(1 + transmission), float(action.length),
                   _resolved_chunk(action, 1.0))

    # Normalise against floating-point drift.
    norm = sum(transitions.values())
    transitions = {state: p / norm for state, p in transitions.items()}
    model.add_action(
        backlog,
        action.label(),
        transitions,
        sojourn=expected_sojourn / norm,
        cost=expected_cost / norm,
    )


def minimum_slack_policy(
    model: SMDP, window_rule: Optional[Callable[[int], int]] = None
) -> Dict:
    """The paper's candidate optimum P_ms: oldest-first window, older split.

    ``window_rule`` maps backlog → desired window length (clipped to the
    backlog); default picks the largest available length (one windowing
    pass over the whole backlog).  Raises if the model lacks the needed
    actions.
    """
    policy = {}
    for state in model.states():
        if state == 0:
            policy[state] = WAIT
            continue
        length = state if window_rule is None else max(1, min(state, window_rule(state)))
        label = ("win", length, state - length, OLDER)
        model.action(state, label)  # raises KeyError if absent
        policy[state] = label
    return policy


def lcfs_like_policy(
    model: SMDP, window_rule: Optional[Callable[[int], int]] = None
) -> Dict:
    """Newest-first window with newer-half-first splitting (worst case)."""
    policy = {}
    for state in model.states():
        if state == 0:
            policy[state] = WAIT
            continue
        length = state if window_rule is None else max(1, min(state, window_rule(state)))
        label = ("win", length, 0, NEWER)
        model.action(state, label)
        policy[state] = label
    return policy


def pseudo_loss_fraction(gain: float, arrival_rate: float) -> float:
    """Convert an SMDP gain (losses per slot) to a loss fraction."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    return gain / arrival_rate

"""Measurement probes for simulations.

Three complementary collectors:

:class:`Counter`
    Named integer tallies (messages sent, collisions, ...).
:class:`TimeSeries`
    (time, value) samples of a state variable, with time-average
    integration for piecewise-constant signals.
:class:`Tally`
    Streaming scalar observations (delays, queue waits) with online
    moments via Welford's algorithm and optional retention of raw
    samples for quantiles.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["Counter", "TimeSeries", "Tally"]


class Counter:
    """A bag of named integer counters."""

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"Counter({inner})"


class TimeSeries:
    """Samples of a piecewise-constant state variable over time."""

    def __init__(self):
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Record that the variable took ``value`` from ``time`` onwards."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"samples must be recorded in time order: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, treating the signal as piecewise constant."""
        if not self.times:
            raise ValueError("no samples recorded")
        end = self.times[-1] if until is None else until
        if end < self.times[0]:
            raise ValueError("averaging horizon precedes the first sample")
        total = 0.0
        for i, (start, value) in enumerate(zip(self.times, self.values)):
            stop = self.times[i + 1] if i + 1 < len(self.times) else end
            stop = min(stop, end)
            if stop > start:
                total += value * (stop - start)
        duration = end - self.times[0]
        return total / duration if duration > 0 else self.values[0]

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The samples as a pair of numpy arrays (times, values)."""
        return np.asarray(self.times), np.asarray(self.values)

    def __len__(self) -> int:
        return len(self.times)


class Tally:
    """Streaming moments (and optionally raw samples) of observations.

    Parameters
    ----------
    keep_samples:
        Retain every observation (needed for quantiles / histograms).
    """

    def __init__(self, keep_samples: bool = False):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if self.samples is not None:
            self.samples.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    def quantile(self, q: float) -> float:
        """Empirical quantile; requires ``keep_samples=True``."""
        if self.samples is None:
            raise RuntimeError("quantiles require keep_samples=True")
        if not self.samples:
            raise ValueError("no samples recorded")
        return float(np.quantile(self.samples, q))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``."""
        if self.samples is None:
            raise RuntimeError("fraction_above requires keep_samples=True")
        if not self.samples:
            raise ValueError("no samples recorded")
        above = sum(1 for sample in self.samples if sample > threshold)
        return above / len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tally(count={self.count}, mean={self.mean:.4g})"

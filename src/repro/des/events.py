"""Event primitives for the discrete-event simulation engine.

The engine (:mod:`repro.des.engine`) is organised around :class:`Event`
objects.  A process (a Python generator) advances by yielding events; the
simulator resumes the process when the yielded event fires.  The design
follows the conventions popularised by SimPy, which is not available in
this environment, so a small, fully-featured engine is provided here.

Events move through three states:

``PENDING``
    Created but not yet scheduled to fire.
``TRIGGERED``
    Scheduled on the event queue with a firing time and a value.
``PROCESSED``
    Callbacks have run; the value is final.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Simulator

__all__ = [
    "EventState",
    "Event",
    "Timeout",
    "ProcessEvent",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class EventState(enum.Enum):
    """Lifecycle state of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the object passed to
    :meth:`ProcessEvent.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.des.engine.Simulator`.

    Notes
    -----
    An event can *succeed* (carrying an arbitrary value) or *fail*
    (carrying an exception which is re-raised in every waiting process).
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.state = EventState.PENDING
        self.value: Any = None
        self.ok: bool = True
        self.callbacks: list[Callable[["Event"], None]] = []

    # -- introspection ----------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self.state is not EventState.PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.state is EventState.PROCESSED

    # -- state transitions -------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self.ok = True
        self.value = value
        self.state = EventState.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exception`` in waiters."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.ok = False
        self.value = exception
        self.state = EventState.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        self.state = EventState.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self.state.value}>"


class Timeout(Event):
    """An event that fires ``delay`` units after its creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.ok = True
        self.value = value
        self.state = EventState.TRIGGERED
        sim._schedule(self, delay)


class ProcessEvent(Event):
    """The event representing the completion of a simulated process.

    A process is a generator that yields :class:`Event` objects.  The
    ``ProcessEvent`` fires when the generator returns (successfully, with
    the generator's return value) or raises (failure).
    """

    def __init__(self, sim: "Simulator", generator, name: Optional[str] = None):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("a process must be a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the process at the current simulation instant.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self.state is EventState.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim)
        interrupt_event.ok = False
        interrupt_event.value = Interrupt(cause)
        interrupt_event.state = EventState.TRIGGERED
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, 0.0, urgent=True)

    # -- engine plumbing ---------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None:
            # Detach from the event we were waiting for (relevant for
            # interrupts; the original event may still fire later and must
            # not resume us twice).
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        self.sim._active_process = self
        try:
            if trigger.ok:
                target = self.generator.send(trigger.value)
            else:
                exc = trigger.value
                target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if not self.callbacks:
                raise
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        if target.processed:
            # The event already fired; resume immediately (zero delay).
            immediate = Event(self.sim)
            immediate.ok = target.ok
            immediate.value = target.value
            immediate.state = EventState.TRIGGERED
            immediate.callbacks.append(self._resume)
            self.sim._schedule(immediate, 0.0)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class Condition(Event):
    """Base for composite events over a collection of child events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
        self._pending = sum(1 for e in self.events if not e.processed)
        if self._check_immediately():
            return
        for event in self.events:
            if not event.processed:
                event.callbacks.append(self._child_fired)

    def _check_immediately(self) -> bool:
        raise NotImplementedError

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.processed and e.ok}


class AllOf(Condition):
    """Fires when every child event has fired; value maps event -> value.

    Fails as soon as any child fails.
    """

    def _check_immediately(self) -> bool:
        for event in self.events:
            if event.processed and not event.ok:
                self.fail(event.value)
                return True
        if self._pending == 0:
            self.succeed(self._collect())
            return True
        return False

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as the first child event fires."""

    def _check_immediately(self) -> bool:
        for event in self.events:
            if event.processed:
                if event.ok:
                    self.succeed(self._collect())
                else:
                    self.fail(event.value)
                return True
        if not self.events:
            self.succeed({})
            return True
        return False

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._collect())
        else:
            self.fail(event.value)
